//! # auto-detect
//!
//! Meta-crate for the Auto-Detect reproduction (Huang & He, SIGMOD 2018):
//! data-driven single-column error detection in tables using co-occurrence
//! statistics of generalized patterns over large table corpora.
//!
//! Re-exports the workspace crates under stable module names; see each
//! module for details, README.md for a walkthrough, and DESIGN.md for the
//! system inventory.
//!
//! ```
//! use auto_detect::corpus::{CorpusProfile, generate_corpus};
//!
//! let corpus = generate_corpus(&CorpusProfile::wiki(100));
//! assert_eq!(corpus.len(), 100);
//! ```

pub use adt_baselines as baselines;
pub use adt_compress as compress;
pub use adt_core as core;
pub use adt_corpus as corpus;
pub use adt_eval as eval;
pub use adt_patterns as patterns;
pub use adt_serve as serve;
pub use adt_sketch as sketch;
pub use adt_stats as stats;
