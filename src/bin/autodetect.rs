//! `autodetect` — command-line interface to the Auto-Detect library.
//!
//! ```bash
//! autodetect gen-corpus --profile web --columns 20000 --out corpus.txt
//! autodetect train --corpus corpus.txt --out model.json
//! autodetect scan data.csv --model model.json
//! autodetect check "2011-01-01" "2011/01/02" --model model.json
//! ```

use auto_detect::core::model::{load_model, save_model};
use auto_detect::core::{train, AutoDetect, AutoDetectConfig, ScanEngine};
use auto_detect::corpus::csv::load_csv;
use auto_detect::corpus::{generate_corpus, Corpus, CorpusProfile};
use std::process::ExitCode;

mod cli {
    //! Minimal argument parsing: positional arguments plus `--flag value`
    //! and boolean `--flag` options.

    use std::collections::HashMap;

    /// Parsed command line: positionals and options.
    #[derive(Debug, Default, PartialEq)]
    pub struct Args {
        pub positional: Vec<String>,
        pub options: HashMap<String, String>,
        pub flags: Vec<String>,
    }

    /// Options that take a value; everything else starting with `--` is a
    /// boolean flag.
    pub const VALUED: [&str; 25] = [
        "--out",
        "--model",
        "--corpus",
        "--profile",
        "--columns",
        "--examples",
        "--budget",
        "--precision",
        "--delimiter",
        "--top",
        "--space",
        "--threads",
        "--train-threads",
        "--cooc",
        "--models",
        "--addr",
        "--workers",
        "--queue",
        "--detectors",
        "--merge",
        "--learn-model",
        "--learn-absorb",
        "--learn-interval",
        "--learn-queue",
        "--learn-seed",
    ];

    /// Boolean flags (present or absent, no value).
    pub const FLAGS: [&str; 3] = ["--no-header", "--stream", "--learn"];

    /// Parses raw arguments (without the program name).
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--").map(|_| a.as_str()) {
                if VALUED.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("option {name} expects a value"))?;
                    args.options.insert(name.to_string(), v.clone());
                } else if FLAGS.contains(&name) {
                    args.flags.push(name.to_string());
                } else {
                    return Err(format!("unknown option {name}"));
                }
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    impl Args {
        /// Option value with a default.
        pub fn opt_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
            self.options
                .get(name)
                .map(|s| s.as_str())
                .unwrap_or(default)
        }

        /// Parsed numeric option.
        pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
            match self.options.get(name) {
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("invalid value for {name}: {v}")),
                None => Ok(default),
            }
        }

        /// Boolean flag presence.
        pub fn has(&self, flag: &str) -> bool {
            self.flags.iter().any(|f| f == flag)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn raw(s: &[&str]) -> Vec<String> {
            s.iter().map(|x| x.to_string()).collect()
        }

        #[test]
        fn parses_positionals_options_flags() {
            let a = parse(&raw(&["scan", "f.csv", "--model", "m.json", "--no-header"])).unwrap();
            assert_eq!(a.positional, vec!["scan", "f.csv"]);
            assert_eq!(a.opt_or("--model", ""), "m.json");
            assert!(a.has("--no-header"));
            assert!(!a.has("--quiet"));
        }

        #[test]
        fn missing_value_is_an_error() {
            assert!(parse(&raw(&["train", "--out"])).is_err());
        }

        #[test]
        fn cooc_takes_a_value() {
            let a = parse(&raw(&["train", "--cooc", "streaming"])).unwrap();
            assert_eq!(a.opt_or("--cooc", "deferred"), "streaming");
            assert!(parse(&raw(&["train", "--cooc"])).is_err());
        }

        #[test]
        fn unknown_option_is_an_error() {
            let err = parse(&raw(&["scan", "f.csv", "--theads", "4"])).unwrap_err();
            assert!(err.contains("--theads"), "{err}");
        }

        #[test]
        fn numeric_options() {
            let a = parse(&raw(&["train", "--columns", "500"])).unwrap();
            assert_eq!(a.num("--columns", 10usize).unwrap(), 500);
            assert_eq!(a.num("--top", 7usize).unwrap(), 7);
            let bad = parse(&raw(&["train", "--columns", "x"])).unwrap();
            assert!(bad.num::<usize>("--columns", 1).is_err());
        }

        #[test]
        fn defaults_apply() {
            let a = parse(&raw(&["scan", "f.csv"])).unwrap();
            assert_eq!(a.opt_or("--delimiter", ","), ",");
        }
    }
}

const USAGE: &str = "\
autodetect — data-driven single-column error detection (SIGMOD'18 reproduction)

USAGE:
  autodetect gen-corpus [--profile web|wiki|pubxls|entxls] [--columns N] --out FILE
  autodetect train [--corpus FILE] [--columns N] [--examples N]
                   [--budget BYTES] [--precision P] [--space full|coarse]
                   [--train-threads N] [--cooc exact|deferred|streaming]
                   --out MODEL.json
  autodetect scan FILE.csv --model MODEL.json [--delimiter C] [--no-header]
                  [--top N] [--threads N] [--stream]
                  [--detectors NAME,NAME,…] [--merge union|vote:K|calibrated]
  autodetect check VALUE1 VALUE2 --model MODEL.json
  autodetect serve --models DIR [--addr HOST:PORT] [--threads N]
                   [--workers N] [--queue N]
                   [--learn] [--learn-model NAME] [--learn-absorb N]
                   [--learn-interval SECS] [--learn-queue N]
                   [--learn-seed CORPUS] [--space full|coarse] [--examples N]
                   [--cooc exact|deferred|streaming]
  autodetect query FILE.csv --addr HOST:PORT [--model NAME]
                   [--delimiter C] [--no-header] [--top N] [--learn]
                   [--detectors NAME,NAME,…] [--merge union|vote:K|calibrated]
  autodetect stop --addr HOST:PORT

Without --corpus, `train` generates a synthetic web-table corpus
(--columns, default 20000) reproducing the paper's co-occurrence
structure. Training runs the sharded corpus-major pipeline
(--train-threads, default all cores); the trained model is identical at
any thread count. --cooc picks the co-occurrence accumulation mode:
deferred (default) accumulates exactly and sketches at finalize,
exact never sketches, and streaming bounds peak training memory by
accumulating straight into per-language count-min sketches auto-sized
from the observed pattern distributions — for corpora whose exact pair
tables would not fit in memory. With --learn, --cooc streaming keeps
the online learner's accumulators sketch-backed at a pinned geometry
so absorbed deltas stay bounded too.

`scan` audits every column of a delimited file through the parallel
scan engine (--threads, default all cores) and prints ranked
findings; --stream ingests the file with bounded memory instead of
loading it whole. Findings are identical at any thread count and in
either ingest mode. Model files ending in .bin use the compact binary
codec; anything else is JSON.

--detectors runs an ensemble instead of the single Auto-Detect engine:
a comma-separated subset of autodetect, fregex, pwheel, dboost, linear,
linearp, cdm, lsa, svdd, dbod, lof, union, merged by --merge (default
union; vote:K keeps values flagged by at least K detectors; calibrated
weights by precision priors). --merge requires --detectors; --stream is
incompatible with --detectors. Ensemble findings are rank-pooled
confidences without witness pairs, identical at any thread count.

`serve` loads every model in --models DIR (name = file stem) and answers
POST /v1/scan, GET /v1/healthz, GET /v1/stats, GET /v1/models, and
POST /v1/shutdown on --addr (default 127.0.0.1:7171; port 0 picks an
ephemeral one, printed as `listening on HOST:PORT`). Models hot-reload
when their file changes. `query` round-trips a CSV through a running
server and prints findings in `scan`'s format; `stop` shuts a server
down gracefully, draining in-flight requests.

--learn turns on the online learning loop: the server also answers
POST /v1/learn and absorbs uploaded columns into an incremental trainer,
retraining once --learn-absorb columns arrived (default 256) or the
oldest pending column is --learn-interval seconds old (default 60), then
atomically swapping the new model over --learn-model (default: the
registry default). Retrains use --space (default coarse for serve) and
--examples (default 4000); --learn-seed pre-loads the corpus the serving
model was trained on so the first retrain is incremental, not a cold
start. `query --learn` scans as usual and additionally feeds the
uploaded columns to the learner (best-effort; incompatible with
--detectors). Progress is visible under `learn` in GET /v1/stats.";

fn profile_by_name(name: &str, columns: usize) -> Result<CorpusProfile, String> {
    let mut p = match name {
        "web" => CorpusProfile::web(columns),
        "wiki" => CorpusProfile::wiki(columns),
        "pubxls" => CorpusProfile::pub_xls(columns),
        "entxls" => CorpusProfile::ent_xls(columns),
        other => return Err(format!("unknown profile {other:?}")),
    };
    p.dirty_rate = 0.0;
    p.n_columns = columns;
    Ok(p)
}

fn cmd_gen_corpus(args: &cli::Args) -> Result<(), String> {
    let columns = args.num("--columns", 20_000usize)?;
    let profile = profile_by_name(args.opt_or("--profile", "web"), columns)?;
    let out = args
        .options
        .get("--out")
        .ok_or("gen-corpus requires --out FILE")?;
    let corpus = generate_corpus(&profile);
    corpus.save(out).map_err(|e| e.to_string())?;
    eprintln!("wrote {} columns to {out}", corpus.len());
    Ok(())
}

/// Parses `--cooc` for the train and serve-learn paths.
fn cooc_mode(args: &cli::Args) -> Result<auto_detect::stats::CoocMode, String> {
    use auto_detect::stats::CoocMode;
    match args.opt_or("--cooc", "deferred") {
        "exact" => Ok(CoocMode::Exact),
        "deferred" => Ok(CoocMode::Deferred),
        "streaming" => Ok(CoocMode::Streaming),
        other => Err(format!(
            "unknown --cooc {other:?} (exact|deferred|streaming)"
        )),
    }
}

fn cmd_train(args: &cli::Args) -> Result<(), String> {
    let corpus = match args.options.get("--corpus") {
        Some(path) => Corpus::load(path).map_err(|e| format!("loading {path}: {e}"))?,
        None => {
            let columns = args.num("--columns", 20_000usize)?;
            eprintln!("generating synthetic web corpus ({columns} columns)…");
            generate_corpus(&profile_by_name("web", columns)?)
        }
    };
    let space = match args.opt_or("--space", "full") {
        "full" | "144" => auto_detect::core::config::LanguageSpace::Restricted144,
        "coarse" | "36" => auto_detect::core::config::LanguageSpace::Coarse36,
        other => return Err(format!("unknown --space {other:?} (full|coarse)")),
    };
    let config = AutoDetectConfig::builder()
        .training_examples(args.num("--examples", 40_000usize)?)
        .memory_budget(args.num("--budget", 64usize << 20)?)
        .precision_target(args.num("--precision", 0.95f64)?)
        .space(space)
        .train_threads(args.num("--train-threads", 0usize)?)
        .cooc_mode(cooc_mode(args)?)
        .build()
        .map_err(|e| e.to_string())?;
    eprintln!(
        "training on {} columns ({} candidate languages, {} pipeline threads)…",
        corpus.len(),
        config.candidate_languages().len(),
        config.effective_train_threads()
    );
    let (model, report) = train(&corpus, &config).map_err(|e| e.to_string())?;
    let p = &report.pipeline;
    eprintln!(
        "pipeline: {} columns, {} distinct values interned ({} occurrences), \
         {} generalizations performed, {} saved vs per-column rescan",
        p.columns,
        p.interned_values,
        p.value_occurrences,
        p.generalizations_performed,
        p.generalizations_saved
    );
    eprintln!(
        "pipeline wall-clock: intern {:.2}s, generalize {:.2}s, accumulate {:.2}s, merge {:.2}s",
        p.intern_nanos as f64 / 1e9,
        p.generalize_nanos as f64 / 1e9,
        p.accumulate_nanos as f64 / 1e9,
        p.merge_nanos as f64 / 1e9
    );
    if p.streaming_languages > 0 {
        eprintln!(
            "streaming cooc: {} languages sketched, widths {}..={} × depth {}, \
             {} KB of sketch tables, peak accumulators {} KB, worst-case εN {:.1}",
            p.streaming_languages,
            p.sketch_width_min,
            p.sketch_width_max,
            p.sketch_depth,
            p.sketch_bytes / 1024,
            p.peak_cooc_bytes / 1024,
            p.sketch_error_bound_max
        );
    }
    eprintln!(
        "selected {} languages {:?}, model {} KB, training precision target {}",
        model.num_languages(),
        report.selected_ids,
        report.model_bytes / 1024,
        config.precision_target
    );
    let out = args.opt_or("--out", "model.json");
    save_model(&model, out).map_err(|e| e.to_string())?;
    eprintln!("saved {out}");
    Ok(())
}

fn require_model(args: &cli::Args) -> Result<AutoDetect, String> {
    let path = args
        .options
        .get("--model")
        .ok_or("a trained model is required: pass --model MODEL.json (see `autodetect train`)")?;
    load_model(path).map_err(|e| format!("loading {path}: {e}"))
}

fn cmd_scan(args: &cli::Args) -> Result<(), String> {
    let file = args
        .positional
        .get(1)
        .ok_or("scan requires a FILE.csv argument")?;
    if args.options.contains_key("--merge") && !args.options.contains_key("--detectors") {
        return Err(
            "--merge requires --detectors (e.g. --detectors autodetect,fregex --merge vote:2)"
                .into(),
        );
    }
    if args.options.contains_key("--detectors") && args.has("--stream") {
        return Err(
            "--stream is incompatible with --detectors (ensemble scans need the \
                    columns in memory)"
                .into(),
        );
    }
    let model = require_model(args)?;
    let delim = args
        .opt_or("--delimiter", ",")
        .chars()
        .next()
        .unwrap_or(',');
    let has_header = !args.has("--no-header");
    let top = args.num("--top", 5usize)?;
    let threads = args.num("--threads", 0usize)?;
    if let Some(detectors) = args.options.get("--detectors") {
        let merge = args.opt_or("--merge", "union");
        return cmd_scan_ensemble(
            file, model, delim, has_header, top, threads, detectors, merge,
        );
    }
    let engine = ScanEngine::from_model(model).with_threads(threads);
    let report = if args.has("--stream") {
        engine.scan_csv_path(file, delim, has_header)
    } else {
        load_csv(file, delim, has_header)
            .map_err(adt_core::AdtError::from)
            .and_then(|columns| engine.scan_columns(&columns))
    }
    .map_err(|e| format!("scanning {file}: {e}"))?;
    let mut total = 0usize;
    for summary in &report.columns {
        let header = summary
            .header
            .clone()
            .unwrap_or_else(|| format!("column {}", summary.index + 1));
        if summary.num_findings == 0 {
            println!("[{header}] ok");
        } else {
            println!("[{header}] {} finding(s):", summary.num_findings);
            for f in report
                .findings
                .iter()
                .filter(|f| f.column_index == summary.index)
                .take(top)
            {
                println!(
                    "    {:?} clashes with {:?} (confidence {:.2})",
                    f.finding.suspect, f.finding.witness, f.finding.confidence
                );
            }
            total += summary.num_findings;
        }
    }
    println!(
        "\n{total} suspicious value(s) across {} columns",
        report.columns.len()
    );
    println!("{}", report.summary());
    Ok(())
}

/// `scan --detectors …`: runs the named detector set through the
/// ensemble engine and prints merged findings plus per-detector lanes.
#[allow(clippy::too_many_arguments)]
fn cmd_scan_ensemble(
    file: &str,
    model: AutoDetect,
    delim: char,
    has_header: bool,
    top: usize,
    threads: usize,
    detectors: &str,
    merge: &str,
) -> Result<(), String> {
    use auto_detect::core::{DetectorSpec, EnsembleEngine, MergePolicy};
    let specs = DetectorSpec::parse_list(detectors).map_err(|e| e.to_string())?;
    let merge = MergePolicy::parse(merge).map_err(|e| e.to_string())?;
    if let MergePolicy::Vote(k) = merge {
        if k > specs.len() {
            return Err(format!(
                "--merge vote:{k} needs at least {k} detectors, got {}",
                specs.len()
            ));
        }
    }
    let registry = auto_detect::baselines::standard_registry(std::sync::Arc::new(model));
    let members = registry.build_set(&specs).map_err(|e| e.to_string())?;
    let columns = load_csv(file, delim, has_header).map_err(|e| format!("loading {file}: {e}"))?;
    let label = merge.label();
    let report = EnsembleEngine::new(members)
        .with_merge(merge)
        .with_threads(threads)
        .run(&columns)
        .map_err(|e| format!("scanning {file}: {e}"))?;
    let mut total = 0usize;
    for (i, (col, preds)) in columns.iter().zip(&report.predictions).enumerate() {
        let header = col
            .header
            .clone()
            .unwrap_or_else(|| format!("column {}", i + 1));
        if preds.is_empty() {
            println!("[{header}] ok");
        } else {
            println!("[{header}] {} finding(s):", preds.len());
            for p in preds.iter().take(top) {
                println!("    {:?} (confidence {:.2})", p.value, p.confidence);
            }
            total += preds.len();
        }
    }
    println!(
        "\n{total} suspicious value(s) across {} columns",
        columns.len()
    );
    println!(
        "ensemble: {} detector(s), merge {label}, {:.1} ms scan + {:.1} ms merge",
        report.stats.detectors.len(),
        (report.elapsed_nanos.saturating_sub(report.merge_nanos)) as f64 / 1e6,
        report.merge_nanos as f64 / 1e6
    );
    for lane in &report.stats.detectors {
        println!(
            "    {:<12} {:>9.1} ms  {:>6} prediction(s)",
            lane.name,
            lane.wall_nanos as f64 / 1e6,
            lane.predictions
        );
    }
    Ok(())
}

/// Builds the serve learn loop's configuration from `--learn-*` (and the
/// shared `--space` / `--examples` training knobs).
fn learn_config(args: &cli::Args) -> Result<Option<auto_detect::serve::LearnConfig>, String> {
    use auto_detect::serve::LearnConfig;
    let tuned = [
        "--learn-model",
        "--learn-absorb",
        "--learn-interval",
        "--learn-queue",
        "--learn-seed",
    ]
    .iter()
    .find(|k| args.options.contains_key(**k));
    if !args.has("--learn") {
        if let Some(k) = tuned {
            return Err(format!("{k} requires --learn"));
        }
        return Ok(None);
    }
    let space = match args.opt_or("--space", "coarse") {
        "full" | "144" => auto_detect::core::config::LanguageSpace::Restricted144,
        "coarse" | "36" => auto_detect::core::config::LanguageSpace::Coarse36,
        other => return Err(format!("unknown --space {other:?} (full|coarse)")),
    };
    let train = AutoDetectConfig::builder()
        .space(space)
        .training_examples(args.num("--examples", 4_000usize)?)
        .online_absorb_columns(args.num("--learn-absorb", 256usize)?)
        .online_interval_secs(args.num("--learn-interval", 60u64)?)
        .cooc_mode(cooc_mode(args)?)
        .build()
        .map_err(|e| e.to_string())?;
    let mut learn = LearnConfig::new(train);
    learn.model = args.options.get("--learn-model").cloned();
    learn.queue_capacity = args.num("--learn-queue", 64usize)?;
    if let Some(path) = args.options.get("--learn-seed") {
        learn.seed_corpus =
            Some(Corpus::load(path).map_err(|e| format!("loading seed corpus {path}: {e}"))?);
    }
    Ok(Some(learn))
}

fn cmd_serve(args: &cli::Args) -> Result<(), String> {
    use auto_detect::serve::{ModelRegistry, ServeConfig, Server};
    let dir = args
        .options
        .get("--models")
        .ok_or("serve requires --models DIR (a directory of trained *.bin/*.json models)")?;
    let learn = learn_config(args)?;
    let learning = learn.is_some();
    let config = ServeConfig {
        addr: args.opt_or("--addr", "127.0.0.1:7171").to_string(),
        engine_threads: args.num("--threads", 0usize)?,
        workers: args.num("--workers", 0usize)?,
        queue_capacity: args.num("--queue", 128usize)?,
        learn,
        ..ServeConfig::default()
    };
    let registry = ModelRegistry::open(dir).map_err(|e| e.to_string())?;
    eprintln!(
        "loaded {} model(s) from {dir}: {:?}",
        registry.names().len(),
        registry.names()
    );
    let server = Server::bind(config, registry).map_err(|e| e.to_string())?;
    if learning {
        eprintln!("online learning enabled (POST /v1/learn, scan tap via \"learn\": true)");
    }
    // To stdout, and flushed: smoke tests and orchestrators parse this
    // line to discover an ephemeral port.
    println!("listening on {}", server.local_addr());
    use std::io::Write;
    std::io::stdout().flush().ok();
    server.run().map_err(|e| e.to_string())?;
    eprintln!("shut down cleanly");
    Ok(())
}

fn cmd_query(args: &cli::Args) -> Result<(), String> {
    use auto_detect::serve::Client;
    let file = args
        .positional
        .get(1)
        .ok_or("query requires a FILE.csv argument")?;
    let addr = args
        .options
        .get("--addr")
        .ok_or("query requires --addr HOST:PORT of a running `autodetect serve`")?;
    let delim = args
        .opt_or("--delimiter", ",")
        .chars()
        .next()
        .unwrap_or(',');
    let has_header = !args.has("--no-header");
    let top = args.num("--top", 5usize)?;
    if args.options.contains_key("--merge") && !args.options.contains_key("--detectors") {
        return Err(
            "--merge requires --detectors (e.g. --detectors autodetect,fregex --merge vote:2)"
                .into(),
        );
    }
    if args.has("--learn") && args.options.contains_key("--detectors") {
        return Err(
            "--learn is incompatible with --detectors (the learner absorbs \
                    plain scans only)"
                .into(),
        );
    }
    let columns = load_csv(file, delim, has_header).map_err(|e| format!("loading {file}: {e}"))?;
    let client = Client::new(addr).map_err(|e| e.to_string())?;
    let model = args.options.get("--model").map(|s| s.as_str());
    let response = match args.options.get("--detectors") {
        Some(raw) => {
            let detectors: Vec<String> = raw.split(',').map(|s| s.trim().to_string()).collect();
            client.scan_ensemble(
                model,
                &columns,
                &detectors,
                args.options.get("--merge").map(|s| s.as_str()),
            )
        }
        None if args.has("--learn") => client.scan_and_learn(model, &columns),
        None => client.scan(model, &columns),
    }
    .map_err(|e| format!("querying {addr}: {e}"))?;
    let mut total = 0usize;
    for col in &response.columns {
        let header = col
            .header
            .clone()
            .unwrap_or_else(|| format!("column {}", col.index + 1));
        if col.findings == 0 {
            println!("[{header}] ok");
        } else {
            println!("[{header}] {} finding(s):", col.findings);
            for f in response
                .findings
                .iter()
                .filter(|f| f.column == col.index)
                .take(top)
            {
                if f.witness.is_empty() {
                    // Ensemble findings are rank-pooled across detectors
                    // and carry no single witness value.
                    println!("    {:?} (confidence {:.2})", f.suspect, f.confidence);
                } else {
                    println!(
                        "    {:?} clashes with {:?} (confidence {:.2})",
                        f.suspect, f.witness, f.confidence
                    );
                }
            }
            total += col.findings;
        }
    }
    println!(
        "\n{total} suspicious value(s) across {} columns",
        response.columns.len()
    );
    println!(
        "served by model {:?} (generation {}, batched with {} other request(s))",
        response.model, response.generation, response.batched_with
    );
    if let Some(ensemble) = &response.ensemble {
        println!("ensemble: merge {}", ensemble.merge);
        for lane in &ensemble.detectors {
            println!(
                "    {:<12} {:>9.1} ms  {:>6} prediction(s)",
                lane.name,
                lane.wall_nanos as f64 / 1e6,
                lane.predictions
            );
        }
    }
    Ok(())
}

fn cmd_stop(args: &cli::Args) -> Result<(), String> {
    use auto_detect::serve::Client;
    let addr = args
        .options
        .get("--addr")
        .ok_or("stop requires --addr HOST:PORT of a running `autodetect serve`")?;
    let client = Client::new(addr).map_err(|e| e.to_string())?;
    client
        .shutdown()
        .map_err(|e| format!("stopping {addr}: {e}"))?;
    eprintln!("asked {addr} to shut down");
    Ok(())
}

fn cmd_check(args: &cli::Args) -> Result<(), String> {
    let v1 = args.positional.get(1).ok_or("check requires two values")?;
    let v2 = args.positional.get(2).ok_or("check requires two values")?;
    let model = require_model(args)?;
    let verdict = model.score_pair(v1, v2);
    println!(
        "{} — confidence {:.3}, per-language NPMI {:?}",
        if verdict.incompatible {
            "INCOMPATIBLE"
        } else {
            "compatible"
        },
        verdict.confidence,
        verdict
            .scores
            .iter()
            .map(|s| (s * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match cli::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.positional.first().map(|s| s.as_str()) {
        Some("gen-corpus") => cmd_gen_corpus(&args),
        Some("train") => cmd_train(&args),
        Some("scan") => cmd_scan(&args),
        Some("check") => cmd_check(&args),
        Some("serve") => cmd_serve(&args),
        Some("query") => cmd_query(&args),
        Some("stop") => cmd_stop(&args),
        _ => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod cooc_flag_tests {
    use super::*;

    fn parse(s: &[&str]) -> cli::Args {
        cli::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn cooc_mode_parses_and_rejects() {
        use auto_detect::stats::CoocMode;
        assert_eq!(
            cooc_mode(&parse(&["train", "--cooc", "streaming"])).unwrap(),
            CoocMode::Streaming
        );
        assert_eq!(
            cooc_mode(&parse(&["train", "--cooc", "exact"])).unwrap(),
            CoocMode::Exact
        );
        assert_eq!(cooc_mode(&parse(&["train"])).unwrap(), CoocMode::Deferred);
        let err = cooc_mode(&parse(&["train", "--cooc", "fast"])).unwrap_err();
        assert!(err.contains("--cooc"), "{err}");
    }
}
