//! Property-based tests for the pattern algebra.

use adt_patterns::{
    crude_generalize, enumerate_restricted_languages, normalized_pattern_distance,
    pattern_distance, Language, Pattern,
};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = String> {
    // Mix of realistic cell contents and arbitrary printable junk.
    prop_oneof![
        "[0-9]{1,6}",
        "[0-9]{4}-[0-9]{2}-[0-9]{2}",
        "[A-Za-z]{1,10}",
        "\\$[0-9]{1,3}(,[0-9]{3}){0,2}\\.[0-9]{2}",
        "[ -~]{0,20}",
    ]
}

proptest! {
    #[test]
    fn generalization_is_total_and_deterministic(v in arb_value()) {
        for lang in enumerate_restricted_languages() {
            let p1 = Pattern::generalize(&v, &lang);
            let p2 = Pattern::generalize(&v, &lang);
            prop_assert_eq!(p1.hash64(), p2.hash64());
        }
    }

    #[test]
    fn expanded_length_equals_char_count(v in arb_value()) {
        let lang = Language::paper_l2();
        let p = Pattern::generalize(&v, &lang);
        prop_assert_eq!(p.expanded().len(), v.chars().count());
    }

    #[test]
    fn coarser_language_never_splits_patterns(a in arb_value(), b in arb_value()) {
        // If two values collide under a finer language, they must also
        // collide under every language that is coarser on all classes.
        let langs = enumerate_restricted_languages();
        for fine in &langs {
            let pa = Pattern::generalize(&a, fine);
            let pb = Pattern::generalize(&b, fine);
            if pa != pb {
                continue;
            }
            for coarse in &langs {
                if coarse.is_coarser_or_equal(fine) {
                    let qa = Pattern::generalize(&a, coarse);
                    let qb = Pattern::generalize(&b, coarse);
                    prop_assert_eq!(qa, qb);
                }
            }
        }
    }

    #[test]
    fn distance_is_symmetric_and_nonnegative(a in arb_value(), b in arb_value()) {
        let pa = Pattern::generalize(&a, &Language::paper_l2());
        let pb = Pattern::generalize(&b, &Language::paper_l2());
        let dab = pattern_distance(&pa, &pb);
        let dba = pattern_distance(&pb, &pa);
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!(dab >= 0.0);
    }

    #[test]
    fn normalized_distance_in_unit_interval(a in arb_value(), b in arb_value()) {
        let pa = Pattern::generalize(&a, &Language::leaf());
        let pb = Pattern::generalize(&b, &Language::leaf());
        let d = normalized_pattern_distance(&pa, &pb);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn distance_zero_iff_same_pattern(a in arb_value(), b in arb_value()) {
        let pa = Pattern::generalize(&a, &Language::paper_l2());
        let pb = Pattern::generalize(&b, &Language::paper_l2());
        let d = pattern_distance(&pa, &pb);
        if pa == pb {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn crude_generalization_identity_on_same_value(v in arb_value()) {
        prop_assert_eq!(crude_generalize(&v), crude_generalize(&v));
    }

    #[test]
    fn display_roundtrips_identity(v in arb_value()) {
        // Two values with equal display under a language have equal hashes.
        let lang = Language::paper_l1();
        let p = Pattern::generalize(&v, &lang);
        let q = Pattern::generalize(&v, &lang);
        prop_assert_eq!(p.to_string(), q.to_string());
        prop_assert_eq!(p.hash64(), q.hash64());
    }
}
