//! Generalization trees, generalization languages, and pattern algebra.
//!
//! This crate implements the pattern machinery of *Auto-Detect: Data-Driven
//! Error Detection in Tables* (Huang & He, SIGMOD 2018):
//!
//! * [`tree`] — generalization trees over an alphabet (Definition 1),
//!   including the paper's Figure 3 tree;
//! * [`language`] — generalization languages, i.e. mappings from characters
//!   to tree nodes (Definition 2), in the restricted per-class form the
//!   paper enumerates (144 candidates);
//! * [`pattern`] — the result of applying a language to a value (Equation 3):
//!   run-length token sequences such as `\D[4]\S\D[2]`;
//! * [`classify`] — the branch-free byte→class classifier and SWAR
//!   char-run scanner underneath `Pattern::generalize` and the
//!   multi-language hasher;
//! * [`enumeration`] — enumeration of the restricted candidate language
//!   spaces used for language selection;
//! * [`crude`] — the fixed crude generalization `G()` used by
//!   distant-supervision training-data generation (Appendix F);
//! * [`distance`] — alignment-style distances between patterns, used by the
//!   SVDD/DBOD/LOF baselines.
//!
//! # Example
//!
//! ```
//! use adt_patterns::{Language, Pattern};
//!
//! // L2 from the paper's Example 2: letters -> \L, digits -> \D, symbols -> \S
//! let l2 = Language::paper_l2();
//! let p1 = Pattern::generalize("2014-01", &l2);
//! let p2 = Pattern::generalize("July-01", &l2);
//! assert_eq!(p1.to_string(), r"\D[4]\S\D[2]");
//! assert_eq!(p2.to_string(), r"\L[4]\S\D[2]");
//! assert_ne!(p1.hash64(), p2.hash64());
//! ```

pub mod classify;
pub mod crude;
pub mod cut;
pub mod distance;
pub mod enumeration;
pub mod language;
pub mod multi;
pub mod pattern;
pub mod tree;

pub use classify::{char_runs, CharRun, CharRuns};
pub use crude::crude_generalize;
pub use cut::{whitespace_tree, CutLanguage};
pub use distance::{normalized_pattern_distance, pattern_distance};
pub use enumeration::{enumerate_coarse_languages, enumerate_restricted_languages};
pub use language::{CharKind, Language, Level};
pub use multi::{MultiGeneralizer, MultiHasher};
pub use pattern::{Pattern, PatternHash, Token};
pub use tree::{GeneralizationTree, NodeId};
