//! Generalization languages (Definition 2 of the paper).
//!
//! A generalization language maps every character of the alphabet to a node
//! of the generalization tree that is an ancestor of (or equal to) the
//! character's leaf. The paper restricts the candidate space so that all
//! characters of a class (upper-case letters, lower-case letters, digits,
//! symbols) generalize to the same level, which yields the 144-language
//! space enumerated in [`crate::enumeration`]. [`Language`] is that
//! restricted form; it is the operational representation used everywhere in
//! the pipeline because applying it is a per-character table lookup.

use crate::tree::GeneralizationTree;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Character class of the Figure 3 alphabet.
///
/// Characters outside printable ASCII are conservatively treated as
/// [`CharKind::Symbol`]; this keeps generalization total over arbitrary
/// cell contents (the paper focuses on the English alphabet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CharKind {
    /// `A`–`Z`
    Upper,
    /// `a`–`z`
    Lower,
    /// `0`–`9`
    Digit,
    /// Everything else (punctuation, whitespace, non-ASCII).
    Symbol,
}

impl CharKind {
    /// Classifies a character.
    #[inline]
    pub fn of(c: char) -> CharKind {
        if c.is_ascii_uppercase() {
            CharKind::Upper
        } else if c.is_ascii_lowercase() {
            CharKind::Lower
        } else if c.is_ascii_digit() {
            CharKind::Digit
        } else {
            CharKind::Symbol
        }
    }
}

/// Level a character class generalizes to.
///
/// Which levels are valid depends on the class: letters have four levels
/// (leaf, `\U`/`\l`, `\L`, `\A`), digits and symbols have three (leaf,
/// `\D`/`\S`, `\A`), mirroring the Figure 3 tree depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Keep the literal character (leaf of the tree).
    Leaf,
    /// The class node directly above the leaves: `\U`, `\l`, `\D`, `\S`.
    Class,
    /// Letters only: the `\L` node above `\U` and `\l`.
    Super,
    /// The root `\A`.
    Root,
}

/// A restricted generalization language: one level per character class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Language {
    /// Level for `A`–`Z`.
    pub upper: Level,
    /// Level for `a`–`z`.
    pub lower: Level,
    /// Level for `0`–`9`.
    pub digit: Level,
    /// Level for symbols.
    pub symbol: Level,
}

impl Language {
    /// Builds a language, validating per-class level legality.
    ///
    /// `Level::Super` is only meaningful for letter classes (it is the `\L`
    /// node); digits and symbols have no super-class node in Figure 3.
    pub fn new(upper: Level, lower: Level, digit: Level, symbol: Level) -> Result<Self, String> {
        if digit == Level::Super {
            return Err("digits have no \\L-style super class".into());
        }
        if symbol == Level::Super {
            return Err("symbols have no \\L-style super class".into());
        }
        Ok(Language {
            upper,
            lower,
            digit,
            symbol,
        })
    }

    /// The level assigned to a character class.
    #[inline]
    pub fn level_of(&self, kind: CharKind) -> Level {
        match kind {
            CharKind::Upper => self.upper,
            CharKind::Lower => self.lower,
            CharKind::Digit => self.digit,
            CharKind::Symbol => self.symbol,
        }
    }

    /// `L1` from the paper's Example 2: symbols stay literal, everything
    /// else generalizes to the root `\A`.
    pub fn paper_l1() -> Self {
        Language {
            upper: Level::Root,
            lower: Level::Root,
            digit: Level::Root,
            symbol: Level::Leaf,
        }
    }

    /// `L2` from the paper's Example 2: letters to `\L`, digits to `\D`,
    /// symbols to `\S`.
    pub fn paper_l2() -> Self {
        Language {
            upper: Level::Super,
            lower: Level::Super,
            digit: Level::Class,
            symbol: Level::Class,
        }
    }

    /// `L_leaf`: no generalization at all (sensitive, sparse).
    pub fn leaf() -> Self {
        Language {
            upper: Level::Leaf,
            lower: Level::Leaf,
            digit: Level::Leaf,
            symbol: Level::Leaf,
        }
    }

    /// `L_root`: everything generalizes to `\A` (robust, insensitive).
    pub fn root() -> Self {
        Language {
            upper: Level::Root,
            lower: Level::Root,
            digit: Level::Root,
            symbol: Level::Root,
        }
    }

    /// The tree node each character class maps to, as a comparable id:
    /// `None` for leaf level (each character its own node), `Some(label)`
    /// for an internal node.
    fn class_nodes(&self) -> [Option<&'static str>; 4] {
        fn node(level: Level, class_label: &'static str) -> Option<&'static str> {
            match level {
                Level::Leaf => None,
                Level::Class => Some(class_label),
                Level::Super => Some(r"\L"),
                Level::Root => Some(r"\A"),
            }
        }
        [
            node(self.upper, r"\U"),
            node(self.lower, r"\l"),
            node(self.digit, r"\D"),
            node(self.symbol, r"\S"),
        ]
    }

    /// True when `self` generalizes at least as much as `other`, in the
    /// pattern-refinement sense: every pair of values with equal patterns
    /// under `other` also has equal patterns under `self`.
    ///
    /// Pointwise level comparison per class is *not* sufficient: lifting
    /// upper-case from `\L` to `\A` while lower-case stays at `\L` splits
    /// values that `other` had merged under `\L`. Coarsening must (a) not
    /// lower any class's level and (b) preserve every class merge `other`
    /// performs (classes sharing a node under `other` must share one
    /// under `self`).
    pub fn is_coarser_or_equal(&self, other: &Language) -> bool {
        let pointwise = self.upper >= other.upper
            && self.lower >= other.lower
            && self.digit >= other.digit
            && self.symbol >= other.symbol;
        if !pointwise {
            return false;
        }
        let mine = self.class_nodes();
        let theirs = other.class_nodes();
        for i in 0..4 {
            for j in (i + 1)..4 {
                let merged_in_other = theirs[i].is_some() && theirs[i] == theirs[j];
                let merged_in_self = mine[i].is_some() && mine[i] == mine[j];
                if merged_in_other && !merged_in_self {
                    return false;
                }
            }
        }
        true
    }

    /// Checks this language against an explicit tree: every alphabet
    /// character must map to an ancestor of its leaf (Definition 2).
    pub fn is_consistent_with(&self, tree: &GeneralizationTree) -> bool {
        tree.alphabet().all(|c| {
            let leaf = match tree.leaf(c) {
                Some(l) => l,
                None => return false,
            };
            let target_label = self.node_label(c);
            tree.ancestors_of(leaf)
                .into_iter()
                .any(|id| tree.node(id).label == target_label)
        })
    }

    /// The tree-node label character `c` maps to under this language.
    pub fn node_label(&self, c: char) -> String {
        let kind = CharKind::of(c);
        match self.level_of(kind) {
            Level::Leaf => c.to_string(),
            Level::Class => match kind {
                CharKind::Upper => r"\U".into(),
                CharKind::Lower => r"\l".into(),
                CharKind::Digit => r"\D".into(),
                CharKind::Symbol => r"\S".into(),
            },
            Level::Super => r"\L".into(),
            Level::Root => r"\A".into(),
        }
    }

    /// A short stable identifier, e.g. `U2l2d1s0`, encoding per-class levels
    /// (0 = leaf, 1 = class, 2 = super, 3 = root). Useful in reports.
    pub fn id(&self) -> String {
        fn lv(l: Level) -> u8 {
            match l {
                Level::Leaf => 0,
                Level::Class => 1,
                Level::Super => 2,
                Level::Root => 3,
            }
        }
        format!(
            "U{}l{}d{}s{}",
            lv(self.upper),
            lv(self.lower),
            lv(self.digit),
            lv(self.symbol)
        )
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_chars() {
        assert_eq!(CharKind::of('Q'), CharKind::Upper);
        assert_eq!(CharKind::of('q'), CharKind::Lower);
        assert_eq!(CharKind::of('7'), CharKind::Digit);
        assert_eq!(CharKind::of('-'), CharKind::Symbol);
        assert_eq!(CharKind::of(' '), CharKind::Symbol);
        assert_eq!(CharKind::of('é'), CharKind::Symbol);
    }

    #[test]
    fn super_level_invalid_for_digits_and_symbols() {
        assert!(Language::new(Level::Leaf, Level::Leaf, Level::Super, Level::Leaf).is_err());
        assert!(Language::new(Level::Leaf, Level::Leaf, Level::Leaf, Level::Super).is_err());
        assert!(Language::new(Level::Super, Level::Super, Level::Class, Level::Class).is_ok());
    }

    #[test]
    fn paper_languages_consistent_with_figure3() {
        let t = GeneralizationTree::figure3();
        assert!(Language::paper_l1().is_consistent_with(&t));
        assert!(Language::paper_l2().is_consistent_with(&t));
        assert!(Language::leaf().is_consistent_with(&t));
        assert!(Language::root().is_consistent_with(&t));
    }

    #[test]
    fn coarseness_partial_order() {
        let root = Language::root();
        let leaf = Language::leaf();
        let l2 = Language::paper_l2();
        assert!(root.is_coarser_or_equal(&leaf));
        assert!(root.is_coarser_or_equal(&l2));
        assert!(l2.is_coarser_or_equal(&leaf));
        assert!(!leaf.is_coarser_or_equal(&l2));
        // L1 and L2 are incomparable: L1 is coarser on digits, finer on symbols.
        let l1 = Language::paper_l1();
        assert!(!l1.is_coarser_or_equal(&l2));
        assert!(!l2.is_coarser_or_equal(&l1));
    }

    #[test]
    fn coarsening_must_preserve_merges() {
        // Lifting upper to \A while lower stays at \L would SPLIT values
        // like "aAaa" / "AAaA" that the \L-level language merges; the
        // refinement order must reject it despite pointwise-higher levels.
        let merged = Language::new(Level::Super, Level::Super, Level::Class, Level::Class).unwrap();
        let lifted = Language::new(Level::Root, Level::Super, Level::Class, Level::Class).unwrap();
        assert!(!lifted.is_coarser_or_equal(&merged));
        // But lifting BOTH letter classes to \A preserves the merge.
        let both = Language::new(Level::Root, Level::Root, Level::Class, Level::Class).unwrap();
        assert!(both.is_coarser_or_equal(&merged));
    }

    #[test]
    fn ids_are_distinct_for_paper_languages() {
        assert_ne!(Language::paper_l1().id(), Language::paper_l2().id());
        assert_eq!(Language::paper_l1().id(), "U3l3d3s0");
        assert_eq!(Language::paper_l2().id(), "U2l2d1s1");
    }

    #[test]
    fn node_labels() {
        let l2 = Language::paper_l2();
        assert_eq!(l2.node_label('X'), r"\L");
        assert_eq!(l2.node_label('4'), r"\D");
        assert_eq!(l2.node_label('.'), r"\S");
        let l1 = Language::paper_l1();
        assert_eq!(l1.node_label('.'), ".");
        assert_eq!(l1.node_label('4'), r"\A");
    }
}
