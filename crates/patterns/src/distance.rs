//! Alignment-style distances between patterns.
//!
//! The SVDD, DBOD and LOF baselines of the paper's §4.2 need a distance
//! between values; the paper uses "an alignment-like definition of patterns
//! distance" (citing the TEGRA alignment work). We implement a token-level
//! Levenshtein alignment over the expanded (per-character) token sequences
//! of two patterns, with a cheaper substitution cost for tokens that share a
//! character class than for tokens that do not.

use crate::pattern::{Pattern, Token};

/// Substitution cost between two per-character tokens.
///
/// Identical tokens cost 0; tokens within the same branch of the Figure 3
/// tree (e.g. `\U` vs `\l`, or literal `a` vs `\l`) cost 0.5; tokens from
/// different branches cost 1. Insertions/deletions cost 1.
fn subst_cost(a: Token, b: Token) -> f64 {
    if a == b {
        return 0.0;
    }
    let branch = |t: Token| -> u8 {
        match t {
            Token::Upper | Token::Lower | Token::Letter => 0,
            Token::Digit => 1,
            Token::Symbol | Token::Any => 2,
            Token::Literal(c) => {
                if c.is_ascii_alphabetic() {
                    0
                } else if c.is_ascii_digit() {
                    1
                } else {
                    2
                }
            }
        }
    };
    // \A matches anything at half cost: it is an ancestor of every branch.
    if a == Token::Any || b == Token::Any {
        return 0.5;
    }
    if branch(a) == branch(b) {
        0.5
    } else {
        1.0
    }
}

/// Cap on expanded token length for the O(n·m) alignment; degenerate
/// multi-kilobyte cells would otherwise make the SVDD/DBOD/LOF baselines
/// quadratic in cell size. 256 tokens comfortably covers real table
/// values.
const MAX_ALIGN_TOKENS: usize = 256;

/// Token-level alignment (edit) distance between two patterns.
///
/// Runs on the expanded token sequences, so run lengths matter: `\D[4]` and
/// `\D[2]` are two insertions apart. Inputs longer than
/// `MAX_ALIGN_TOKENS` are truncated for the alignment (distance remains a
/// premetric on such degenerate values).
pub fn pattern_distance(a: &Pattern, b: &Pattern) -> f64 {
    let mut xa = a.expanded();
    let mut xb = b.expanded();
    xa.truncate(MAX_ALIGN_TOKENS);
    xb.truncate(MAX_ALIGN_TOKENS);
    if xa.is_empty() {
        return xb.len() as f64;
    }
    if xb.is_empty() {
        return xa.len() as f64;
    }
    // Classic two-row DP.
    let mut prev: Vec<f64> = (0..=xb.len()).map(|j| j as f64).collect();
    let mut cur = vec![0.0; xb.len() + 1];
    for (i, &ta) in xa.iter().enumerate() {
        cur[0] = (i + 1) as f64;
        for (j, &tb) in xb.iter().enumerate() {
            let del = prev[j + 1] + 1.0;
            let ins = cur[j] + 1.0;
            let sub = prev[j] + subst_cost(ta, tb);
            cur[j + 1] = del.min(ins).min(sub);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[xb.len()]
}

/// Distance normalized to `[0, 1]` by the longer pattern length; equal
/// patterns are at 0, completely dissimilar equal-length patterns at 1.
pub fn normalized_pattern_distance(a: &Pattern, b: &Pattern) -> f64 {
    let la = a.expanded().len().min(MAX_ALIGN_TOKENS);
    let lb = b.expanded().len().min(MAX_ALIGN_TOKENS);
    let denom = la.max(lb);
    if denom == 0 {
        return 0.0;
    }
    pattern_distance(a, b) / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::Language;

    fn pat(v: &str) -> Pattern {
        Pattern::generalize(v, &Language::paper_l2())
    }

    #[test]
    fn identity_distance_zero() {
        let p = pat("2011-01-01");
        assert_eq!(pattern_distance(&p, &p), 0.0);
        assert_eq!(normalized_pattern_distance(&p, &p), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = pat("2011-01-01");
        let b = pat("July-01");
        assert_eq!(pattern_distance(&a, &b), pattern_distance(&b, &a));
    }

    #[test]
    fn same_format_dates_are_zero_distance_under_l2() {
        let a = pat("1918-01-01");
        let b = pat("2018-12-31");
        assert_eq!(pattern_distance(&a, &b), 0.0);
    }

    #[test]
    fn run_length_differences_cost_insertions() {
        let a = pat("123");
        let b = pat("12345");
        assert_eq!(pattern_distance(&a, &b), 2.0);
    }

    #[test]
    fn cross_branch_costs_more_than_within_branch() {
        let leaf = Language::leaf();
        let upper = Pattern::generalize("A", &leaf);
        let lower = Pattern::generalize("a", &leaf);
        let digit = Pattern::generalize("1", &leaf);
        assert!(pattern_distance(&upper, &lower) < pattern_distance(&upper, &digit));
    }

    #[test]
    fn empty_pattern_distance_is_length() {
        let empty = pat("");
        let p = pat("abc");
        assert_eq!(pattern_distance(&empty, &p), 3.0);
        assert_eq!(normalized_pattern_distance(&empty, &p), 1.0);
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let vals = ["2011-01-01", "2011/01/01", "July-01", "1,000", "3.5%"];
        let pats: Vec<Pattern> = vals.iter().map(|v| pat(v)).collect();
        for a in &pats {
            for b in &pats {
                for c in &pats {
                    let ab = pattern_distance(a, b);
                    let bc = pattern_distance(b, c);
                    let ac = pattern_distance(a, c);
                    assert!(ac <= ab + bc + 1e-9);
                }
            }
        }
    }

    #[test]
    fn degenerate_huge_values_stay_cheap_and_bounded() {
        let leaf = Language::leaf();
        let huge_a = Pattern::generalize(&"x".repeat(50_000), &leaf);
        let huge_b = Pattern::generalize(&"9".repeat(50_000), &leaf);
        let t0 = std::time::Instant::now();
        let d = normalized_pattern_distance(&huge_a, &huge_b);
        assert!((0.0..=1.0).contains(&d));
        assert!(d > 0.5, "cross-class huge values should be far apart: {d}");
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(200),
            "alignment must be capped, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn normalized_bounded() {
        let vals = ["x", "2011-01-01", "$1,000,000.00", "", "ABC 123"];
        for a in &vals {
            for b in &vals {
                let d = normalized_pattern_distance(&pat(a), &pat(b));
                assert!((0.0..=1.0).contains(&d), "d={d} for {a:?},{b:?}");
            }
        }
    }
}
