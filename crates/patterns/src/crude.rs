//! The crude generalization `G()` used by distant supervision (Appendix F).
//!
//! `G()` generalizes characters by class — digits to `\D`, upper-case
//! letters to `\U`, lower-case letters to `\l` — while leaving symbols and
//! punctuation untouched. It is the fixed rule the paper uses to score the
//! compatibility of candidate training columns before any language has been
//! selected.

use crate::language::{Language, Level};
use crate::pattern::Pattern;

/// The crude generalization language `G` of Appendix F.
pub fn crude_language() -> Language {
    Language {
        upper: Level::Class,
        lower: Level::Class,
        digit: Level::Class,
        symbol: Level::Leaf,
    }
}

/// Applies `G()` to a value.
///
/// ```
/// use adt_patterns::crude_generalize;
/// assert_eq!(crude_generalize("2011-01-01").to_string(), r"\D[4]-\D[2]-\D[2]");
/// ```
pub fn crude_generalize(value: &str) -> Pattern {
    Pattern::generalize(value, &crude_language())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crude_keeps_symbols_literal() {
        let p = crude_generalize("2011-01-01");
        assert_eq!(p.to_string(), r"\D[4]-\D[2]-\D[2]");
    }

    #[test]
    fn crude_distinguishes_case() {
        let p1 = crude_generalize("July");
        assert_eq!(p1.to_string(), r"\U\l[3]");
        let p2 = crude_generalize("JULY");
        assert_eq!(p2.to_string(), r"\U[4]");
        assert_ne!(p1.hash64(), p2.hash64());
    }

    #[test]
    fn crude_separates_date_formats() {
        let a = crude_generalize("2011-01-01");
        let b = crude_generalize("2011/01/01");
        assert_ne!(a.hash64(), b.hash64());
    }

    #[test]
    fn crude_collapses_same_format() {
        let a = crude_generalize("1918-01-01");
        let b = crude_generalize("2018-12-31");
        assert_eq!(a, b);
    }
}
