//! General tree-cut languages: Definition 2 over arbitrary
//! generalization trees.
//!
//! [`crate::Language`] hard-codes the Figure 3 tree's restricted form
//! (one level per built-in character class) — the operational fast path.
//! [`CutLanguage`] implements the unrestricted definition: any antichain
//! of tree nodes covering the alphabet ("cut") induces a language mapping
//! each character to its covering node. This supports custom trees, e.g.
//! one that separates whitespace from punctuation, which the paper's
//! extra-space errors (Figure 2(a)) motivate.

use crate::pattern::PatternHash;
use crate::tree::{GeneralizationTree, NodeId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A generalization language defined as a cut of an arbitrary tree.
#[derive(Debug, Clone)]
pub struct CutLanguage {
    /// Node label each alphabet character maps to.
    map: HashMap<char, String>,
    /// Stable identifier derived from the cut's node set.
    id: String,
}

impl CutLanguage {
    /// Builds the language induced by `cut` on `tree`.
    ///
    /// Every alphabet character must be covered by exactly one node of
    /// the cut (a node covers a character when it is an ancestor of, or
    /// equal to, the character's leaf).
    pub fn from_cut(tree: &GeneralizationTree, cut: &[NodeId]) -> Result<CutLanguage, String> {
        let mut map = HashMap::new();
        for c in tree.alphabet() {
            let leaf = tree.leaf(c).expect("alphabet char has a leaf");
            let covering: Vec<NodeId> = cut
                .iter()
                .copied()
                .filter(|&n| tree.is_ancestor_or_self(n, leaf))
                .collect();
            match covering.as_slice() {
                [node] => {
                    map.insert(c, tree.node(*node).label.clone());
                }
                [] => return Err(format!("character {c:?} not covered by the cut")),
                _ => {
                    return Err(format!(
                        "character {c:?} covered by {} cut nodes (not an antichain)",
                        covering.len()
                    ))
                }
            }
        }
        let mut labels: Vec<&str> = cut.iter().map(|&n| tree.node(n).label.as_str()).collect();
        labels.sort_unstable();
        Ok(CutLanguage {
            map,
            id: format!("cut[{}]", labels.join(",")),
        })
    }

    /// Stable identifier of the cut.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Generalizes a value: per-character node labels, run-length
    /// collapsed, rendered in the paper's notation. Characters outside
    /// the tree's alphabet map to themselves (kept literal).
    pub fn generalize(&self, value: &str) -> String {
        fn flush(out: &mut String, run: &Option<(String, bool, u32)>) {
            if let Some((label, is_leaf, n)) = run {
                if *is_leaf {
                    for _ in 0..*n {
                        out.push_str(label);
                    }
                } else if *n == 1 {
                    out.push_str(label);
                } else {
                    let _ = write!(out, "{label}[{n}]");
                }
            }
        }
        let mut out = String::new();
        let mut run: Option<(String, bool, u32)> = None; // (label, is_leaf, len)
        for c in value.chars() {
            let (label, is_leaf) = match self.map.get(&c) {
                Some(l) => (l.clone(), l.chars().count() == 1),
                None => (c.to_string(), true),
            };
            match &mut run {
                Some((rl, rleaf, n)) if *rl == label && *rleaf == is_leaf => *n += 1,
                _ => {
                    flush(&mut out, &run);
                    run = Some((label, is_leaf, 1));
                }
            }
        }
        flush(&mut out, &run);
        out
    }

    /// Pattern hash of a value under this cut (FNV-1a of the rendering).
    pub fn pattern_hash(&self, value: &str) -> PatternHash {
        let rendered = self.generalize(value);
        let mut h = 0xcbf29ce484222325u64;
        for b in rendered.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        PatternHash(h)
    }
}

/// The Figure 3 tree extended with a whitespace class: symbols split into
/// `\W` (space/tab) and `\P` (punctuation). Cuts of this tree can detect
/// whitespace anomalies that the stock tree folds into `\S`.
pub fn whitespace_tree() -> GeneralizationTree {
    use crate::tree::TreeBuilder;
    let mut b = TreeBuilder::new(r"\A");
    let letters = b.child(b.root, r"\L");
    let upper = b.child(letters, r"\U");
    let lower = b.child(letters, r"\l");
    let digits = b.child(b.root, r"\D");
    let symbols = b.child(b.root, r"\S");
    let white = b.child(symbols, r"\W");
    let punct = b.child(symbols, r"\P");
    for c in 'A'..='Z' {
        b.leaf(upper, c);
    }
    for c in 'a'..='z' {
        b.leaf(lower, c);
    }
    for c in '0'..='9' {
        b.leaf(digits, c);
    }
    for c in ' '..='~' {
        if !c.is_ascii_alphanumeric() {
            if c == ' ' {
                b.leaf(white, c);
            } else {
                b.leaf(punct, c);
            }
        }
    }
    b.build().expect("whitespace tree is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_by_label(t: &GeneralizationTree, label: &str) -> NodeId {
        (0..t.len())
            .find(|&i| t.node(i).label == label)
            .unwrap_or_else(|| panic!("no node {label}"))
    }

    #[test]
    fn figure3_cut_reproduces_l2() {
        let t = GeneralizationTree::figure3();
        let cut = vec![
            node_by_label(&t, r"\L"),
            node_by_label(&t, r"\D"),
            node_by_label(&t, r"\S"),
        ];
        let lang = CutLanguage::from_cut(&t, &cut).unwrap();
        assert_eq!(lang.generalize("2014-01"), r"\D[4]\S\D[2]");
        assert_eq!(lang.generalize("July-01"), r"\L[4]\S\D[2]");
        // Matches the fast-path Language::paper_l2 rendering.
        let l2 = crate::Language::paper_l2();
        assert_eq!(
            lang.generalize("2014-01"),
            crate::Pattern::generalize("2014-01", &l2).to_string()
        );
    }

    #[test]
    fn incomplete_cut_rejected() {
        let t = GeneralizationTree::figure3();
        let cut = vec![node_by_label(&t, r"\L")]; // digits/symbols uncovered
        assert!(CutLanguage::from_cut(&t, &cut).is_err());
    }

    #[test]
    fn overlapping_cut_rejected() {
        let t = GeneralizationTree::figure3();
        let cut = vec![
            node_by_label(&t, r"\A"),
            node_by_label(&t, r"\D"), // \A already covers digits
        ];
        assert!(CutLanguage::from_cut(&t, &cut).is_err());
    }

    #[test]
    fn leaf_level_cut_keeps_literals() {
        let t = GeneralizationTree::figure3();
        // Cut: every leaf under \S literal, classes for the rest.
        let mut cut = vec![node_by_label(&t, r"\L"), node_by_label(&t, r"\D")];
        for c in ' '..='~' {
            if !c.is_ascii_alphanumeric() {
                cut.push(t.leaf(c).unwrap());
            }
        }
        let lang = CutLanguage::from_cut(&t, &cut).unwrap();
        assert_eq!(lang.generalize("2011-01-01"), r"\D[4]-\D[2]-\D[2]");
    }

    #[test]
    fn whitespace_tree_separates_space_from_punct() {
        let t = whitespace_tree();
        let cut = vec![
            node_by_label(&t, r"\L"),
            node_by_label(&t, r"\D"),
            node_by_label(&t, r"\W"),
            node_by_label(&t, r"\P"),
        ];
        let lang = CutLanguage::from_cut(&t, &cut).unwrap();
        let single = lang.generalize("John Smith");
        let double = lang.generalize("John  Smith");
        assert_ne!(single, double, "whitespace runs must be distinguishable");
        assert!(single.contains(r"\W"));
        // Punctuation does not collide with whitespace.
        assert_ne!(lang.generalize("a b"), lang.generalize("a-b"));
    }

    #[test]
    fn out_of_alphabet_chars_stay_literal() {
        let t = GeneralizationTree::figure3();
        let cut = vec![node_by_label(&t, r"\A")];
        let lang = CutLanguage::from_cut(&t, &cut).unwrap();
        let g = lang.generalize("ab—cd");
        assert!(g.contains('—'), "got {g}");
    }

    #[test]
    fn hashes_follow_renderings() {
        let t = GeneralizationTree::figure3();
        let cut = vec![
            node_by_label(&t, r"\L"),
            node_by_label(&t, r"\D"),
            node_by_label(&t, r"\S"),
        ];
        let lang = CutLanguage::from_cut(&t, &cut).unwrap();
        assert_eq!(
            lang.pattern_hash("2011-01-01"),
            lang.pattern_hash("2012-02-02")
        );
        // Under this class-level cut '-' and '/' both map to \S — the
        // Example 2 collision — so a separator swap is NOT distinguishable
        // here; a different shape is.
        assert_eq!(
            lang.pattern_hash("2011-01-01"),
            lang.pattern_hash("2011/01/01")
        );
        assert_ne!(
            lang.pattern_hash("2011-01-01"),
            lang.pattern_hash("July-01")
        );
    }
}
