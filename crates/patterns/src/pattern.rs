//! Patterns: the result of applying a generalization language to a value
//! (Equation 3 of the paper), stored as run-length token sequences such as
//! `\D[4]\S\D[2]` or `\A[4]-\A[2]-\A[2]`.

use crate::language::{CharKind, Language, Level};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One run-length token of a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Token {
    /// A literal character kept at leaf level, repeated `run` times.
    Literal(char),
    /// `\U` run.
    Upper,
    /// `\l` run.
    Lower,
    /// `\L` run.
    Letter,
    /// `\D` run.
    Digit,
    /// `\S` run.
    Symbol,
    /// `\A` run.
    Any,
}

impl Token {
    /// Token for character `c` under language `lang`.
    #[inline]
    pub fn of(c: char, lang: &Language) -> Token {
        let kind = CharKind::of(c);
        match lang.level_of(kind) {
            Level::Leaf => Token::Literal(c),
            Level::Class => match kind {
                CharKind::Upper => Token::Upper,
                CharKind::Lower => Token::Lower,
                CharKind::Digit => Token::Digit,
                CharKind::Symbol => Token::Symbol,
            },
            Level::Super => Token::Letter,
            Level::Root => Token::Any,
        }
    }

    fn label(&self) -> String {
        match self {
            Token::Literal(c) => c.to_string(),
            Token::Upper => r"\U".into(),
            Token::Lower => r"\l".into(),
            Token::Letter => r"\L".into(),
            Token::Digit => r"\D".into(),
            Token::Symbol => r"\S".into(),
            Token::Any => r"\A".into(),
        }
    }
}

/// 64-bit pattern identity used as the statistics key.
///
/// Wraps an FNV-1a hash of the token stream. Collisions are possible in
/// principle but at corpus scales (10^7–10^8 distinct patterns) the expected
/// collision count is negligible and only perturbs counts, which the method
/// tolerates by design (it already tolerates count-min overestimates).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PatternHash(pub u64);

pub(crate) const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
pub(crate) fn fnv1a_step(mut h: u64, byte: u8) -> u64 {
    h ^= byte as u64;
    h = h.wrapping_mul(FNV_PRIME);
    h
}

/// A generalized pattern: run-length encoded token sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern {
    runs: Vec<(Token, u32)>,
}

impl Pattern {
    /// Applies `lang` to `value` (Equation 3) and run-length encodes the
    /// token stream. The empty value produces the empty pattern.
    pub fn generalize(value: &str, lang: &Language) -> Pattern {
        let mut runs: Vec<(Token, u32)> = Vec::with_capacity(8);
        for c in value.chars() {
            let t = Token::of(c, lang);
            match runs.last_mut() {
                Some((last, n)) if *last == t => *n += 1,
                _ => runs.push((t, 1)),
            }
        }
        Pattern { runs }
    }

    /// The run-length tokens of this pattern.
    pub fn runs(&self) -> &[(Token, u32)] {
        &self.runs
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when the source value was empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Expands to per-character tokens (undoing run-length coding); used by
    /// the alignment distance.
    pub fn expanded(&self) -> Vec<Token> {
        let mut out = Vec::with_capacity(self.runs.iter().map(|&(_, n)| n as usize).sum());
        for &(t, n) in &self.runs {
            out.extend(std::iter::repeat_n(t, n as usize));
        }
        out
    }

    /// Stable 64-bit hash of the pattern (FNV-1a over tokens and run
    /// lengths). Two patterns compare equal iff their hashes were computed
    /// from identical token streams, modulo 64-bit collisions.
    pub fn hash64(&self) -> PatternHash {
        let mut h = FNV_OFFSET;
        for &(t, n) in &self.runs {
            let tag: u8 = match t {
                Token::Literal(_) => 0,
                Token::Upper => 1,
                Token::Lower => 2,
                Token::Letter => 3,
                Token::Digit => 4,
                Token::Symbol => 5,
                Token::Any => 6,
            };
            h = fnv1a_step(h, tag);
            if let Token::Literal(c) = t {
                for b in (c as u32).to_le_bytes() {
                    h = fnv1a_step(h, b);
                }
            }
            for b in n.to_le_bytes() {
                h = fnv1a_step(h, b);
            }
        }
        PatternHash(h)
    }

    /// Approximate in-memory footprint of one occurrence-count entry for
    /// this pattern, in bytes: hash key + count. Used for `size(L)`
    /// accounting before sketching.
    pub const OCC_ENTRY_BYTES: usize = 16;
    /// Approximate footprint of one co-occurrence entry: ordered hash pair +
    /// count.
    pub const COOC_ENTRY_BYTES: usize = 24;
}

impl fmt::Display for Pattern {
    /// Prints in the paper's notation: literal runs verbatim (`--` for a
    /// two-symbol run), class runs as `\D[4]`, with `[1]` omitted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &(t, n) in &self.runs {
            match t {
                Token::Literal(c) => {
                    for _ in 0..n {
                        write!(f, "{c}")?;
                    }
                }
                _ => {
                    if n == 1 {
                        write!(f, "{}", t.label())?;
                    } else {
                        write!(f, "{}[{}]", t.label(), n)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example2_l1() {
        // L1: symbols literal, rest to \A.
        let l1 = Language::paper_l1();
        let p1 = Pattern::generalize("2011-01-01", &l1);
        let p2 = Pattern::generalize("2011.01.02", &l1);
        assert_eq!(p1.to_string(), r"\A[4]-\A[2]-\A[2]");
        assert_eq!(p2.to_string(), r"\A[4].\A[2].\A[2]");
        assert_ne!(p1.hash64(), p2.hash64());
    }

    #[test]
    fn paper_example2_l2_collapses_dates() {
        let l2 = Language::paper_l2();
        let p1 = Pattern::generalize("2011-01-01", &l2);
        let p2 = Pattern::generalize("2011.01.02", &l2);
        assert_eq!(p1.to_string(), r"\D[4]\S\D[2]\S\D[2]");
        assert_eq!(p1, p2);
        assert_eq!(p1.hash64(), p2.hash64());
    }

    #[test]
    fn paper_example2_l2_distinguishes_month_names() {
        let l2 = Language::paper_l2();
        let p3 = Pattern::generalize("2014-01", &l2);
        let p4 = Pattern::generalize("July-01", &l2);
        assert_eq!(p3.to_string(), r"\D[4]\S\D[2]");
        assert_eq!(p4.to_string(), r"\L[4]\S\D[2]");
        assert_ne!(p3.hash64(), p4.hash64());
    }

    #[test]
    fn paper_example2_l1_collapses_month_names() {
        let l1 = Language::paper_l1();
        let p3 = Pattern::generalize("2014-01", &l1);
        let p4 = Pattern::generalize("July-01", &l1);
        assert_eq!(p3, p4);
    }

    #[test]
    fn leaf_language_is_identity_like() {
        let leaf = Language::leaf();
        let p = Pattern::generalize("Ab-7", &leaf);
        assert_eq!(p.to_string(), "Ab-7");
        assert_eq!(p.expanded().len(), 4);
    }

    #[test]
    fn literal_runs_repeat() {
        let leaf = Language::leaf();
        let p = Pattern::generalize("aa--", &leaf);
        assert_eq!(p.to_string(), "aa--");
        assert_eq!(p.len(), 2); // two runs: 'a'x2, '-'x2
    }

    #[test]
    fn empty_value() {
        let p = Pattern::generalize("", &Language::paper_l2());
        assert!(p.is_empty());
        assert_eq!(p.to_string(), "");
    }

    #[test]
    fn run_length_matters_for_identity() {
        let l2 = Language::paper_l2();
        let p1 = Pattern::generalize("123", &l2);
        let p2 = Pattern::generalize("1234", &l2);
        assert_ne!(p1.hash64(), p2.hash64());
    }

    #[test]
    fn hash_distinguishes_literal_chars() {
        let l1 = Language::paper_l1();
        let p1 = Pattern::generalize("1-2", &l1);
        let p2 = Pattern::generalize("1/2", &l1);
        assert_ne!(p1.hash64(), p2.hash64());
    }

    #[test]
    fn unicode_treated_as_symbol() {
        let l2 = Language::paper_l2();
        let p = Pattern::generalize("café", &l2);
        // c,a,f -> \L run; é -> \S.
        assert_eq!(p.to_string(), r"\L[3]\S");
    }
}
