//! Patterns: the result of applying a generalization language to a value
//! (Equation 3 of the paper), stored as run-length token sequences such as
//! `\D[4]\S\D[2]` or `\A[4]-\A[2]-\A[2]`.

use crate::classify::{self, CharRun};
use crate::language::{CharKind, Language, Level};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One run-length token of a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Token {
    /// A literal character kept at leaf level, repeated `run` times.
    Literal(char),
    /// `\U` run.
    Upper,
    /// `\l` run.
    Lower,
    /// `\L` run.
    Letter,
    /// `\D` run.
    Digit,
    /// `\S` run.
    Symbol,
    /// `\A` run.
    Any,
}

impl Token {
    /// Token for character `c` under language `lang`.
    #[inline]
    pub fn of(c: char, lang: &Language) -> Token {
        let kind = CharKind::of(c);
        match lang.level_of(kind) {
            Level::Leaf => Token::Literal(c),
            Level::Class => match kind {
                CharKind::Upper => Token::Upper,
                CharKind::Lower => Token::Lower,
                CharKind::Digit => Token::Digit,
                CharKind::Symbol => Token::Symbol,
            },
            Level::Super => Token::Letter,
            Level::Root => Token::Any,
        }
    }

    fn label(&self) -> String {
        match self {
            Token::Literal(c) => c.to_string(),
            Token::Upper => r"\U".into(),
            Token::Lower => r"\l".into(),
            Token::Letter => r"\L".into(),
            Token::Digit => r"\D".into(),
            Token::Symbol => r"\S".into(),
            Token::Any => r"\A".into(),
        }
    }
}

/// [`Token::of`] for a whole classified char run: the kind lookup is
/// already done, so this is one `level_of` match per run instead of per
/// character.
#[inline]
fn token_of_run(r: &CharRun, lang: &Language) -> Token {
    let kind = classify::kind_of_index(r.kind);
    match lang.level_of(kind) {
        Level::Leaf => Token::Literal(r.ch),
        Level::Class => match kind {
            CharKind::Upper => Token::Upper,
            CharKind::Lower => Token::Lower,
            CharKind::Digit => Token::Digit,
            CharKind::Symbol => Token::Symbol,
        },
        Level::Super => Token::Letter,
        Level::Root => Token::Any,
    }
}

/// 64-bit pattern identity used as the statistics key.
///
/// Wraps an FNV-1a hash of the token stream. Collisions are possible in
/// principle but at corpus scales (10^7–10^8 distinct patterns) the expected
/// collision count is negligible and only perturbs counts, which the method
/// tolerates by design (it already tolerates count-min overestimates).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PatternHash(pub u64);

pub(crate) const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Folds one framed run word into the FNV-1a-style state — one XOR and
/// one multiply per **run**, where the old byte-serial framing spent 5–9
/// multiplies. Not bitwise FNV-1a over bytes (XOR does not distribute
/// over the modular multiply, so exact byte-batching is impossible); it
/// keeps FNV's offset/prime and mix shape over 64-bit words instead.
#[inline]
pub(crate) fn fnv1a_word(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// Frames one run as a single word: token tag in bits 0–7, run length in
/// bits 8–39, literal codepoint in bits 40–60 (zero for class runs). The
/// fields are disjoint and jointly exhaustive over `(tag, len, literal)`,
/// so distinct runs frame as distinct words.
#[inline]
pub(crate) fn run_word(tag: u8, len: u32, literal: u32) -> u64 {
    // adt-allow(unchecked-arithmetic): constant shifts; the three fields are disjoint in the u64 (pinned by the injectivity test)
    tag as u64 | (len as u64) << 8 | (literal as u64) << 40
}

/// Token tag as framed into [`run_word`]: `Literal = 0`, `\U = 1`,
/// `\l = 2`, `\L = 3`, `\D = 4`, `\S = 5`, `\A = 6`.
pub(crate) const TAG_LITERAL: u8 = 0;

/// The [`run_word`] tag a character of `kind` maps to under a language
/// that holds `kind` at `level`.
#[inline]
pub(crate) fn tag_of(level: Level, kind: CharKind) -> u8 {
    match level {
        Level::Leaf => TAG_LITERAL,
        Level::Class => match kind {
            CharKind::Upper => 1,
            CharKind::Lower => 2,
            CharKind::Digit => 4,
            CharKind::Symbol => 5,
        },
        Level::Super => 3,
        Level::Root => 6,
    }
}

#[inline]
fn token_tag(t: Token) -> (u8, u32) {
    match t {
        Token::Literal(c) => (TAG_LITERAL, u32::from(c)),
        Token::Upper => (1, 0),
        Token::Lower => (2, 0),
        Token::Letter => (3, 0),
        Token::Digit => (4, 0),
        Token::Symbol => (5, 0),
        Token::Any => (6, 0),
    }
}

/// A generalized pattern: run-length encoded token sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern {
    runs: Vec<(Token, u32)>,
}

impl Pattern {
    /// Applies `lang` to `value` (Equation 3) and run-length encodes the
    /// token stream. The empty value produces the empty pattern.
    ///
    /// Character runs come from the SWAR scanner in
    /// [`classify`](crate::classify); each maximal char run maps to one
    /// token in O(1), and adjacent runs that land on the same class token
    /// are merged (adjacent `Literal` runs never merge — maximal char
    /// runs already differ in their character).
    pub fn generalize(value: &str, lang: &Language) -> Pattern {
        let mut runs: Vec<(Token, u32)> = Vec::with_capacity(8);
        for r in classify::char_runs(value) {
            let t = token_of_run(&r, lang);
            match runs.last_mut() {
                Some((last, n)) if *last == t => *n += r.len,
                _ => runs.push((t, r.len)),
            }
        }
        Pattern { runs }
    }

    /// Scalar per-character reference for [`Pattern::generalize`]: the
    /// loop the SWAR path replaced, kept as a differential target.
    #[cfg(any(test, feature = "reference-kernel"))]
    pub fn generalize_reference(value: &str, lang: &Language) -> Pattern {
        let mut runs: Vec<(Token, u32)> = Vec::with_capacity(8);
        for c in value.chars() {
            let t = Token::of(c, lang);
            match runs.last_mut() {
                Some((last, n)) if *last == t => *n += 1,
                _ => runs.push((t, 1)),
            }
        }
        Pattern { runs }
    }

    /// `Pattern::generalize(value, lang).hash64()` without materializing
    /// the pattern: char runs fold straight into the FNV state, one
    /// multiply per pattern run. This is the single-language scan/train
    /// hot path.
    pub fn hash_value(value: &str, lang: &Language) -> PatternHash {
        let tags = [
            tag_of(lang.upper, CharKind::Upper),
            tag_of(lang.lower, CharKind::Lower),
            tag_of(lang.digit, CharKind::Digit),
            tag_of(lang.symbol, CharKind::Symbol),
        ];
        let mut h = FNV_OFFSET;
        let mut cur_tag = 0u8;
        let mut cur_lit = 0u32;
        let mut cur_len = 0u32;
        for r in classify::char_runs(value) {
            let tag = match tags.get(r.kind as usize) {
                Some(&t) => t,
                None => 5, // unreachable: kind is always 0..4
            };
            let lit = if tag == TAG_LITERAL {
                u32::from(r.ch)
            } else {
                0
            };
            if cur_len > 0 && tag == cur_tag && (tag != TAG_LITERAL || lit == cur_lit) {
                cur_len += r.len;
            } else {
                if cur_len > 0 {
                    h = fnv1a_word(h, run_word(cur_tag, cur_len, cur_lit));
                }
                cur_tag = tag;
                cur_lit = lit;
                cur_len = r.len;
            }
        }
        if cur_len > 0 {
            h = fnv1a_word(h, run_word(cur_tag, cur_len, cur_lit));
        }
        PatternHash(h)
    }

    /// The run-length tokens of this pattern.
    pub fn runs(&self) -> &[(Token, u32)] {
        &self.runs
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when the source value was empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Expands to per-character tokens (undoing run-length coding); used by
    /// the alignment distance.
    pub fn expanded(&self) -> Vec<Token> {
        let mut out = Vec::with_capacity(self.runs.iter().map(|&(_, n)| n as usize).sum());
        for &(t, n) in &self.runs {
            out.extend(std::iter::repeat_n(t, n as usize));
        }
        out
    }

    /// Stable 64-bit hash of the pattern (FNV-style word folding over
    /// framed runs — see [`run_word`]). Two patterns compare equal iff
    /// their hashes were computed from identical token streams, modulo
    /// 64-bit collisions.
    pub fn hash64(&self) -> PatternHash {
        let mut h = FNV_OFFSET;
        for &(t, n) in &self.runs {
            let (tag, lit) = token_tag(t);
            h = fnv1a_word(h, run_word(tag, n, lit));
        }
        PatternHash(h)
    }

    /// Approximate in-memory footprint of one occurrence-count entry for
    /// this pattern, in bytes: hash key + count. Used for `size(L)`
    /// accounting before sketching.
    pub const OCC_ENTRY_BYTES: usize = 16;
    /// Approximate footprint of one co-occurrence entry: ordered hash pair +
    /// count.
    pub const COOC_ENTRY_BYTES: usize = 24;
}

impl fmt::Display for Pattern {
    /// Prints in the paper's notation: literal runs verbatim (`--` for a
    /// two-symbol run), class runs as `\D[4]`, with `[1]` omitted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &(t, n) in &self.runs {
            match t {
                Token::Literal(c) => {
                    for _ in 0..n {
                        write!(f, "{c}")?;
                    }
                }
                _ => {
                    if n == 1 {
                        write!(f, "{}", t.label())?;
                    } else {
                        write!(f, "{}[{}]", t.label(), n)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example2_l1() {
        // L1: symbols literal, rest to \A.
        let l1 = Language::paper_l1();
        let p1 = Pattern::generalize("2011-01-01", &l1);
        let p2 = Pattern::generalize("2011.01.02", &l1);
        assert_eq!(p1.to_string(), r"\A[4]-\A[2]-\A[2]");
        assert_eq!(p2.to_string(), r"\A[4].\A[2].\A[2]");
        assert_ne!(p1.hash64(), p2.hash64());
    }

    #[test]
    fn paper_example2_l2_collapses_dates() {
        let l2 = Language::paper_l2();
        let p1 = Pattern::generalize("2011-01-01", &l2);
        let p2 = Pattern::generalize("2011.01.02", &l2);
        assert_eq!(p1.to_string(), r"\D[4]\S\D[2]\S\D[2]");
        assert_eq!(p1, p2);
        assert_eq!(p1.hash64(), p2.hash64());
    }

    #[test]
    fn paper_example2_l2_distinguishes_month_names() {
        let l2 = Language::paper_l2();
        let p3 = Pattern::generalize("2014-01", &l2);
        let p4 = Pattern::generalize("July-01", &l2);
        assert_eq!(p3.to_string(), r"\D[4]\S\D[2]");
        assert_eq!(p4.to_string(), r"\L[4]\S\D[2]");
        assert_ne!(p3.hash64(), p4.hash64());
    }

    #[test]
    fn paper_example2_l1_collapses_month_names() {
        let l1 = Language::paper_l1();
        let p3 = Pattern::generalize("2014-01", &l1);
        let p4 = Pattern::generalize("July-01", &l1);
        assert_eq!(p3, p4);
    }

    #[test]
    fn leaf_language_is_identity_like() {
        let leaf = Language::leaf();
        let p = Pattern::generalize("Ab-7", &leaf);
        assert_eq!(p.to_string(), "Ab-7");
        assert_eq!(p.expanded().len(), 4);
    }

    #[test]
    fn literal_runs_repeat() {
        let leaf = Language::leaf();
        let p = Pattern::generalize("aa--", &leaf);
        assert_eq!(p.to_string(), "aa--");
        assert_eq!(p.len(), 2); // two runs: 'a'x2, '-'x2
    }

    #[test]
    fn empty_value() {
        let p = Pattern::generalize("", &Language::paper_l2());
        assert!(p.is_empty());
        assert_eq!(p.to_string(), "");
    }

    #[test]
    fn run_length_matters_for_identity() {
        let l2 = Language::paper_l2();
        let p1 = Pattern::generalize("123", &l2);
        let p2 = Pattern::generalize("1234", &l2);
        assert_ne!(p1.hash64(), p2.hash64());
    }

    #[test]
    fn hash_distinguishes_literal_chars() {
        let l1 = Language::paper_l1();
        let p1 = Pattern::generalize("1-2", &l1);
        let p2 = Pattern::generalize("1/2", &l1);
        assert_ne!(p1.hash64(), p2.hash64());
    }

    #[test]
    fn unicode_treated_as_symbol() {
        let l2 = Language::paper_l2();
        let p = Pattern::generalize("café", &l2);
        // c,a,f -> \L run; é -> \S.
        assert_eq!(p.to_string(), r"\L[3]\S");
    }

    /// Values chosen to stress the SWAR scanner: boundary bytes, word
    /// phases, multibyte UTF-8, and long runs.
    fn differential_values() -> Vec<String> {
        let mut values: Vec<String> = [
            "",
            "a",
            "A",
            "7",
            "-",
            "2011-01-01",
            "July-01",
            "café",
            "naïve-Straße",
            "日本語123",
            "1,000,000.00",
            "MIXEDcase99##",
            "\u{0}mid\u{7f}",
            "\t\n  ",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        values.push("9".repeat(5000));
        values.push(('a'..='z').cycle().take(3000).collect());
        for i in 0..12 {
            values.push(format!(
                "{}{}{}",
                "A".repeat(i),
                "-".repeat(9),
                "7".repeat(19 - i)
            ));
        }
        values
    }

    #[test]
    fn swar_generalize_matches_scalar_reference_all_144_languages() {
        let languages = crate::enumeration::enumerate_restricted_languages();
        for v in differential_values() {
            for lang in &languages {
                let fast = Pattern::generalize(&v, lang);
                let slow = Pattern::generalize_reference(&v, lang);
                assert_eq!(fast, slow, "value {v:?} under {}", lang.id());
                assert_eq!(
                    fast.hash64(),
                    slow.hash64(),
                    "hash of {v:?} under {}",
                    lang.id()
                );
            }
        }
    }

    #[test]
    fn hash_value_matches_generalize_then_hash_all_144_languages() {
        let languages = crate::enumeration::enumerate_restricted_languages();
        for v in differential_values() {
            for lang in &languages {
                assert_eq!(
                    Pattern::hash_value(&v, lang),
                    Pattern::generalize_reference(&v, lang).hash64(),
                    "value {v:?} under {}",
                    lang.id()
                );
            }
        }
    }

    #[test]
    fn run_word_framing_is_injective_on_field_boundaries() {
        // Distinct (tag, len, literal) triples must frame distinctly even
        // at field extremes: max run length, max codepoint, tag 0 with
        // literal '\0'.
        let words = [
            run_word(TAG_LITERAL, 1, 0),          // Literal('\0') x1
            run_word(TAG_LITERAL, 1, 'a' as u32), // Literal('a') x1
            run_word(1, 1, 0),                    // \U x1
            run_word(1, 256, 0),                  // \U x256
            run_word(6, u32::MAX, 0),             // \A at max run
            run_word(TAG_LITERAL, 1, 0x10FFFF),   // max codepoint
            run_word(TAG_LITERAL, 2, 0x10FFFF),
        ];
        for (i, a) in words.iter().enumerate() {
            for (j, b) in words.iter().enumerate() {
                assert_eq!(a == b, i == j, "framing collision between {i} and {j}");
            }
        }
    }
}
