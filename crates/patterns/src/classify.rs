//! Branch-free byte→character-class classification and SWAR run scanning:
//! the shared generalization hot path under both the scan and train
//! kernels.
//!
//! Every cell value the system touches is run-length encoded into
//! `(char, CharKind, run)` triples before any language is applied. The
//! per-character loop this module replaces classified and compared one
//! `char` at a time; here the ASCII fast path classifies through a
//! 128-entry lookup table and finds run boundaries on whole 8-byte words:
//! the run's byte is broadcast across a `u64`, XORed against the next
//! input word, and `trailing_zeros / 8` of the difference names the first
//! non-matching lane (UTF-8 is little-endian-friendly here because
//! `u64::from_le_bytes` puts the lowest-addressed byte in the lowest
//! lane). Non-ASCII codepoints take a scalar fallback that extends runs by
//! UTF-8 byte-slice equality without re-decoding. A `std::simd` variant is
//! a natural nightly-only extension (16/32-lane compare + mask scan); the
//! toolchain pinned for this repo is stable, so SWAR is the vectorized
//! path and the scalar walk is retained as the differential reference
//! under `cfg(any(test, feature = "reference-kernel"))`.
//!
//! Downstream, one [`CharRun`] becomes at most one FNV fold per language
//! (see `Pattern::hash64`'s single-word run framing), so the hash cost of
//! a value is proportional to its run count, not its byte length.

use crate::language::CharKind;

/// Class index of an upper-case ASCII letter in [`ASCII_KIND`].
pub const KIND_UPPER: u8 = 0;
/// Class index of a lower-case ASCII letter.
pub const KIND_LOWER: u8 = 1;
/// Class index of an ASCII digit.
pub const KIND_DIGIT: u8 = 2;
/// Class index of everything else (ASCII symbols and all non-ASCII).
pub const KIND_SYMBOL: u8 = 3;

/// 128-entry ASCII lookup table mapping a byte `< 0x80` to its class
/// index (`KIND_UPPER` … `KIND_SYMBOL`). Built at compile time; agrees
/// with [`CharKind::of`] on every ASCII codepoint (pinned by a test).
pub const ASCII_KIND: [u8; 128] = build_ascii_kind();

const fn build_ascii_kind() -> [u8; 128] {
    let mut table = [KIND_SYMBOL; 128];
    let mut b = 0usize;
    while b < 128 {
        // adt-allow(unchecked-arithmetic): b < 128 by the loop bound, so the u8 cast is lossless
        let c = b as u8;
        if c.is_ascii_uppercase() {
            table[b] = KIND_UPPER;
        } else if c.is_ascii_lowercase() {
            table[b] = KIND_LOWER;
        } else if c.is_ascii_digit() {
            table[b] = KIND_DIGIT;
        }
        b += 1;
    }
    table
}

/// Class index (`KIND_*`) of an arbitrary codepoint: LUT for ASCII,
/// symbol for everything else — the same collapse [`CharKind::of`]
/// performs.
#[inline]
pub fn kind_index_of(c: char) -> u8 {
    match ASCII_KIND.get(c as usize) {
        Some(&k) => k,
        None => KIND_SYMBOL,
    }
}

/// [`CharKind`] named by a `KIND_*` class index.
#[inline]
pub fn kind_of_index(idx: u8) -> CharKind {
    match idx {
        KIND_UPPER => CharKind::Upper,
        KIND_LOWER => CharKind::Lower,
        KIND_DIGIT => CharKind::Digit,
        _ => CharKind::Symbol,
    }
}

/// One maximal run of a repeated character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharRun {
    /// The repeated character.
    pub ch: char,
    /// `KIND_*` class index of `ch`.
    pub kind: u8,
    /// Number of occurrences (≥ 1).
    pub len: u32,
}

/// Zero-allocation iterator over the maximal character runs of `value`,
/// in order. Concatenating `ch.repeat(len)` over the yielded runs
/// reproduces the input exactly; adjacent runs always differ in `ch`.
pub fn char_runs(value: &str) -> CharRuns<'_> {
    CharRuns { value, pos: 0 }
}

/// See [`char_runs`].
#[derive(Debug, Clone)]
pub struct CharRuns<'a> {
    value: &'a str,
    pos: usize,
}

/// `0x01` in every lane; multiplying broadcasts a byte across a word.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;

impl Iterator for CharRuns<'_> {
    type Item = CharRun;

    fn next(&mut self) -> Option<CharRun> {
        let bytes = self.value.as_bytes();
        let &first = bytes.get(self.pos)?;
        if first < 0x80 {
            // ASCII fast path: word-at-a-time SWAR scan for the run end.
            let broadcast = (first as u64).wrapping_mul(LANE_LSB);
            // adt-allow(unchecked-arithmetic): pos ≤ len ≤ isize::MAX, so +1 cannot overflow usize
            let mut end = self.pos + 1;
            loop {
                // adt-allow(unchecked-arithmetic): end ≤ len ≤ isize::MAX, so +8 cannot overflow usize
                let Some(chunk) = bytes.get(end..end + 8) else {
                    // Fewer than 8 bytes left: scalar tail.
                    while bytes.get(end) == Some(&first) {
                        end += 1;
                    }
                    break;
                };
                let Ok(word) = <[u8; 8]>::try_from(chunk) else {
                    break;
                };
                let diff = u64::from_le_bytes(word) ^ broadcast;
                if diff == 0 {
                    end += 8;
                } else {
                    // First differing lane = first non-matching byte.
                    end += (diff.trailing_zeros() / 8) as usize;
                    break;
                }
            }
            // adt-allow(unchecked-arithmetic): run length ≤ value byte length; 4 GiB single-char cells are outside the cell-size contract
            let len = (end - self.pos) as u32;
            self.pos = end;
            Some(CharRun {
                ch: first as char,
                kind: ascii_kind(first),
                len,
            })
        } else {
            // Non-ASCII scalar fallback: decode once, then extend the run
            // by raw UTF-8 byte-slice equality.
            let rest = self.value.get(self.pos..)?;
            let ch = rest.chars().next()?;
            let width = ch.len_utf8();
            let encoded = bytes.get(self.pos..self.pos + width);
            let mut end = self.pos + width;
            while encoded.is_some() && bytes.get(end..end + width) == encoded {
                end += width;
            }
            // adt-allow(unchecked-arithmetic): run length ≤ value byte length; 4 GiB single-char cells are outside the cell-size contract
            let len = ((end - self.pos) / width) as u32;
            self.pos = end;
            Some(CharRun {
                ch,
                kind: KIND_SYMBOL,
                len,
            })
        }
    }
}

/// LUT classification of a known-ASCII byte.
#[inline]
fn ascii_kind(b: u8) -> u8 {
    match ASCII_KIND.get(b as usize) {
        Some(&k) => k,
        None => KIND_SYMBOL,
    }
}

/// Scalar per-character reference for [`char_runs`]: the exact loop the
/// SWAR scan replaced. Differential target only.
#[cfg(any(test, feature = "reference-kernel"))]
pub fn char_runs_reference(value: &str) -> Vec<CharRun> {
    let mut out: Vec<CharRun> = Vec::new();
    for c in value.chars() {
        match out.last_mut() {
            Some(run) if run.ch == c => run.len += 1,
            _ => out.push(CharRun {
                ch: c,
                kind: kind_index_of(c),
                len: 1,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs_of(value: &str) -> Vec<CharRun> {
        char_runs(value).collect()
    }

    #[test]
    fn lut_agrees_with_charkind_for_all_ascii() {
        for b in 0u8..128 {
            let c = b as char;
            assert_eq!(
                kind_of_index(ascii_kind(b)),
                CharKind::of(c),
                "byte {b:#04x}"
            );
        }
    }

    #[test]
    fn kind_index_collapses_non_ascii_to_symbol() {
        for c in ['é', 'ß', '日', '😀', '\u{80}', '\u{10FFFF}'] {
            assert_eq!(kind_index_of(c), KIND_SYMBOL);
            assert_eq!(kind_of_index(kind_index_of(c)), CharKind::of(c));
        }
    }

    #[test]
    fn empty_value_yields_no_runs() {
        assert!(runs_of("").is_empty());
    }

    #[test]
    fn ascii_boundary_bytes() {
        // 0x00 and 0x7F are valid one-byte codepoints and classify as
        // symbols; runs of them must survive the SWAR scan.
        let low = "\u{0}".repeat(11);
        let high = "\u{7f}".repeat(11);
        for (s, ch) in [(low.as_str(), '\u{0}'), (high.as_str(), '\u{7f}')] {
            let runs = runs_of(s);
            assert_eq!(
                runs,
                vec![CharRun {
                    ch,
                    kind: KIND_SYMBOL,
                    len: 11
                }]
            );
        }
        // A 0x00 run adjacent to other classes still splits correctly.
        let mixed = "A\u{0}\u{0}z";
        let kinds: Vec<u8> = runs_of(mixed).iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![KIND_UPPER, KIND_SYMBOL, KIND_LOWER]);
    }

    #[test]
    fn runs_spanning_word_boundaries() {
        // Every run length from 1 to 40 crosses (or exactly lands on) the
        // 8-byte SWAR word in a different phase; all must round-trip.
        for len in 1..=40usize {
            for prefix in ["", "x", "xxxxxxx", "xxxxxxxx"] {
                let s = format!("{prefix}{}", "7".repeat(len));
                let runs = runs_of(&s);
                let want_prefix = usize::from(!prefix.is_empty());
                assert_eq!(runs.len(), want_prefix + 1, "value {s:?}");
                let Some(last) = runs.last() else {
                    panic!("no runs for {s:?}");
                };
                assert_eq!(
                    (last.ch, last.kind, last.len),
                    ('7', KIND_DIGIT, len as u32)
                );
            }
        }
    }

    #[test]
    fn multibyte_runs_and_mixed_width_boundaries() {
        let cases: &[(&str, usize)] = &[
            ("café", 4),
            ("ééé", 1),
            ("日本語123", 6),
            ("😀😀😀", 1),
            ("aé", 2),
            ("éa", 2),
            ("aaaaaaaaé", 2), // ASCII run ends exactly where a 2-byte char starts
            ("é日é", 3),      // adjacent multibyte chars of different width
        ];
        for &(s, want_runs) in cases {
            let runs = runs_of(s);
            assert_eq!(runs.len(), want_runs, "value {s:?}");
            let rebuilt: String = runs
                .iter()
                .map(|r| r.ch.to_string().repeat(r.len as usize))
                .collect();
            assert_eq!(rebuilt, s, "round-trip of {s:?}");
        }
    }

    #[test]
    fn swar_scan_matches_scalar_reference() {
        let long_digit = "9".repeat(5000);
        let alternating: String = ('a'..='z').cycle().take(3000).collect();
        let word_phases: Vec<String> = (0..24)
            .map(|i| format!("{}{}{}", "A".repeat(i), "-".repeat(17), "b".repeat(24 - i)))
            .collect();
        let mut values: Vec<&str> = vec![
            "",
            "a",
            "2011-01-01",
            "July-01",
            "café",
            "naïve-Straße",
            "日本語123",
            "1,000,000.00",
            "MIXEDcase99##",
            "\t\n",
            "   ",
            "\u{0}\u{7f}\u{0}\u{7f}",
            long_digit.as_str(),
            alternating.as_str(),
        ];
        values.extend(word_phases.iter().map(String::as_str));
        for v in values {
            assert_eq!(
                runs_of(v),
                char_runs_reference(v),
                "SWAR vs scalar on {v:?}"
            );
        }
    }

    #[test]
    fn adjacent_runs_always_differ() {
        for v in ["aaAAaa", "--__--", "ééaaéé", "x".repeat(31).as_str()] {
            let runs = runs_of(v);
            for pair in runs.windows(2) {
                let [a, b] = pair else { continue };
                assert_ne!(a.ch, b.ch, "adjacent runs share a char in {v:?}");
            }
            let total: usize = runs.iter().map(|r| r.len as usize * r.ch.len_utf8()).sum();
            assert_eq!(total, v.len(), "byte coverage of {v:?}");
        }
    }
}
