//! Enumeration of candidate language spaces.
//!
//! The paper restricts the 6×10^51 unrestricted language space so that all
//! characters of a class generalize to the same tree level, which leaves
//! 4 (upper) × 4 (lower) × 3 (digit) × 3 (symbol) = **144** candidates.
//! [`enumerate_restricted_languages`] produces exactly that space.
//!
//! [`enumerate_coarse_languages`] is a 36-language ablation space that ties
//! upper- and lower-case letters to the same level, used by the DESIGN.md §5
//! ablation benches.

use crate::language::{Language, Level};

const LETTER_LEVELS: [Level; 4] = [Level::Leaf, Level::Class, Level::Super, Level::Root];
const DIGIT_SYMBOL_LEVELS: [Level; 3] = [Level::Leaf, Level::Class, Level::Root];

/// All 144 restricted candidate languages induced by the Figure 3 tree.
///
/// The order is deterministic: nested loops over (upper, lower, digit,
/// symbol) levels, finest first.
pub fn enumerate_restricted_languages() -> Vec<Language> {
    let mut out = Vec::with_capacity(144);
    for &u in &LETTER_LEVELS {
        for &l in &LETTER_LEVELS {
            for &d in &DIGIT_SYMBOL_LEVELS {
                for &s in &DIGIT_SYMBOL_LEVELS {
                    out.push(Language::new(u, l, d, s).expect("levels are class-legal"));
                }
            }
        }
    }
    out
}

/// Coarser 36-language ablation space: upper and lower case share a level
/// (letters as a block), digits and symbols free.
///
/// 4 (letters) × 3 (digit) × 3 (symbol) = 36 languages.
pub fn enumerate_coarse_languages() -> Vec<Language> {
    let mut out = Vec::with_capacity(36);
    for &letters in &LETTER_LEVELS {
        for &d in &DIGIT_SYMBOL_LEVELS {
            for &s in &DIGIT_SYMBOL_LEVELS {
                out.push(Language::new(letters, letters, d, s).expect("levels are class-legal"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::GeneralizationTree;
    use std::collections::HashSet;

    #[test]
    fn restricted_space_has_144_distinct_languages() {
        let langs = enumerate_restricted_languages();
        assert_eq!(langs.len(), 144);
        let ids: HashSet<String> = langs.iter().map(|l| l.id()).collect();
        assert_eq!(ids.len(), 144);
    }

    #[test]
    fn restricted_space_contains_paper_languages() {
        let langs = enumerate_restricted_languages();
        assert!(langs.contains(&Language::paper_l1()));
        assert!(langs.contains(&Language::paper_l2()));
        assert!(langs.contains(&Language::leaf()));
        assert!(langs.contains(&Language::root()));
    }

    #[test]
    fn all_languages_consistent_with_figure3() {
        let t = GeneralizationTree::figure3();
        for l in enumerate_restricted_languages() {
            assert!(l.is_consistent_with(&t), "{} inconsistent", l.id());
        }
    }

    #[test]
    fn coarse_space_has_36_and_is_subset() {
        let coarse = enumerate_coarse_languages();
        assert_eq!(coarse.len(), 36);
        let full: HashSet<String> = enumerate_restricted_languages()
            .iter()
            .map(|l| l.id())
            .collect();
        for l in &coarse {
            assert!(full.contains(&l.id()));
            assert_eq!(l.upper, l.lower);
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        assert_eq!(
            enumerate_restricted_languages(),
            enumerate_restricted_languages()
        );
    }
}
