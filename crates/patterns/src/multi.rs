//! Multi-language generalization: hash a value under K languages in one
//! character traversal.
//!
//! Training (§3.2) needs every distinct corpus value generalized under all
//! ~144 candidate languages. Doing that with K independent
//! [`Pattern::generalize`](crate::Pattern::generalize) walks decodes and
//! classifies each character K times and allocates K run vectors per
//! value. [`MultiGeneralizer`] inverts this: the value is run-length
//! scanned **once** by the SWAR classifier in
//! [`classify`](crate::classify), and the shared char-run stream is
//! mapped through per-language token tables, folding each language's
//! run-length stream directly into its incremental FNV word state. The
//! emitted hashes are bit-identical to
//! `Pattern::generalize(v, lang).hash64()` — the run-length encoding and
//! hash framing are reproduced exactly, just without materializing the
//! intermediate [`Pattern`](crate::Pattern). Because the K-language
//! inner loop now advances per *char run* instead of per character, a
//! value like `"9999-99-99"` costs 5 inner iterations per language
//! instead of 10.

use crate::classify::char_runs;
use crate::language::{CharKind, Language};
use crate::pattern::{fnv1a_word, run_word, tag_of, FNV_OFFSET, TAG_LITERAL};
use crate::PatternHash;

/// Shared, immutable per-language token tables: for each language, the
/// `hash64` token tag each [`CharKind`] maps to. Build once per language
/// batch, share read-only across worker threads.
#[derive(Debug, Clone)]
pub struct MultiGeneralizer {
    languages: Vec<Language>,
    /// Per language: token tag indexed by [`kind_index`].
    tables: Vec<[u8; 4]>,
}

impl MultiGeneralizer {
    /// Precomputes the token tables for `languages`.
    pub fn new(languages: &[Language]) -> Self {
        let tables = languages
            .iter()
            .map(|lang| {
                [
                    tag_of(lang.upper, CharKind::Upper),
                    tag_of(lang.lower, CharKind::Lower),
                    tag_of(lang.digit, CharKind::Digit),
                    tag_of(lang.symbol, CharKind::Symbol),
                ]
            })
            .collect();
        MultiGeneralizer {
            languages: languages.to_vec(),
            tables,
        }
    }

    /// Number of languages `K`.
    pub fn len(&self) -> usize {
        self.languages.len()
    }

    /// True when constructed over zero languages.
    pub fn is_empty(&self) -> bool {
        self.languages.is_empty()
    }

    /// The languages, in table order.
    pub fn languages(&self) -> &[Language] {
        &self.languages
    }

    /// A reusable per-thread hashing scratch bound to these tables.
    pub fn hasher(&self) -> MultiHasher<'_> {
        MultiHasher {
            gen: self,
            states: vec![RunState::default(); self.languages.len()],
            out: vec![PatternHash(0); self.languages.len()],
        }
    }
}

/// Per-language incremental run-length + FNV-1a state.
#[derive(Debug, Clone, Copy)]
struct RunState {
    hash: u64,
    tag: u8,
    lit: char,
    run: u32,
}

impl Default for RunState {
    fn default() -> Self {
        RunState {
            hash: FNV_OFFSET,
            tag: 0,
            lit: '\0',
            run: 0,
        }
    }
}

impl RunState {
    /// Folds the pending run into the hash exactly as `Pattern::hash64`
    /// frames it: one word per run (tag | len << 8 | literal << 40), one
    /// multiply.
    #[inline]
    fn flush(&mut self) {
        if self.run == 0 {
            return;
        }
        let lit = if self.tag == TAG_LITERAL {
            self.lit as u32
        } else {
            0
        };
        self.hash = fnv1a_word(self.hash, run_word(self.tag, self.run, lit));
        self.run = 0;
    }
}

/// Stateful multi-language hasher: one allocation at construction, zero
/// per value. Not `Sync`; give each worker thread its own via
/// [`MultiGeneralizer::hasher`].
#[derive(Debug, Clone)]
pub struct MultiHasher<'g> {
    gen: &'g MultiGeneralizer,
    states: Vec<RunState>,
    out: Vec<PatternHash>,
}

impl MultiHasher<'_> {
    /// Hashes `value` under every language in one character traversal.
    /// The returned slice is indexed like
    /// [`MultiGeneralizer::languages`]; entry `k` equals
    /// `Pattern::generalize(value, &languages[k]).hash64()`.
    pub fn hash_value(&mut self, value: &str) -> &[PatternHash] {
        for s in &mut self.states {
            *s = RunState::default();
        }
        for r in char_runs(value) {
            let ki = r.kind as usize;
            for (state, table) in self.states.iter_mut().zip(&self.gen.tables) {
                let tag = match table.get(ki) {
                    Some(&t) => t,
                    None => continue, // unreachable: kind is always 0..4
                };
                // Same run: same tag, and for literal runs the same char.
                if state.run > 0 && state.tag == tag && (tag != TAG_LITERAL || state.lit == r.ch) {
                    state.run += r.len;
                } else {
                    state.flush();
                    state.tag = tag;
                    state.lit = r.ch;
                    state.run = r.len;
                }
            }
        }
        for (o, state) in self.out.iter_mut().zip(&mut self.states) {
            state.flush();
            *o = PatternHash(state.hash);
        }
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumeration::{enumerate_coarse_languages, enumerate_restricted_languages};
    use crate::pattern::Pattern;

    fn check_all(languages: &[Language], values: &[&str]) {
        let gen = MultiGeneralizer::new(languages);
        let mut hasher = gen.hasher();
        for v in values {
            let got = hasher.hash_value(v).to_vec();
            for (k, lang) in languages.iter().enumerate() {
                let want = Pattern::generalize(v, lang).hash64();
                // Pin against the scalar per-character reference too, so
                // a shared bug in the SWAR scanner can't self-agree.
                let want_scalar = Pattern::generalize_reference(v, lang).hash64();
                assert_eq!(
                    want,
                    want_scalar,
                    "SWAR vs scalar for {v:?} under {}",
                    lang.id()
                );
                assert_eq!(
                    got[k],
                    want,
                    "value {v:?} under language {} (index {k})",
                    lang.id()
                );
            }
        }
    }

    const TRICKY: &[&str] = &[
        "",
        "a",
        "A",
        "7",
        "-",
        "2011-01-01",
        "2011.01.02",
        "July-01",
        "aa--",
        "Ab-7",
        "café",
        "naïve-Straße",
        "日本語123",
        "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA",
        "aA0-aA0-aA0",
        "   ",
        "\t\n",
        "x",
        "1,000,000.00",
        "MIXEDcase99##",
    ];

    #[test]
    fn matches_generalize_for_paper_languages() {
        check_all(
            &[
                Language::paper_l1(),
                Language::paper_l2(),
                Language::leaf(),
                Language::root(),
                crate::crude::crude_language(),
            ],
            TRICKY,
        );
    }

    #[test]
    fn matches_generalize_for_all_144_languages() {
        check_all(&enumerate_restricted_languages(), TRICKY);
    }

    #[test]
    fn matches_generalize_for_coarse_space() {
        check_all(&enumerate_coarse_languages(), TRICKY);
    }

    #[test]
    fn long_runs_and_long_values() {
        let long_run = "9".repeat(5000);
        let alternating: String = ('a'..='z').cycle().take(3000).collect();
        let values = [long_run.as_str(), alternating.as_str()];
        check_all(&enumerate_coarse_languages(), &values);
    }

    #[test]
    fn hasher_is_reusable_across_values() {
        let gen = MultiGeneralizer::new(&enumerate_coarse_languages());
        let mut hasher = gen.hasher();
        // Interleave long and short values to shake out stale run state.
        let first = hasher.hash_value("2011-01-01").to_vec();
        hasher.hash_value("x");
        hasher.hash_value("");
        let again = hasher.hash_value("2011-01-01").to_vec();
        assert_eq!(first, again);
    }

    #[test]
    fn empty_language_set() {
        let gen = MultiGeneralizer::new(&[]);
        assert!(gen.is_empty());
        let mut hasher = gen.hasher();
        assert!(hasher.hash_value("abc").is_empty());
    }
}
