//! Generalization trees (Definition 1 of the paper).
//!
//! A generalization tree `H` over an alphabet Σ has one leaf per character
//! and intermediate nodes representing the union of the characters below
//! them. The paper's Figure 3 tree is provided by
//! [`GeneralizationTree::figure3`]; custom trees can be assembled with
//! [`TreeBuilder`].

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a node inside a [`GeneralizationTree`].
pub type NodeId = usize;

/// One node of a generalization tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeNode {
    /// Display label, e.g. `\A`, `\L`, `\D`, or a literal character.
    pub label: String,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Child nodes; empty for leaves.
    pub children: Vec<NodeId>,
    /// Distance from the root (root has depth 0).
    pub depth: u8,
}

/// A generalization tree over an alphabet (Definition 1).
///
/// Leaves correspond to characters; intermediate nodes are unions of their
/// children. The tree answers ancestor queries, which is what a
/// generalization language needs: a language must map each character to an
/// ancestor of that character's leaf.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneralizationTree {
    nodes: Vec<TreeNode>,
    root: NodeId,
    /// Leaf node of each alphabet character.
    leaf_of: HashMap<char, NodeId>,
}

impl GeneralizationTree {
    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id]
    }

    /// Number of nodes (leaves + internal).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes (never the case for built trees).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The alphabet the tree is defined over.
    pub fn alphabet(&self) -> impl Iterator<Item = char> + '_ {
        self.leaf_of.keys().copied()
    }

    /// Leaf node of `c`, if `c` is in the alphabet.
    pub fn leaf(&self, c: char) -> Option<NodeId> {
        self.leaf_of.get(&c).copied()
    }

    /// True iff `anc` is `node` or one of its ancestors.
    pub fn is_ancestor_or_self(&self, anc: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(id) = cur {
            if id == anc {
                return true;
            }
            cur = self.nodes[id].parent;
        }
        false
    }

    /// All ancestors of `node` from itself up to the root (inclusive).
    pub fn ancestors_of(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = Some(node);
        while let Some(id) = cur {
            out.push(id);
            cur = self.nodes[id].parent;
        }
        out
    }

    /// Validates Definition 1 invariants; used by tests and `TreeBuilder`.
    ///
    /// Every leaf must be a registered alphabet character, every non-leaf
    /// must have at least one child, and parent/child links must agree.
    pub fn validate(&self) -> Result<(), String> {
        for (id, n) in self.nodes.iter().enumerate() {
            for &c in &n.children {
                if self.nodes[c].parent != Some(id) {
                    return Err(format!("child {c} of {id} has wrong parent"));
                }
            }
            if let Some(p) = n.parent {
                if !self.nodes[p].children.contains(&id) {
                    return Err(format!("{id} missing from parent {p}'s children"));
                }
            } else if id != self.root {
                return Err(format!("non-root {id} has no parent"));
            }
            if n.children.is_empty() && !self.leaf_of.values().any(|&l| l == id) {
                return Err(format!("leaf {id} ({}) not in alphabet map", n.label));
            }
        }
        Ok(())
    }

    /// The paper's Figure 3 tree: `\A` over `\L` (letters, split into `\U`
    /// upper and `\l` lower), `\D` (digits) and `\S` (symbols), with one
    /// leaf per printable ASCII character.
    ///
    /// Whitespace and all remaining printable ASCII characters are treated
    /// as symbols, matching the paper's handling of punctuation.
    pub fn figure3() -> Self {
        let mut b = TreeBuilder::new(r"\A");
        let letters = b.child(b.root, r"\L");
        let upper = b.child(letters, r"\U");
        let lower = b.child(letters, r"\l");
        let digits = b.child(b.root, r"\D");
        let symbols = b.child(b.root, r"\S");
        for c in 'A'..='Z' {
            b.leaf(upper, c);
        }
        for c in 'a'..='z' {
            b.leaf(lower, c);
        }
        for c in '0'..='9' {
            b.leaf(digits, c);
        }
        for c in ' '..='~' {
            if !c.is_ascii_alphanumeric() {
                b.leaf(symbols, c);
            }
        }
        b.build().expect("figure3 tree is well-formed")
    }
}

/// Incremental builder for [`GeneralizationTree`].
#[derive(Debug)]
pub struct TreeBuilder {
    nodes: Vec<TreeNode>,
    /// Root node id (always 0).
    pub root: NodeId,
    leaf_of: HashMap<char, NodeId>,
}

impl TreeBuilder {
    /// Starts a tree with a root labelled `root_label`.
    pub fn new(root_label: &str) -> Self {
        TreeBuilder {
            nodes: vec![TreeNode {
                label: root_label.to_string(),
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
            root: 0,
            leaf_of: HashMap::new(),
        }
    }

    /// Adds an internal node under `parent` and returns its id.
    pub fn child(&mut self, parent: NodeId, label: &str) -> NodeId {
        let id = self.nodes.len();
        let depth = self.nodes[parent].depth + 1;
        self.nodes.push(TreeNode {
            label: label.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Adds the leaf for character `c` under `parent`.
    pub fn leaf(&mut self, parent: NodeId, c: char) -> NodeId {
        let id = self.child(parent, &c.to_string());
        self.leaf_of.insert(c, id);
        id
    }

    /// Finishes the tree, validating Definition 1 invariants.
    pub fn build(self) -> Result<GeneralizationTree, String> {
        let t = GeneralizationTree {
            nodes: self.nodes,
            root: self.root,
            leaf_of: self.leaf_of,
        };
        t.validate()?;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape() {
        let t = GeneralizationTree::figure3();
        // 95 printable ASCII leaves + root + \L + \U + \l + \D + \S.
        assert_eq!(t.len(), 95 + 6);
        assert_eq!(t.node(t.root()).label, r"\A");
        assert!(t.validate().is_ok());
    }

    #[test]
    fn figure3_alphabet_covers_printable_ascii() {
        let t = GeneralizationTree::figure3();
        for c in ' '..='~' {
            assert!(t.leaf(c).is_some(), "missing leaf for {c:?}");
        }
        assert!(t.leaf('\u{00e9}').is_none());
    }

    #[test]
    fn ancestor_chains() {
        let t = GeneralizationTree::figure3();
        let a_leaf = t.leaf('a').unwrap();
        let chain: Vec<String> = t
            .ancestors_of(a_leaf)
            .into_iter()
            .map(|id| t.node(id).label.clone())
            .collect();
        assert_eq!(chain, vec!["a", r"\l", r"\L", r"\A"]);
        assert!(t.is_ancestor_or_self(t.root(), a_leaf));
        assert!(!t.is_ancestor_or_self(a_leaf, t.root()));
    }

    #[test]
    fn digits_do_not_pass_through_letters() {
        let t = GeneralizationTree::figure3();
        let d = t.leaf('7').unwrap();
        let chain: Vec<String> = t
            .ancestors_of(d)
            .into_iter()
            .map(|id| t.node(id).label.clone())
            .collect();
        assert_eq!(chain, vec!["7", r"\D", r"\A"]);
    }

    #[test]
    fn builder_rejects_orphan() {
        // A node that claims a parent the parent does not know about.
        let mut b = TreeBuilder::new("root");
        let x = b.child(b.root, "x");
        b.leaf(x, 'x');
        let mut t = b.build().unwrap();
        // Corrupt it deliberately.
        t.nodes[1].parent = None;
        assert!(t.validate().is_err());
    }

    #[test]
    fn symbols_include_space_and_punct() {
        let t = GeneralizationTree::figure3();
        for c in [' ', '.', ',', '-', '/', ':', '$', '(', ')'] {
            let leaf = t.leaf(c).unwrap();
            let labels: Vec<String> = t
                .ancestors_of(leaf)
                .into_iter()
                .map(|id| t.node(id).label.clone())
                .collect();
            assert_eq!(labels[1], r"\S", "char {c:?} should sit under \\S");
        }
    }
}
