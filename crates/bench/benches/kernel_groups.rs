//! Criterion bench: the pattern-group scoring kernel versus the naive
//! value-pair reference scan (compiled via the `reference-kernel`
//! feature) on the shared column shapes.
//!
//! Expected shape of the results: on `wide_duplicate` and
//! `mixed_format` the group kernel wins by roughly d/d′ on the NPMI
//! probe side (cold) and the warm run collapses further because the
//! `NpmiMemo` answers every group-pair score; on `all_distinct` (d′ = d)
//! the cold group run tracks the reference to within bookkeeping
//! overhead — the kernel must never lose badly on its worst case.

use adt_bench::kernel_bench::{bench_model, shape_counts, shape_width, SHAPES};
use adt_core::{Aggregator, PatternCache};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_kernel_groups(c: &mut Criterion) {
    let model = bench_model();
    for shape in SHAPES {
        let d = shape_width(shape, false);
        let counts = shape_counts(shape, d);
        let mut group = c.benchmark_group(format!("kernel_{shape}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements((d * d.saturating_sub(1) / 2) as u64));
        group.bench_function("group_cold", |b| {
            b.iter(|| {
                let mut cache = PatternCache::new();
                black_box(model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut cache))
            })
        });
        group.bench_function("group_warm", |b| {
            let mut cache = PatternCache::new();
            model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut cache);
            b.iter(|| {
                black_box(model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut cache))
            })
        });
        group.bench_function("reference", |b| {
            b.iter(|| {
                let mut cache = PatternCache::new();
                black_box(model.scan_value_counts_reference(
                    &counts,
                    Aggregator::AutoDetect,
                    &mut cache,
                ))
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_kernel_groups);
criterion_main!(benches);
