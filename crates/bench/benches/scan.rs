//! Criterion bench for the parallel scan engine: a 1k-column corpus
//! scanned at 1/2/4/8 worker threads, plus the streamed-CSV ingest path.
//!
//! The acceptance bar for the engine is ≥3× speedup at 8 threads over
//! the serial scan on this corpus on ≥8-core hardware (per-column work
//! is independent, so scaling is limited only by queue overhead and
//! memory bandwidth). On a single-core container the useful signal is
//! the inverse: the 8-thread run should cost within a few percent of
//! the serial run, i.e. the queue adds no meaningful overhead.

use adt_core::{train, AutoDetectConfig, ScanEngine};
use adt_corpus::{generate_corpus, Column, CorpusProfile};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn scan_columns() -> Vec<Column> {
    let mut p = CorpusProfile::ent_xls(1_000);
    p.dirty_rate = 0.3;
    generate_corpus(&p).columns().to_vec()
}

fn trained_engine() -> ScanEngine {
    let mut cp = CorpusProfile::web(2_000);
    cp.dirty_rate = 0.0;
    let corpus = generate_corpus(&cp);
    let cfg = AutoDetectConfig::builder()
        .training_examples(4_000)
        .space(adt_core::LanguageSpace::Coarse36)
        .build()
        .expect("valid config");
    let (model, _) = train(&corpus, &cfg).expect("training failed");
    ScanEngine::new(Arc::new(model))
}

fn bench_scan_threads(c: &mut Criterion) {
    let columns = scan_columns();
    let engine = trained_engine();
    let mut group = c.benchmark_group("scan_1k_columns");
    group.sample_size(10);
    group.throughput(Throughput::Elements(columns.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        let engine = engine.clone().with_threads(threads);
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| black_box(engine.scan_columns(&columns).expect("scan failed")))
        });
    }
    group.finish();
}

fn bench_scan_csv_stream(c: &mut Criterion) {
    let columns = scan_columns();
    // One wide CSV with the bench columns side by side.
    let rows = columns.iter().map(|c| c.len()).max().unwrap_or(0);
    let mut csv = String::new();
    for r in 0..rows {
        let row: Vec<&str> = columns
            .iter()
            .map(|c| c.values.get(r).map(|v| v.as_str()).unwrap_or(""))
            .collect();
        csv.push_str(&row.join("\t"));
        csv.push('\n');
    }
    let engine = trained_engine();
    let mut group = c.benchmark_group("scan_csv_stream");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(csv.len() as u64));
    group.bench_function("stream_8_threads", |b| {
        let engine = engine.clone().with_threads(8);
        b.iter(|| {
            black_box(
                engine
                    .scan_csv(csv.as_bytes(), '\t', false)
                    .expect("scan failed"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scan_threads, bench_scan_csv_stream);
criterion_main!(benches);
