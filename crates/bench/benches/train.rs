//! Criterion bench for the sharded training pipeline: multi-language
//! statistics construction, corpus-major pipeline vs the language-major
//! reference build.
//!
//! The acceptance bar is ≥3× over the reference at equal thread count on
//! the coarse-36 language set — the win is algorithmic (one corpus
//! intern + one multi-language character traversal per distinct value,
//! instead of K independent full-corpus scans), so it must hold even on
//! a single core. Thread sweeps on the pipeline additionally show shard
//! scaling on multi-core hardware.

use adt_corpus::{generate_corpus, Corpus, CorpusProfile};
use adt_patterns::enumerate_coarse_languages;
use adt_stats::{collect_stats_for_languages, collect_stats_reference, StatsConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_corpus(columns: usize) -> Corpus {
    let mut p = CorpusProfile::web(columns);
    p.dirty_rate = 0.0;
    generate_corpus(&p)
}

fn bench_train_pipeline_vs_reference(c: &mut Criterion) {
    let corpus = bench_corpus(400);
    let config = StatsConfig::default();
    for n_langs in [6usize, 36] {
        let languages: Vec<_> = enumerate_coarse_languages()
            .into_iter()
            .take(n_langs)
            .collect();
        let mut group = c.benchmark_group(format!("train_400c_{n_langs}l"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(
            (corpus.len() * languages.len()) as u64,
        ));
        group.bench_function("reference_1t", |b| {
            b.iter(|| {
                black_box(
                    collect_stats_reference(&languages, &corpus, &config, 1)
                        .expect("reference build failed"),
                )
            })
        });
        for threads in [1usize, 2, 4, 8] {
            group.bench_function(format!("pipeline_{threads}t"), |b| {
                b.iter(|| {
                    black_box(
                        collect_stats_for_languages(&languages, &corpus, &config, threads)
                            .expect("pipeline build failed"),
                    )
                })
            });
        }
        group.finish();
    }
}

fn bench_train_corpus_scaling(c: &mut Criterion) {
    let config = StatsConfig::default();
    let languages: Vec<_> = enumerate_coarse_languages().into_iter().take(12).collect();
    let mut group = c.benchmark_group("train_corpus_scaling_12l");
    group.sample_size(10);
    for columns in [100usize, 400, 1_600] {
        let corpus = bench_corpus(columns);
        group.throughput(Throughput::Elements(
            (corpus.len() * languages.len()) as u64,
        ));
        group.bench_function(format!("pipeline_{columns}c"), |b| {
            b.iter(|| {
                black_box(
                    collect_stats_for_languages(&languages, &corpus, &config, 0)
                        .expect("pipeline build failed"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_train_pipeline_vs_reference,
    bench_train_corpus_scaling
);
criterion_main!(benches);
