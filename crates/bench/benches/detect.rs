//! Criterion bench for Table 5: per-column detection latency of each
//! method, on representative Ent-XLS-profile columns.

use adt_baselines::{
    DbodDetector, DboostDetector, Detector, FRegexDetector, LinearDetector, LofDetector,
    PotterWheelDetector, SvddDetector,
};
use adt_core::{train, AutoDetectConfig};
use adt_corpus::{generate_corpus, Column, CorpusProfile};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_columns() -> Vec<Column> {
    let mut p = CorpusProfile::ent_xls(100);
    p.dirty_rate = 0.3;
    generate_corpus(&p).columns().to_vec()
}

fn bench_detectors(c: &mut Criterion) {
    let columns = bench_columns();
    let mut group = c.benchmark_group("table5_per_column");
    group.sample_size(10);

    let baselines: Vec<Box<dyn Detector>> = vec![
        Box::new(FRegexDetector::default()),
        Box::new(PotterWheelDetector::default()),
        Box::new(DboostDetector::default()),
        Box::new(LinearDetector::default()),
        Box::new(SvddDetector::default()),
        Box::new(DbodDetector::default()),
        Box::new(LofDetector::default()),
    ];
    for det in &baselines {
        group.bench_function(det.name(), |b| {
            b.iter(|| {
                for col in &columns {
                    black_box(det.detect(col));
                }
            })
        });
    }

    // Auto-Detect with a small trained model (training cost excluded, as
    // in the paper: statistics are precomputed offline).
    let mut cp = CorpusProfile::web(2_000);
    cp.dirty_rate = 0.0;
    let corpus = generate_corpus(&cp);
    let cfg = AutoDetectConfig {
        training_examples: 4_000,
        ..AutoDetectConfig::small()
    };
    let (model, _) = train(&corpus, &cfg).expect("training failed");
    group.bench_function("Auto-Detect", |b| {
        b.iter(|| {
            for col in &columns {
                black_box(model.detect_column(col));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
