//! Criterion benches for the core kernels: pattern generalization, NPMI
//! scoring, count-min operations, LZSS compression, statistics scans,
//! calibration, and greedy selection — plus the DESIGN.md §5 ablations
//! (conservative vs plain sketch update; 144- vs 36-language spaces).

use adt_core::{calibrate_language, greedy_select, CandidateSummary, Example, Label, TrainingSet};
use adt_corpus::{generate_corpus, CorpusProfile};
use adt_patterns::{enumerate_coarse_languages, enumerate_restricted_languages, Language, Pattern};
use adt_sketch::{CountMinSketch, UpdateStrategy};
use adt_stats::{LanguageStats, NpmiParams, StatsConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_generalize(c: &mut Criterion) {
    let values = [
        "2011-01-01",
        "$1,234,567.89",
        "(425) 555-0123",
        "August 16, 1983",
        "jane42@example.com",
    ];
    let l2 = Language::paper_l2();
    c.bench_function("generalize_l2", |b| {
        b.iter(|| {
            for v in &values {
                black_box(Pattern::generalize(v, &l2).hash64());
            }
        })
    });
}

fn bench_npmi_scoring(c: &mut Criterion) {
    let mut p = CorpusProfile::web(5_000);
    p.dirty_rate = 0.0;
    let corpus = generate_corpus(&p);
    let stats = LanguageStats::build(Language::paper_l2(), &corpus, &StatsConfig::default());
    let params = NpmiParams::default();
    c.bench_function("npmi_score_pair", |b| {
        b.iter(|| black_box(stats.score_values("2011-01-01", "2011/01/02", params)))
    });
}

fn bench_stats_scan(c: &mut Criterion) {
    let mut p = CorpusProfile::web(2_000);
    p.dirty_rate = 0.0;
    let corpus = generate_corpus(&p);
    let mut group = c.benchmark_group("stats_scan_2k_columns");
    group.sample_size(10);
    group.bench_function("crude", |b| {
        b.iter(|| {
            black_box(LanguageStats::build(
                adt_patterns::crude::crude_language(),
                &corpus,
                &StatsConfig::default(),
            ))
        })
    });
    group.bench_function("leaf", |b| {
        b.iter(|| {
            black_box(LanguageStats::build(
                Language::leaf(),
                &corpus,
                &StatsConfig::default(),
            ))
        })
    });
    group.finish();
}

fn bench_sketch_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cm_sketch_update");
    for (name, strategy) in [
        ("plain", UpdateStrategy::Plain),
        ("conservative", UpdateStrategy::Conservative),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cms = CountMinSketch::new(1 << 12, 4, strategy, 7);
                for i in 0..10_000u64 {
                    cms.add(i % 3000, 1);
                }
                black_box(cms.estimate(17))
            })
        });
    }
    group.finish();
}

fn bench_pattern_distance(c: &mut Criterion) {
    let l = Language::leaf();
    let a = Pattern::generalize("August 16, 1983", &l);
    let b = Pattern::generalize("(425) 555-0123", &l);
    c.bench_function("pattern_distance_leaf", |bch| {
        bch.iter(|| black_box(adt_patterns::normalized_pattern_distance(&a, &b)))
    });
}

fn bench_model_codec(c: &mut Criterion) {
    let mut p = CorpusProfile::web(2_000);
    p.dirty_rate = 0.0;
    let corpus = generate_corpus(&p);
    let stats = LanguageStats::build(Language::paper_l2(), &corpus, &StatsConfig::default());
    let mut group = c.benchmark_group("stats_codec");
    group.bench_function("write_binary", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            stats.write_binary(&mut buf).unwrap();
            black_box(buf.len())
        })
    });
    let mut buf = Vec::new();
    stats.write_binary(&mut buf).unwrap();
    group.bench_function("read_binary", |b| {
        b.iter(|| black_box(LanguageStats::read_binary(&mut buf.as_slice()).unwrap()))
    });
    group.bench_function("write_json", |b| {
        b.iter(|| black_box(serde_json::to_vec(&stats).unwrap().len()))
    });
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let data: Vec<u8> = (0..4096u32)
        .map(|i| b"0123456789-/., ABCdef"[(i % 21) as usize])
        .collect();
    c.bench_function("lzss_compressed_len_4k", |b| {
        b.iter(|| black_box(adt_compress::compressed_len(&data)))
    });
}

fn synthetic_training(n: usize) -> (TrainingSet, Vec<f64>) {
    let examples: Vec<Example> = (0..n)
        .map(|i| Example {
            u: format!("u{i}"),
            v: format!("v{i}"),
            label: if i % 3 == 0 {
                Label::Incompatible
            } else {
                Label::Compatible
            },
        })
        .collect();
    let scores: Vec<f64> = (0..n)
        .map(|i| {
            let base = -1.0 + 2.0 * (i % 1000) as f64 / 1000.0;
            if i % 3 == 0 {
                base - 0.4
            } else {
                base + 0.2
            }
        })
        .collect();
    (TrainingSet { examples }, scores)
}

fn bench_calibration(c: &mut Criterion) {
    let (set, scores) = synthetic_training(50_000);
    c.bench_function("calibrate_50k_examples", |b| {
        b.iter(|| black_box(calibrate_language(&set, &scores, 0.95, 256)))
    });
}

fn bench_selection(c: &mut Criterion) {
    // 144 candidates with overlapping coverage sets.
    let candidates: Vec<CandidateSummary> = (0..144)
        .map(|i| CandidateSummary {
            index: i,
            size_bytes: 1_000 + (i * 3571) % 100_000,
            covered_negatives: (0..2_000u32).filter(|x| (x + i as u32) % 7 < 3).collect(),
        })
        .collect();
    c.bench_function("greedy_select_144", |b| {
        b.iter(|| black_box(greedy_select(&candidates, 200_000)))
    });
}

fn bench_language_space_ablation(c: &mut Criterion) {
    let mut p = CorpusProfile::web(500);
    p.dirty_rate = 0.0;
    let corpus = generate_corpus(&p);
    let mut group = c.benchmark_group("language_space_scan");
    group.sample_size(10);
    for (name, langs) in [
        ("coarse36", enumerate_coarse_languages()),
        ("restricted144", enumerate_restricted_languages()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for l in &langs {
                    black_box(LanguageStats::build(*l, &corpus, &StatsConfig::default()));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generalize,
    bench_npmi_scoring,
    bench_stats_scan,
    bench_sketch_ablation,
    bench_pattern_distance,
    bench_model_codec,
    bench_compress,
    bench_calibration,
    bench_selection,
    bench_language_space_ablation
);
criterion_main!(benches);
