//! Criterion bench for the detection service: request throughput over
//! loopback at 1/4/8 HTTP worker threads.
//!
//! Two shapes are measured: sequential keep-alive requests on a single
//! connection (per-request latency floor: framing + routing + one
//! engine dispatch), and a 16-client closed-loop burst (where the
//! micro-batcher amortizes engine dispatches across requests — the
//! `serve` design's throughput case).

use adt_corpus::{Column, SourceTag};
use adt_serve::testutil::tiny_model;
use adt_serve::{Client, Json, ModelRegistry, ServeConfig, Server, ServerHandle};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn models_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("adt_serve_bench_models");
    std::fs::create_dir_all(&dir).unwrap();
    adt_core::save_model(&tiny_model(), dir.join("default.bin")).unwrap();
    dir
}

fn request_columns() -> Vec<Column> {
    let mut date = Column::from_strs(
        &["2011-01-01", "2012-02-02", "2013-03-03", "2014/04/04"],
        SourceTag::Local,
    );
    date.header = Some("date".into());
    let amount = Column::from_strs(&["1", "2", "3,000", "4"], SourceTag::Local);
    vec![date, amount]
}

fn start_server(workers: usize) -> (Client, ServerHandle) {
    let config = ServeConfig {
        workers,
        engine_threads: 1,
        ..ServeConfig::default()
    };
    let registry = ModelRegistry::open(models_dir()).unwrap();
    let (addr, handle, _join) = Server::bind(config, registry).unwrap().spawn();
    let client = Client::new(&addr.to_string())
        .unwrap()
        .with_timeout(Duration::from_secs(30));
    (client, handle)
}

fn bench_serve_throughput(c: &mut Criterion) {
    let columns = request_columns();
    let body = adt_serve::protocol::scan_request_to_json(None, &columns);

    let mut group = c.benchmark_group("serve_requests");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    for workers in [1usize, 4, 8] {
        let (client, handle) = start_server(workers);
        let mut conn = client.connect().unwrap();
        group.bench_function(format!("keepalive_workers_{workers}"), |b| {
            b.iter(|| {
                let resp = conn
                    .request("POST", "/v1/scan", Some(&body))
                    .expect("request failed");
                assert_eq!(resp.status, 200);
                black_box(resp.body)
            })
        });
        drop(conn);
        handle.shutdown();
    }
    group.finish();

    const CLIENTS: usize = 16;
    const REQUESTS_PER_CLIENT: usize = 4;
    let mut group = c.benchmark_group("serve_burst_16_clients");
    group.sample_size(10);
    group.throughput(Throughput::Elements((CLIENTS * REQUESTS_PER_CLIENT) as u64));
    for workers in [1usize, 4, 8] {
        let (client, handle) = start_server(workers);
        group.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| {
                let threads: Vec<_> = (0..CLIENTS)
                    .map(|_| {
                        let client = client.clone();
                        let columns = request_columns();
                        std::thread::spawn(move || {
                            let mut batched = 0usize;
                            for _ in 0..REQUESTS_PER_CLIENT {
                                let resp = client.scan(None, &columns).expect("scan failed");
                                batched += resp.batched_with;
                            }
                            batched
                        })
                    })
                    .collect();
                let batched: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
                black_box(batched)
            })
        });
        // Amortization sanity: stats must show fewer engine dispatches
        // than scans when clients overlap (not asserted — contention
        // varies by machine — but exposed for inspection).
        let stats = client.get("/v1/stats").unwrap();
        black_box(stats.get("batches").and_then(Json::as_u64));
        handle.shutdown();
    }
    group.finish();
}

criterion_group!(serve, bench_serve_throughput);
criterion_main!(serve);
