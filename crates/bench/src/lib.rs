//! Shared experiment context for the paper-reproduction binaries.
//!
//! Every `exp_*` binary regenerates one table or figure of the paper
//! (see DESIGN.md §4 and EXPERIMENTS.md). This library holds the common
//! scaffolding: scaled corpus profiles, the default training
//! configuration, model caching, method rosters, and result output.
//!
//! Sizes are scaled from the paper's corpora by ~10³ (DESIGN.md §1) and
//! can be adjusted with the `ADT_SCALE` environment variable (e.g.
//! `ADT_SCALE=0.2` for a quick smoke run, `ADT_SCALE=2` for a larger
//! run). Results are written to `results/*.json` next to the printed
//! tables.

pub mod kernel_bench;

use adt_baselines::{
    CdmDetector, DbodDetector, DboostDetector, Detector, FRegexDetector, LinearDetector,
    LinearPDetector, LofDetector, LsaDetector, PotterWheelDetector, SvddDetector, UnionDetector,
};
use adt_core::{AutoDetect, AutoDetectConfig, TrainingSet};
use adt_corpus::{generate_corpus, Corpus, CorpusProfile};
use adt_eval::testcases::crude_stats;
use adt_eval::{auto_eval_cases, Method, TestCase};
use adt_stats::LanguageStats;
use std::path::PathBuf;

/// Global size multiplier from `ADT_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("ADT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s: &f64| s > 0.0)
        .unwrap_or(1.0)
}

fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(50)
}

/// Training corpus: WEB ∪ Pub-XLS, the paper's default (§4.2).
pub fn train_corpus() -> Corpus {
    let mut web = generate_corpus(&CorpusProfile::web(scaled(60_000)));
    let pub_xls = generate_corpus(&CorpusProfile::pub_xls(scaled(6_000)));
    web.extend_from(pub_xls);
    web
}

/// WIKI-profile corpus used as a clean source for auto-eval mixing and as
/// the Figure 8(c) alternative training corpus.
pub fn wiki_corpus() -> Corpus {
    let mut p = CorpusProfile::wiki(scaled(30_000));
    p.dirty_rate = 0.0;
    generate_corpus(&p)
}

/// Ent-XLS-profile corpus (clean; auto-eval source).
pub fn ent_corpus() -> Corpus {
    let mut p = CorpusProfile::ent_xls(scaled(12_000));
    p.dirty_rate = 0.0;
    generate_corpus(&p)
}

/// The default Auto-Detect training configuration for experiments.
pub fn default_config() -> AutoDetectConfig {
    AutoDetectConfig {
        training_examples: scaled(60_000),
        memory_budget: 64 << 20,
        ..AutoDetectConfig::default()
    }
}

/// Directory for cached artifacts and results.
pub fn data_dir() -> PathBuf {
    let d = PathBuf::from(std::env::var("ADT_DATA_DIR").unwrap_or_else(|_| "results".to_string()));
    std::fs::create_dir_all(&d).ok();
    d
}

/// Trains (or loads the cached) default model on WEB ∪ Pub-XLS.
///
/// The cache key includes the scale so different `ADT_SCALE` runs don't
/// collide.
pub fn default_model() -> (AutoDetect, Corpus, TrainingSet) {
    let corpus = train_corpus();
    let cfg = default_config();
    let (training, _) = adt_core::build_training_set(&corpus, &cfg);
    let cache = data_dir().join(format!("model_default_x{}.bin", scale()));
    if let Ok(model) = adt_core::load_model(&cache) {
        eprintln!("[ctx] loaded cached model from {}", cache.display());
        return (model, corpus, training);
    }
    eprintln!(
        "[ctx] training default model ({} candidates, {} training examples)…",
        cfg.candidate_languages().len(),
        training.len()
    );
    let t0 = std::time::Instant::now();
    let (model, report) =
        adt_core::train_with_training_set(&corpus, &cfg, &training).expect("training failed");
    eprintln!(
        "[ctx] trained in {:.1?}: {} languages {:?}, {} bytes",
        t0.elapsed(),
        model.num_languages(),
        report.selected_ids,
        report.model_bytes
    );
    adt_core::save_model(&model, &cache).ok();
    (model, corpus, training)
}

/// Crude statistics over a corpus (auto-eval oracle).
pub fn crude(corpus: &Corpus) -> LanguageStats {
    crude_stats(corpus, &adt_stats::StatsConfig::default())
}

/// Auto-eval cases from a source corpus at the given dirty:clean ratio
/// (§4.4; the paper uses 5K dirty and 1:1 / 1:5 / 1:10).
pub fn ratio_cases(
    source: &Corpus,
    crude: &LanguageStats,
    n_dirty: usize,
    ratio: usize,
    seed: u64,
) -> Vec<TestCase> {
    auto_eval_cases(
        source,
        crude,
        adt_stats::NpmiParams::default(),
        n_dirty,
        n_dirty * ratio,
        seed,
    )
}

/// The scaled "5K dirty" of Figures 5–8.
pub fn n_dirty() -> usize {
    scaled(2_000)
}

/// The k grid used by the auto-eval figures (paper: 50..5000, scaled).
pub fn auto_eval_ks() -> Vec<usize> {
    let n = n_dirty();
    vec![n / 40, n / 20, n / 4, n / 2, n]
}

/// The seven best-performing methods reported in Figures 5–6.
pub fn figure5_methods(model: &AutoDetect) -> Vec<Method<'_>> {
    vec![
        Method::auto_detect(model),
        Method::baseline(Box::new(FRegexDetector::default())),
        Method::baseline(Box::new(PotterWheelDetector::default())),
        Method::baseline(Box::new(DboostDetector::default())),
        Method::baseline(Box::new(SvddDetector::default())),
        Method::baseline(Box::new(DbodDetector::default())),
        Method::baseline(Box::new(LofDetector::default())),
    ]
}

/// The full twelve-method roster of Figure 4.
pub fn figure4_methods(model: &AutoDetect) -> Vec<Method<'_>> {
    vec![
        Method::auto_detect(model),
        Method::baseline(Box::new(LinearDetector::default())),
        Method::baseline(Box::new(LinearPDetector::default())),
        Method::baseline(Box::new(FRegexDetector::default())),
        Method::baseline(Box::new(PotterWheelDetector::default())),
        Method::baseline(Box::new(DboostDetector::default())),
        Method::baseline(Box::new(CdmDetector::default())),
        Method::baseline(Box::new(LsaDetector::default())),
        Method::baseline(Box::new(SvddDetector::default())),
        Method::baseline(Box::new(DbodDetector::default())),
        Method::baseline(Box::new(LofDetector::default())),
        Method::baseline(Box::new(UnionDetector::default())),
    ]
}

/// The five methods timed in Table 5.
pub fn table5_detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(FRegexDetector::default()),
        Box::new(PotterWheelDetector::default()),
        Box::new(DboostDetector::default()),
        Box::new(LinearDetector::default()),
    ]
}

/// Saves a figure and prints its table.
pub fn emit(fig: &adt_eval::report::Figure) {
    let path = data_dir().join(format!("{}.json", fig.id));
    fig.save_json(&path).ok();
    println!("{}", fig.to_table());
    println!("[saved {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_floors_at_50() {
        // Even extreme down-scaling keeps enough columns to be meaningful.
        assert!(scaled(60_000) >= 50);
    }

    #[test]
    fn method_rosters_have_paper_counts() {
        // Dummy model with no languages is fine for counting.
        let model = AutoDetect {
            languages: vec![],
            npmi: adt_stats::NpmiParams::default(),
            precision_target: 0.95,
            max_distinct_values: 64,
        };
        assert_eq!(figure5_methods(&model).len(), 7);
        assert_eq!(figure4_methods(&model).len(), 12);
    }
}
