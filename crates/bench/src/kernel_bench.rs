//! Shared fixtures for the pattern-group kernel benchmarks
//! (`benches/kernel_groups.rs` and `src/bin/bench_report.rs`): one
//! trained model plus deterministic column shapes spanning the kernel's
//! best case (duplicate-heavy, d′ ≪ d), the typical case (mixed
//! formats), and the worst case (all-distinct patterns, d′ = d).
//!
//! Shapes are pure functions of `(name, d)` — no RNG — so bench numbers
//! and the JSON report are reproducible run to run.

use adt_core::{train, AutoDetect, AutoDetectConfig, LanguageSpace};
use adt_corpus::{generate_corpus, CorpusProfile};

/// The shapes the kernel is measured on, best → worst case for the
/// group collapse.
pub const SHAPES: [&str; 3] = ["wide_duplicate", "mixed_format", "all_distinct"];

/// Trains a small Coarse36 model on a clean WEB-profile corpus — the
/// same recipe as the scan-engine bench, sized to train in seconds. The
/// distinct-value cap is raised so the wide bench shapes are scored in
/// full rather than pruned.
pub fn bench_model() -> AutoDetect {
    let mut cp = CorpusProfile::web(1_000);
    cp.dirty_rate = 0.0;
    let corpus = generate_corpus(&cp);
    let cfg = AutoDetectConfig::builder()
        .training_examples(2_000)
        .space(LanguageSpace::Coarse36)
        .max_distinct_values(512)
        .build()
        .expect("valid config");
    let (model, _) = train(&corpus, &cfg).expect("training failed");
    model
}

/// A deterministic distinct-value multiset of size `d` for `shape`.
pub fn shape_counts(shape: &str, d: usize) -> Vec<(String, usize)> {
    match shape {
        // d−1 four-digit years plus one slash date: a handful of pattern
        // groups no matter how wide the column gets.
        "wide_duplicate" => (0..d.saturating_sub(1))
            .map(|i| (format!("{}", 1900 + i), 1 + i % 3))
            .chain(std::iter::once(("2014/04/04".to_string(), 1)))
            .collect(),
        // Four interleaved format families; distinct values, but only a
        // few pattern groups per language.
        "mixed_format" => (0..d)
            .map(|i| {
                let v = match i % 4 {
                    0 => format!("1{i:03}-{:02}-01", i % 12 + 1),
                    1 => format!("1{i:03}/{:02}/02", i % 12 + 1),
                    2 => format!("{},{:03}", i + 1, (i * 37) % 1000),
                    _ => format!("{}", 10_000 + i),
                };
                (v, 1 + i % 2)
            })
            .collect(),
        // Unique run-length shapes: every value is its own pattern group
        // under the length-preserving languages, so the kernel degrades
        // to the reference's probe count.
        "all_distinct" => (0..d)
            .map(|i| (format!("{}{}", "x".repeat(i + 1), "7".repeat(i)), 1))
            .collect(),
        other => panic!("unknown bench shape {other:?}"),
    }
}

/// The distinct-value width used for `shape` (`quick` halves the work
/// for CI smoke runs).
pub fn shape_width(shape: &str, quick: bool) -> usize {
    match (shape, quick) {
        ("all_distinct", true) => 40,
        ("all_distinct", false) => 64,
        (_, true) => 96,
        (_, false) => 224,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_distinct_value_multisets() {
        for shape in SHAPES {
            for quick in [true, false] {
                let d = shape_width(shape, quick);
                let counts = shape_counts(shape, d);
                assert_eq!(counts.len(), d, "{shape}");
                let mut values: Vec<&str> = counts.iter().map(|(v, _)| v.as_str()).collect();
                values.sort_unstable();
                values.dedup();
                assert_eq!(values.len(), d, "{shape} has duplicate values");
                assert!(counts.iter().all(|(_, c)| *c >= 1), "{shape}");
            }
        }
    }
}
