//! Figure 8(b): aggregation-function comparison on Ent-XLS 1:10 —
//! Auto-Detect's calibrated union + max-confidence against AvgNPMI,
//! MinNPMI, majority voting, weighted majority voting, and the best
//! single language (BestOne), all over the same selected languages.

use adt_bench::{auto_eval_ks, crude, default_model, emit, ent_corpus, n_dirty, ratio_cases};
use adt_core::Aggregator;
use adt_eval::metrics::{pooled_predictions, precision_series};
use adt_eval::report::Figure;
use adt_eval::{run_method, Method};

fn main() {
    let (model, _corpus, _training) = default_model();
    // BestOne: the selected language with the largest training coverage
    // would need the training artifacts; the first greedy pick is the
    // highest-gain-per-byte language, which is the natural stand-in.
    let best_one = 0usize;

    let source = ent_corpus();
    let oracle = crude(&source);
    let cases = ratio_cases(&source, &oracle, n_dirty(), 10, 0xF8B);
    let ks = auto_eval_ks();

    let mut fig = Figure::new(
        "fig8b_aggregation",
        "aggregation functions on Ent-XLS 1:10 (paper Fig 8b)",
    );
    for (name, agg) in Aggregator::figure8b_suite(best_one) {
        let m = Method::auto_detect_with(&model, agg, name);
        let t0 = std::time::Instant::now();
        let preds = run_method(&m, &cases);
        let pooled = pooled_predictions(&cases, &preds, 1);
        fig.push(name, precision_series(&pooled, &ks));
        eprintln!("[fig8b] {name} in {:.1?}", t0.elapsed());
    }
    emit(&fig);
}
