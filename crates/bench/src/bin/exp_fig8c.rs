//! Figure 8(c): sensitivity to the training corpus — Auto-Detect trained
//! on the larger, more diverse WEB corpus vs the smaller, cleaner WIKI
//! corpus, both evaluated on Ent-XLS 1:10. The paper finds the bigger
//! WEB corpus wins despite WIKI being cleaner.

use adt_bench::{
    auto_eval_ks, crude, default_config, emit, ent_corpus, n_dirty, ratio_cases, train_corpus,
    wiki_corpus,
};
use adt_core::{build_training_set, train_with_training_set};
use adt_eval::metrics::{pooled_predictions, precision_series};
use adt_eval::report::Figure;
use adt_eval::{run_method, Method};

fn main() {
    let cfg = default_config();
    let source = ent_corpus();
    let oracle = crude(&source);
    let cases = ratio_cases(&source, &oracle, n_dirty(), 10, 0xF8C);
    let ks = auto_eval_ks();

    let mut fig = Figure::new(
        "fig8c_training_corpus",
        "training-corpus sensitivity (WIKI vs WEB), Ent-XLS 1:10 (paper Fig 8c)",
    );
    for (label, corpus) in [("WIKI", wiki_corpus()), ("WEB", train_corpus())] {
        eprintln!("[fig8c] training on {label} ({} columns)…", corpus.len());
        let (training, _) = build_training_set(&corpus, &cfg);
        let (model, report) =
            train_with_training_set(&corpus, &cfg, &training).expect("training failed");
        eprintln!(
            "[fig8c] {label}: {} languages, {} bytes",
            model.num_languages(),
            report.model_bytes
        );
        let m = Method::auto_detect(&model);
        let preds = run_method(&m, &cases);
        let pooled = pooled_predictions(&cases, &preds, 1);
        fig.push(label, precision_series(&pooled, &ks));
    }
    emit(&fig);
}
