//! Ablation (DESIGN.md §5): dynamic-threshold (DT, Definition 4)
//! aggregation vs the paper's tractable static-threshold (ST,
//! Definition 5) formulation.
//!
//! The paper proves DT NP-hard/inapproximable (Theorem 1) and adopts ST;
//! this ablation quantifies the trade on real candidate pools: training
//! coverage and precision of a greedy DT heuristic against Algorithm 1's
//! ST selection, under the same memory budget.

use adt_bench::{default_config, scale};
use adt_core::{
    build_training_set, calibrate_candidates, dt_optimize, greedy_select, CandidateSummary,
    DtProblem,
};
use adt_corpus::{generate_corpus, CorpusProfile};
use adt_patterns::Pattern;
use adt_stats::collect_stats_for_languages;
use std::collections::HashMap;

fn main() {
    // A smaller corpus than the main experiments: DT's coordinate ascent
    // rescans the score matrix many times.
    let mut p = CorpusProfile::web(((12_000f64 * scale()) as usize).max(1_000));
    p.dirty_rate = 0.0;
    let corpus = generate_corpus(&p);
    let cfg = adt_core::AutoDetectConfig {
        training_examples: ((12_000f64 * scale()) as usize).max(1_000),
        space: adt_core::config::LanguageSpace::Coarse36,
        ..default_config()
    };
    let (training, _) = build_training_set(&corpus, &cfg);
    eprintln!(
        "[dt] {} training examples ({} negatives)",
        training.len(),
        training.negatives()
    );

    eprintln!(
        "[dt] calibrating {} candidates…",
        cfg.candidate_languages().len()
    );
    let pool = calibrate_candidates(&corpus, &cfg, &training).expect("calibration failed");

    // Score matrices for DT (the expensive part ST avoids). All 36
    // statistics come from one sharded-pipeline pass over the corpus.
    eprintln!("[dt] scoring matrices…");
    let languages = cfg.candidate_languages();
    let all_stats = collect_stats_for_languages(
        &languages,
        &corpus,
        &cfg.stats,
        cfg.effective_train_threads(),
    )
    .expect("stats build failed");
    let mut scores: Vec<Vec<f64>> = Vec::with_capacity(languages.len());
    for (lang, stats) in languages.iter().zip(&all_stats) {
        let mut memo: HashMap<&str, adt_patterns::PatternHash> = HashMap::new();
        let v: Vec<f64> = training
            .examples
            .iter()
            .map(|e| {
                let hu = *memo
                    .entry(e.u.as_str())
                    .or_insert_with(|| Pattern::generalize(&e.u, lang).hash64());
                let hv = *memo
                    .entry(e.v.as_str())
                    .or_insert_with(|| Pattern::generalize(&e.v, lang).hash64());
                stats.npmi_patterns(hu, hv, cfg.npmi)
            })
            .collect();
        scores.push(v);
    }
    let sizes: Vec<usize> = pool.iter().map(|c| c.size_bytes).collect();

    println!("== DT vs ST aggregation ablation (training-set coverage at equal budget) ==");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "budget", "ST cov", "ST prec", "DT cov", "DT prec", "DT langs"
    );
    for budget in [256 << 10, 1 << 20, 8 << 20] {
        // ST: Algorithm 1 over the calibrated pool.
        let st_candidates: Vec<CandidateSummary> = pool
            .iter()
            .enumerate()
            .map(|(i, c)| CandidateSummary {
                index: i,
                size_bytes: c.size_bytes,
                covered_negatives: c.calibration.covered_negatives.clone(),
            })
            .collect();
        let st = greedy_select(&st_candidates, budget);
        // Pooled ST precision: union of selected languages at their thetas.
        let mut flagged = vec![false; training.len()];
        for &i in &st.selected {
            if let Some(theta) = pool[i].calibration.theta {
                for (j, &s) in scores[i].iter().enumerate() {
                    if s <= theta {
                        flagged[j] = true;
                    }
                }
            }
        }
        let st_neg = flagged
            .iter()
            .zip(&training.examples)
            .filter(|(&f, e)| f && e.label == adt_core::Label::Incompatible)
            .count();
        let st_total = flagged.iter().filter(|&&f| f).count();
        let st_prec = st_neg as f64 / st_total.max(1) as f64;

        // DT heuristic.
        let problem = DtProblem::new(&training, scores.clone(), sizes.clone());
        let dt = dt_optimize(&problem, cfg.precision_target, budget, 3);

        println!(
            "{:<10} {:>10} {:>10.3} {:>12} {:>10.3} {:>8}",
            format!("{}KB", budget >> 10),
            st.union_coverage,
            st_prec,
            dt.coverage,
            dt.precision,
            dt.selected.len()
        );
    }
    println!("\n(DT ≥ ST coverage is expected; the paper adopts ST because DT is NP-hard to approximate and the gap is small.)");
}
