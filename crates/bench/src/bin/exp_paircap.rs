//! Ablation (DESIGN.md §5): sensitivity to the per-column distinct-
//! pattern cap used during statistics construction.
//!
//! Columns with more distinct patterns than the cap contribute a strided
//! subsample of pairs (guarding the quadratic blowup on fine languages).
//! This sweep measures what the approximation costs: statistics size,
//! training coverage, and auto-eval precision at caps 8 / 24 (default) /
//! 48.

use adt_bench::scale;
use adt_core::{build_training_set, train_with_training_set, AutoDetectConfig};
use adt_corpus::{generate_corpus, CorpusProfile};
use adt_eval::metrics::{pooled_predictions, precision_at_k};
use adt_eval::testcases::crude_stats;
use adt_eval::{auto_eval_cases, run_method, Method};
use adt_stats::{NpmiParams, StatsConfig};

fn main() {
    let n = ((10_000f64 * scale()) as usize).max(1_000);
    let mut p = CorpusProfile::web(n);
    p.dirty_rate = 0.0;
    let corpus = generate_corpus(&p);
    let mut wiki = CorpusProfile::wiki(n / 2);
    wiki.dirty_rate = 0.0;
    let source = generate_corpus(&wiki);
    let oracle = crude_stats(&source, &StatsConfig::default());
    let n_dirty = (n / 20).max(100);
    let cases = auto_eval_cases(
        &source,
        &oracle,
        NpmiParams::default(),
        n_dirty,
        n_dirty * 5,
        0xCA9,
    );
    let k = n_dirty / 2;

    println!("== Pair-cap sensitivity (distinct-pattern cap per column) ==");
    println!(
        "{:>5} {:>12} {:>10} {:>12} {:>12}",
        "cap", "model bytes", "langs", "train cov", "precision@k"
    );
    for cap in [8usize, 24, 48] {
        let cfg = AutoDetectConfig {
            training_examples: n,
            space: adt_core::config::LanguageSpace::Coarse36,
            stats: StatsConfig {
                max_distinct_per_column: cap,
                sketch: None,
            },
            ..AutoDetectConfig::default()
        };
        let (training, _) = build_training_set(&corpus, &cfg);
        let (model, report) =
            train_with_training_set(&corpus, &cfg, &training).expect("training failed");
        let m = Method::auto_detect(&model);
        let preds = run_method(&m, &cases);
        let pooled = pooled_predictions(&cases, &preds, 1);
        println!(
            "{:>5} {:>12} {:>10} {:>12} {:>12.3}",
            cap,
            report.model_bytes,
            model.num_languages(),
            report.selection.union_coverage,
            precision_at_k(&pooled, k)
        );
    }
    println!(
        "\n(the default cap of 24 should sit within noise of 48 at a fraction of the pair volume)"
    );
}
