//! Figure 8(a): impact of count-min-sketch compression of the
//! co-occurrence dictionaries, at 100% (no sketch), 10% and 1% of the
//! exact size, on Ent-XLS at dirty:clean = 1:10.

use adt_bench::{
    auto_eval_ks, crude, default_config, emit, ent_corpus, n_dirty, ratio_cases, train_corpus,
};
use adt_core::{build_training_set, calibrate_candidates, select_and_assemble};
use adt_eval::metrics::{pooled_predictions, precision_series};
use adt_eval::report::Figure;
use adt_eval::{run_method, Method};

fn main() {
    let corpus = train_corpus();
    let cfg = default_config();
    let (training, _) = build_training_set(&corpus, &cfg);
    eprintln!("[fig8a] calibrating candidate pool…");
    let pool = calibrate_candidates(&corpus, &cfg, &training).expect("calibration failed");

    let source = ent_corpus();
    let oracle = crude(&source);
    let cases = ratio_cases(&source, &oracle, n_dirty(), 10, 0xF8A);
    let ks = auto_eval_ks();

    let mut fig = Figure::new(
        "fig8a_sketch",
        "count-min sketch compression (fraction of exact size) on Ent-XLS 1:10 (paper Fig 8a)",
    );
    for (frac, label) in [(None, "100%"), (Some(0.10), "10%"), (Some(0.01), "1%")] {
        let sketch_cfg = adt_core::AutoDetectConfig {
            sketch_fraction: frac,
            ..cfg.clone()
        };
        let (model, report) =
            select_and_assemble(&corpus, &sketch_cfg, &training, &pool).expect("assembly failed");
        eprintln!(
            "[fig8a] {label}: model {} bytes ({} languages)",
            report.model_bytes,
            model.num_languages()
        );
        let m = Method::auto_detect(&model);
        let preds = run_method(&m, &cases);
        let pooled = pooled_predictions(&cases, &preds, 1);
        fig.push(label, precision_series(&pooled, &ks));
    }
    emit(&fig);
}
