//! Figure 5: automatic evaluation on WIKI at dirty:clean ratios 1:1, 1:5
//! and 1:10 — precision@k for the seven best-performing methods.

use adt_bench::{
    auto_eval_ks, crude, default_model, emit, figure5_methods, n_dirty, ratio_cases, wiki_corpus,
};
use adt_eval::metrics::{pooled_predictions, precision_series};
use adt_eval::report::Figure;
use adt_eval::run_method;

fn main() {
    let (model, _train_corpus, _training) = default_model();
    let source = wiki_corpus();
    let oracle = crude(&source);
    let ks = auto_eval_ks();
    for ratio in [1usize, 5, 10] {
        let cases = ratio_cases(&source, &oracle, n_dirty(), ratio, 0xF15 + ratio as u64);
        let dirty = cases.iter().filter(|c| c.is_dirty()).count();
        eprintln!("[fig5 1:{ratio}] {} cases ({} dirty)", cases.len(), dirty);
        let mut fig = Figure::new(
            &format!("fig5_wiki_1to{ratio}"),
            &format!("auto-eval precision@k on WIKI, dirty:clean = 1:{ratio} (paper Fig 5)"),
        );
        for m in figure5_methods(&model) {
            let t0 = std::time::Instant::now();
            let preds = run_method(&m, &cases);
            let pooled = pooled_predictions(&cases, &preds, 1);
            fig.push(m.name(), precision_series(&pooled, &ks));
            eprintln!("[fig5 1:{ratio}] {} in {:.1?}", m.name(), t0.elapsed());
        }
        emit(&fig);
    }
}
