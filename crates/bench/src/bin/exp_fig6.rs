//! Figure 6: automatic evaluation on Ent-XLS at dirty:clean ratios 1:1,
//! 1:5 and 1:10 — the cross-corpus generalization test (trained on
//! WEB ∪ Pub-XLS, tested on enterprise-profile columns).

use adt_bench::{
    auto_eval_ks, crude, default_model, emit, ent_corpus, figure5_methods, n_dirty, ratio_cases,
};
use adt_eval::metrics::{pooled_predictions, precision_series};
use adt_eval::report::Figure;
use adt_eval::run_method;

fn main() {
    let (model, _train_corpus, _training) = default_model();
    let source = ent_corpus();
    let oracle = crude(&source);
    let ks = auto_eval_ks();
    for ratio in [1usize, 5, 10] {
        let cases = ratio_cases(&source, &oracle, n_dirty(), ratio, 0xF16 + ratio as u64);
        eprintln!(
            "[fig6 1:{ratio}] {} cases ({} dirty)",
            cases.len(),
            cases.iter().filter(|c| c.is_dirty()).count()
        );
        let mut fig = Figure::new(
            &format!("fig6_entxls_1to{ratio}"),
            &format!("auto-eval precision@k on Ent-XLS, dirty:clean = 1:{ratio} (paper Fig 6)"),
        );
        for m in figure5_methods(&model) {
            let preds = run_method(&m, &cases);
            let pooled = pooled_predictions(&cases, &preds, 1);
            fig.push(m.name(), precision_series(&pooled, &ks));
        }
        emit(&fig);
    }
}
