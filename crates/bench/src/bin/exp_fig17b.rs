//! Figure 17(b): cumulative distribution of NPMI scores under two
//! generalization languages (the paper's L1 and L2) over the calibration
//! pairs — showing (i) a large mass at NPMI = 1.0 (identical patterns),
//! (ii) differently shaped distributions, hence (iii) why raw NPMI values
//! cannot be aggregated across languages without calibration.

use adt_bench::{default_config, emit, train_corpus};
use adt_core::build_training_set;
use adt_eval::report::{empirical_cdf, Figure};
use adt_patterns::Language;
use adt_stats::{collect_stats_for_languages, NpmiParams};

fn main() {
    let corpus = train_corpus();
    let cfg = default_config();
    let (training, _) = build_training_set(&corpus, &cfg);

    let mut fig = Figure::new(
        "fig17b_npmi_cdf",
        "CDF of NPMI under L1 (symbols literal) and L2 (class level) over training pairs (paper Fig 17b)",
    );
    let languages = [Language::paper_l1(), Language::paper_l2()];
    let stats_pair = collect_stats_for_languages(
        &languages,
        &corpus,
        &cfg.stats,
        cfg.effective_train_threads(),
    )
    .expect("stats build failed");
    for (label, stats) in ["L1", "L2"].iter().zip(&stats_pair) {
        let mut scores: Vec<f64> = training
            .examples
            .iter()
            .map(|e| stats.score_values(&e.u, &e.v, NpmiParams::default()))
            .collect();
        let at_one =
            scores.iter().filter(|&&s| s >= 0.999).count() as f64 / scores.len().max(1) as f64;
        eprintln!(
            "[fig17b] {label}: {:.1}% of pairs at NPMI = 1.0",
            at_one * 100.0
        );
        let cdf = empirical_cdf(&mut scores, 21);
        // Encode NPMI in [-1, 1] as (npmi + 1) * 100 for the integer axis.
        let points: Vec<(usize, f64)> = cdf
            .into_iter()
            .map(|(x, p)| (((x + 1.0) * 100.0).round() as usize, p))
            .collect();
        fig.push(label, points);
    }
    emit(&fig);
    println!("(x axis is (NPMI + 1) × 100, i.e. 0 ↦ −1, 200 ↦ +1)");
}
