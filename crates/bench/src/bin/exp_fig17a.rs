//! Figure 17(a): sensitivity to the Jelinek–Mercer smoothing factor `f`.
//! Precision@1000-equivalent on Ent-XLS while sweeping `f` from 0 to 1
//! (paper: best and stable in [0.1, 0.3], degraded at f=0 and f→1).

use adt_bench::{crude, default_config, emit, ent_corpus, n_dirty, ratio_cases, train_corpus};
use adt_core::{build_training_set, train_with_training_set};
use adt_eval::metrics::{pooled_predictions, precision_at_k};
use adt_eval::report::Figure;
use adt_eval::{run_method, Method};
use adt_stats::NpmiParams;

fn main() {
    let corpus = train_corpus();
    let base_cfg = default_config();
    // One training set shared across the sweep (built with default f; the
    // compatibility oracle is crude-pattern based and barely sensitive).
    let (training, _) = build_training_set(&corpus, &base_cfg);
    let source = ent_corpus();
    let oracle = crude(&source);
    let cases = ratio_cases(&source, &oracle, n_dirty(), 10, 0xF17A);
    let k = n_dirty() / 2;

    let mut fig = Figure::new(
        "fig17a_smoothing",
        "precision@k(=half of dirty count) vs smoothing factor f on Ent-XLS 1:10 (paper Fig 17a)",
    );
    let mut points = Vec::new();
    for (i, f) in [0.0, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0].iter().enumerate() {
        let cfg = adt_core::AutoDetectConfig {
            npmi: NpmiParams { smoothing: *f },
            ..base_cfg.clone()
        };
        let t0 = std::time::Instant::now();
        let (model, _) =
            train_with_training_set(&corpus, &cfg, &training).expect("training failed");
        let m = Method::auto_detect(&model);
        let preds = run_method(&m, &cases);
        let pooled = pooled_predictions(&cases, &preds, 1);
        let p = precision_at_k(&pooled, k);
        eprintln!(
            "[fig17a] f={f}: precision@{k} = {p:.3} ({} languages, {:.1?})",
            model.num_languages(),
            t0.elapsed()
        );
        // Encode f*100 as the integer axis of the series.
        points.push(((f * 100.0) as usize, p));
        let _ = i;
    }
    fig.push("Auto-Detect", points);
    emit(&fig);
    println!("(x axis is f × 100)");
}
