//! Table 3: summary of the table corpora, plus the §2.1 corpus
//! cleanliness sampling (93.1% of WEB / 97.8% of WIKI columns clean in
//! the paper; our generator profiles encode those dirty rates directly
//! and this binary verifies them empirically on a sample).

use adt_bench::scale;
use adt_corpus::{generate_labeled_columns, CorpusProfile};

fn main() {
    println!("== Table 3: summary of table corpora (scaled ~10^3 from the paper) ==");
    println!(
        "{:<10} {:>10} {:>14} {:>12} {:>14}",
        "name", "#col", "paper #col", "role", "clean rate"
    );
    let paper_sizes = ["350M", "1.4M", "100K*", "100K*", "441"];
    let roles = ["train", "train", "test", "test", "test"];
    let mut suite = CorpusProfile::default_suite();
    for p in &mut suite {
        p.n_columns = ((p.n_columns as f64 * scale() / 2.0) as usize).max(200);
    }
    for (i, p) in suite.iter().enumerate() {
        // Cleanliness sample: label-generate and count dirty columns
        // (the paper hand-labels 1000 sampled columns per corpus).
        let sample = CorpusProfile {
            n_columns: 1000.min(p.n_columns),
            ..p.clone()
        };
        let labeled = generate_labeled_columns(&sample);
        let dirty = labeled.iter().filter(|l| l.is_dirty()).count();
        let clean_rate = 1.0 - dirty as f64 / labeled.len() as f64;
        println!(
            "{:<10} {:>10} {:>14} {:>12} {:>13.1}%",
            p.name,
            p.n_columns,
            paper_sizes[i],
            roles[i],
            clean_rate * 100.0
        );
    }
    println!("\n(*) WIKI / Ent-XLS are sampled to 100K test columns in the paper.");
    println!("Paper reference: WEB 93.1% clean, WIKI 97.8% clean (manually judged samples).");
}
