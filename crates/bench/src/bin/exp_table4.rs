//! Table 4: the top-10 most confident incompatible pairs Auto-Detect
//! reports on the WIKI test columns.

use adt_bench::{default_model, scale};
use adt_corpus::{generate_labeled_columns, CorpusProfile};

fn main() {
    let (model, _corpus, _training) = default_model();
    let wiki = CorpusProfile::wiki(((30_000f64 * scale()) as usize).max(2_000));
    let labeled = generate_labeled_columns(&wiki);

    // Collect each column's single most incompatible pair, ranked by Q.
    let mut findings: Vec<(f64, String, String, bool)> = Vec::new();
    for l in &labeled {
        if let Some(f) = model.most_incompatible(&l.column) {
            let is_true_error = l.is_error_value(&f.suspect);
            findings.push((f.confidence, f.suspect, f.witness, is_true_error));
        }
    }
    findings.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

    println!("== Table 4: top-10 predictions of incompatible values on WIKI ==");
    println!(
        "{:<4} {:<28} {:<28} {:>8} {:>8}",
        "k", "v1 (suspect)", "v2 (witness)", "conf", "label"
    );
    for (i, (q, suspect, witness, correct)) in findings.iter().take(10).enumerate() {
        println!(
            "{:<4} {:<28} {:<28} {:>8.3} {:>8}",
            i + 1,
            truncate(suspect, 28),
            truncate(witness, 28),
            q,
            if *correct { "error" } else { "FP" }
        );
    }
    let correct_in_top10 = findings.iter().take(10).filter(|f| f.3).count();
    println!(
        "\ntop-10 precision: {:.2} (paper: 10/10 manually verified)",
        correct_in_top10 as f64 / 10.0
    );
    println!(
        "total flagged columns: {} of {}",
        findings.len(),
        labeled.len()
    );
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}
