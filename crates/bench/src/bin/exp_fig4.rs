//! Figure 4: precision@k against labeled ground truth on (a) WIKI test
//! columns and (b) the CSV benchmark set, for all twelve methods.
//!
//! The paper's human judges are replaced by the generator's exact
//! injected-error labels (DESIGN.md §1).

use adt_bench::{default_model, emit, figure4_methods, scale};
use adt_corpus::{generate_labeled_columns, CorpusProfile};
use adt_eval::metrics::{pooled_predictions, precision_series};
use adt_eval::report::Figure;
use adt_eval::{cases_from_labeled, run_method};

fn main() {
    let (model, _corpus, _training) = default_model();

    // -- Figure 4(a): WIKI --
    let mut wiki = CorpusProfile::wiki(((30_000f64 * scale()) as usize).max(2_000));
    // The paper's WIKI test sample has ~2.2% dirty columns; keep that.
    let labeled = generate_labeled_columns(&wiki);
    let cases = cases_from_labeled(&labeled);
    let dirty = cases.iter().filter(|c| c.is_dirty()).count();
    eprintln!("[fig4a] {} WIKI columns, {} dirty", cases.len(), dirty);

    // The paper ranks 100K test columns and reports k up to 1000 (~1% of
    // columns). Our scaled sample keeps the same *relative* grid — k up
    // to 1% of the sample — plus the paper's absolute points for
    // reference (at 30K columns, k=1000 exceeds the ~675 available
    // errors, so precision there is capped by construction).
    let rel = (cases.len() / 100).max(10);
    let ks = [rel / 10, rel / 5, rel / 2, rel, 2 * rel, 500, 1000];
    let mut fig_a = Figure::new(
        "fig4a_wiki",
        "precision@k on WIKI-profile labeled columns (paper Fig 4a; k scaled to sample size)",
    );
    for m in figure4_methods(&model) {
        let t0 = std::time::Instant::now();
        let preds = run_method(&m, &cases);
        let pooled = pooled_predictions(&cases, &preds, 1);
        fig_a.push(m.name(), precision_series(&pooled, &ks));
        eprintln!(
            "[fig4a] {} done in {:.1?} ({} predictions)",
            m.name(),
            t0.elapsed(),
            pooled.len()
        );
    }
    emit(&fig_a);

    // -- Figure 4(b): CSV --
    wiki.name = "unused".into();
    let csv_profile = CorpusProfile::csv_set();
    let labeled_csv = generate_labeled_columns(&csv_profile);
    let cases_csv = cases_from_labeled(&labeled_csv);
    eprintln!(
        "[fig4b] {} CSV columns, {} dirty",
        cases_csv.len(),
        cases_csv.iter().filter(|c| c.is_dirty()).count()
    );
    let ks_csv = [10usize, 20, 30, 40, 50];
    let mut fig_b = Figure::new(
        "fig4b_csv",
        "precision@k on the 441-column CSV benchmark (paper Fig 4b)",
    );
    for m in figure4_methods(&model) {
        let preds = run_method(&m, &cases_csv);
        let pooled = pooled_predictions(&cases_csv, &preds, 1);
        fig_b.push(m.name(), precision_series(&pooled, &ks_csv));
    }
    emit(&fig_b);
}
