//! Machine-readable perf report for the pattern-group scan kernel.
//!
//! Races the group kernel (cold cache and warm cache) against the naive
//! value-pair reference on the shared bench shapes, checks the two
//! kernels still agree byte-for-byte, and writes a JSON report with
//! per-shape median ns/op and NPMI probe counters. JSON is hand-rolled:
//! the report must also work in the offline CI harness, whose
//! `serde_json` stub cannot serialize.
//!
//!   bench_report [--quick] [--iters N] [--out PATH]
//!
//! `--quick` halves the shape widths and iteration count — the CI smoke
//! configuration (`scripts/bench_report.sh quick`). Timings from a
//! debug build are only good for the probe-ratio columns; use
//! `scripts/bench_report.sh` (release, full widths) for real numbers.

use adt_bench::kernel_bench::{bench_model, shape_counts, shape_width, SHAPES};
use adt_core::{Aggregator, AutoDetect, PatternCache};
use std::hint::black_box;
use std::time::Instant;

struct ShapeReport {
    shape: &'static str,
    d: usize,
    groups_per_language: Vec<u64>,
    group_cold_ns: u64,
    group_warm_ns: u64,
    reference_ns: u64,
    group_probes: u64,
    group_memo_hits: u64,
    reference_probes: u64,
}

impl ShapeReport {
    /// Reference probes per cold group-kernel probe (the ≥3× acceptance
    /// ratio on duplicate-heavy shapes).
    fn probe_ratio(&self) -> f64 {
        self.reference_probes as f64 / (self.group_probes.max(1)) as f64
    }
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn run_shape(model: &AutoDetect, shape: &'static str, quick: bool, iters: usize) -> ShapeReport {
    let d = shape_width(shape, quick);
    let counts = shape_counts(shape, d);

    // Counters and the differential check come from one instrumented run
    // of each kernel.
    let (group_findings, group_stats) =
        model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut PatternCache::new());
    let (ref_findings, ref_stats) = model.scan_value_counts_reference(
        &counts,
        Aggregator::AutoDetect,
        &mut PatternCache::new(),
    );
    if format!("{group_findings:?}") != format!("{ref_findings:?}") {
        eprintln!("FAIL: kernels disagree on shape {shape} (d={d})");
        std::process::exit(1);
    }

    let group_cold_ns = median_ns(iters, || {
        let mut cache = PatternCache::new();
        black_box(model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut cache));
    });
    let mut warm = PatternCache::new();
    model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut warm);
    let group_warm_ns = median_ns(iters, || {
        black_box(model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut warm));
    });
    let reference_ns = median_ns(iters, || {
        let mut cache = PatternCache::new();
        black_box(model.scan_value_counts_reference(&counts, Aggregator::AutoDetect, &mut cache));
    });

    ShapeReport {
        shape,
        d,
        groups_per_language: group_stats.groups_per_language.clone(),
        group_cold_ns,
        group_warm_ns,
        reference_ns,
        group_probes: group_stats.npmi_probes,
        group_memo_hits: group_stats.npmi_memo_hits,
        reference_probes: ref_stats.npmi_probes,
    }
}

fn json_report(mode: &str, iters: usize, shapes: &[ShapeReport]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"scan_kernels\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"profile\": \"{}\",\n",
        if cfg!(debug_assertions) {
            "dev"
        } else {
            "release"
        }
    ));
    s.push_str(&format!("  \"iters\": {iters},\n"));
    s.push_str("  \"shapes\": [\n");
    for (i, r) in shapes.iter().enumerate() {
        let groups: Vec<String> = r.groups_per_language.iter().map(u64::to_string).collect();
        s.push_str(&format!(
            "    {{\"shape\": \"{}\", \"d\": {}, \"groups_per_language\": [{}], \
             \"group_cold_median_ns\": {}, \"group_warm_median_ns\": {}, \
             \"reference_median_ns\": {}, \"group_npmi_probes\": {}, \
             \"group_npmi_memo_hits\": {}, \"reference_npmi_probes\": {}, \
             \"probe_ratio\": {:.2}}}{}\n",
            r.shape,
            r.d,
            groups.join(", "),
            r.group_cold_ns,
            r.group_warm_ns,
            r.reference_ns,
            r.group_probes,
            r.group_memo_hits,
            r.reference_probes,
            r.probe_ratio(),
            if i + 1 < shapes.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut iters: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next(),
            "--iters" => iters = args.next().and_then(|s| s.parse().ok()),
            other => {
                eprintln!("usage: bench_report [--quick] [--iters N] [--out PATH] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let iters = iters.unwrap_or(if quick { 9 } else { 41 });
    let mode = if quick { "quick" } else { "full" };

    eprintln!("[bench_report] training bench model…");
    let model = bench_model();
    let reports: Vec<ShapeReport> = SHAPES
        .iter()
        .map(|shape| run_shape(&model, shape, quick, iters))
        .collect();

    println!(
        "{:<16} {:>5} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "shape", "d", "group_cold_ns", "group_warm_ns", "reference_ns", "ref_probes", "probe_ratio"
    );
    for r in &reports {
        println!(
            "{:<16} {:>5} {:>14} {:>14} {:>14} {:>12} {:>11.1}x",
            r.shape,
            r.d,
            r.group_cold_ns,
            r.group_warm_ns,
            r.reference_ns,
            r.reference_probes,
            r.probe_ratio()
        );
    }

    let json = json_report(mode, iters, &reports);
    if let Some(path) = out {
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("FAIL: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[bench_report] wrote {path}");
    } else {
        print!("{json}");
    }
}
