//! Machine-readable perf report for the pattern-group scan kernel and
//! the sharded training pipeline.
//!
//! Races the group kernel (cold cache and warm cache) against the naive
//! value-pair reference on the shared bench shapes, races the
//! corpus-major training pipeline against the language-major reference
//! build, checks each pair still agrees byte-for-byte, and writes a JSON
//! report with per-shape median ns/op, NPMI probe counters, and training
//! throughput. JSON is hand-rolled: the report must also work in the
//! offline CI harness, whose `serde_json` stub cannot serialize.
//!
//!   bench_report [--quick] [--iters N] [--out PATH]
//!
//! `--quick` halves the shape widths, corpus size, and iteration count —
//! the CI smoke configuration (`scripts/bench_report.sh quick`). Timings
//! from a debug build are only good for the probe-ratio and
//! train-speedup columns (both algorithmic ratios); use
//! `scripts/bench_report.sh` (release, full widths) for real numbers.

use adt_baselines::{CdmDetector, FRegexDetector};
use adt_bench::kernel_bench::{bench_model, shape_counts, shape_width, SHAPES};
use adt_core::api::Detector;
use adt_core::model::{codec, train};
use adt_core::{
    Aggregator, AutoDetect, AutoDetectConfig, EnsembleEngine, EnsembleReport, OnlineLearner,
    PatternCache,
};
use adt_corpus::{Column, Corpus, SourceTag};
use adt_patterns::enumerate_coarse_languages;
use adt_stats::{
    collect_stats_reference, for_each_language_stats, CoocMode, LanguageStats, PipelineOptions,
    StatsConfig,
};
use std::hint::black_box;
use std::time::Instant;

struct ShapeReport {
    shape: &'static str,
    d: usize,
    groups_per_language: Vec<u64>,
    /// Which scan kernel the adaptive dispatcher picked ("group" or
    /// "direct") — a pure function of the shape's d'/d ratio.
    kernel: &'static str,
    group_cold_ns: u64,
    group_warm_ns: u64,
    reference_ns: u64,
    group_probes: u64,
    group_memo_hits: u64,
    reference_probes: u64,
}

impl ShapeReport {
    /// Reference probes per cold group-kernel probe (the ≥3× acceptance
    /// ratio on duplicate-heavy shapes).
    fn probe_ratio(&self) -> f64 {
        self.reference_probes as f64 / (self.group_probes.max(1)) as f64
    }
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn run_shape(model: &AutoDetect, shape: &'static str, quick: bool, iters: usize) -> ShapeReport {
    let d = shape_width(shape, quick);
    let counts = shape_counts(shape, d);

    // Counters and the differential check come from one instrumented run
    // of each kernel.
    let (group_findings, group_stats) =
        model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut PatternCache::new());
    let (ref_findings, ref_stats) = model.scan_value_counts_reference(
        &counts,
        Aggregator::AutoDetect,
        &mut PatternCache::new(),
    );
    if format!("{group_findings:?}") != format!("{ref_findings:?}") {
        eprintln!("FAIL: kernels disagree on shape {shape} (d={d})");
        std::process::exit(1);
    }

    let group_cold_ns = median_ns(iters, || {
        let mut cache = PatternCache::new();
        black_box(model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut cache));
    });
    let mut warm = PatternCache::new();
    model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut warm);
    let group_warm_ns = median_ns(iters, || {
        black_box(model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut warm));
    });
    let reference_ns = median_ns(iters, || {
        let mut cache = PatternCache::new();
        black_box(model.scan_value_counts_reference(&counts, Aggregator::AutoDetect, &mut cache));
    });

    ShapeReport {
        shape,
        d,
        groups_per_language: group_stats.groups_per_language.clone(),
        kernel: if group_stats.kernel_choices.direct > 0 {
            "direct"
        } else {
            "group"
        },
        group_cold_ns,
        group_warm_ns,
        reference_ns,
        group_probes: group_stats.npmi_probes,
        group_memo_hits: group_stats.npmi_memo_hits,
        reference_probes: ref_stats.npmi_probes,
    }
}

struct TrainReport {
    columns: usize,
    languages: usize,
    interned_values: u64,
    value_occurrences: u64,
    generalizations_saved: u64,
    pipeline_ns: u64,
    reference_ns: u64,
}

impl TrainReport {
    /// Language-major reference time per corpus-major pipeline time at
    /// equal thread count (the ≥3× acceptance ratio; the win is
    /// algorithmic, so it must hold on one core and in debug builds).
    fn speedup(&self) -> f64 {
        self.reference_ns as f64 / self.pipeline_ns.max(1) as f64
    }

    fn columns_per_sec(&self) -> f64 {
        self.columns as f64 / (self.pipeline_ns.max(1) as f64 / 1e9)
    }

    fn values_per_sec(&self) -> f64 {
        self.value_occurrences as f64 / (self.pipeline_ns.max(1) as f64 / 1e9)
    }
}

fn stats_bytes(s: &LanguageStats) -> Vec<u8> {
    let mut buf = Vec::new();
    s.write_binary(&mut buf).expect("in-memory write");
    buf
}

/// A duplicate-heavy web-table-style training corpus: 100-cell columns
/// drawing from a 16-value window of a shared 64-value family pool
/// (dates, currency, codes, decimals). Value repetition — across the
/// corpus and especially within a column (think country, category, or
/// year columns) — is the defining property of the paper's 350M-column
/// web corpus, and what the pipeline's intern pass collapses once while
/// the language-major reference re-pays it per occurrence per language.
fn train_bench_corpus(columns: usize) -> Corpus {
    type Family = fn(usize) -> String;
    let families: [Family; 4] = [
        |i| format!("{:02}/{:02}/20{:02}", i % 12 + 1, i % 28 + 1, i % 20),
        |i| format!("${}.{:02}", 10 + i % 90, i % 100),
        |i| format!("AB-{:04}", 1000 + i * 7 % 9000),
        |i| format!("{}.{:03}", i % 50, i * 13 % 1000),
    ];
    // Fixed-seed LCG so the report is reproducible run to run.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let cols = (0..columns)
        .map(|c| {
            let fam = families[c % families.len()];
            let window = next() % 64;
            let vals: Vec<String> = (0..100).map(|_| fam((window + next() % 16) % 64)).collect();
            Column::new(vals, SourceTag::Web)
        })
        .collect();
    Corpus::from_columns(cols)
}

/// Races the sharded training pipeline against the language-major
/// reference build on the coarse-36 language set, after checking the two
/// produce byte-identical statistics for every language.
fn run_train(quick: bool, iters: usize) -> TrainReport {
    let corpus = train_bench_corpus(if quick { 300 } else { 1_200 });
    let languages = enumerate_coarse_languages();
    let config = StatsConfig::default();
    let opts = PipelineOptions {
        threads: 1, // equal footing with the single-thread reference
        ..PipelineOptions::default()
    };

    let (pipeline_stats, report) =
        for_each_language_stats(&languages, &corpus, &config, &opts, |_, s| s)
            .expect("pipeline build failed");
    let reference_stats =
        collect_stats_reference(&languages, &corpus, &config, 1).expect("reference build failed");
    for (lang, (p, r)) in languages
        .iter()
        .zip(pipeline_stats.iter().zip(&reference_stats))
    {
        if stats_bytes(p) != stats_bytes(r) {
            eprintln!("FAIL: training builds disagree for language {lang:?}");
            std::process::exit(1);
        }
    }

    let pipeline_ns = median_ns(iters, || {
        black_box(
            for_each_language_stats(&languages, &corpus, &config, &opts, |_, s| s)
                .expect("pipeline build failed"),
        );
    });
    let reference_ns = median_ns(iters, || {
        black_box(
            collect_stats_reference(&languages, &corpus, &config, 1)
                .expect("reference build failed"),
        );
    });

    TrainReport {
        columns: corpus.len(),
        languages: languages.len(),
        interned_values: report.interned_values,
        value_occurrences: report.value_occurrences,
        generalizations_saved: report.generalizations_saved,
        pipeline_ns,
        reference_ns,
    }
}

struct StreamingRow {
    columns: usize,
    languages: usize,
    exact_peak_bytes: u64,
    streaming_peak_bytes: u64,
    exact_ns: u64,
    streaming_ns: u64,
    width_min: u64,
    width_max: u64,
    depth: u64,
    sketch_bytes: u64,
    error_bound_max: f64,
    /// Streaming builds byte-identical at 1/2/4/8 threads.
    identical: bool,
}

impl StreamingRow {
    /// Peak co-occurrence accumulator bytes, streaming over exact — the
    /// acceptance bound is ≤ 0.25 (the bounded-memory win is
    /// algorithmic, so it must hold in debug builds too).
    fn peak_ratio(&self) -> f64 {
        self.streaming_peak_bytes as f64 / self.exact_peak_bytes.max(1) as f64
    }

    /// Exact wall-clock per streaming wall-clock (> 1 means streaming
    /// is also faster; informational, not a gate).
    fn throughput_ratio(&self) -> f64 {
        self.exact_ns as f64 / self.streaming_ns.max(1) as f64
    }
}

/// Races the streaming co-occurrence mode against the exact pipeline on
/// a pattern-diverse corpus, comparing peak accumulator memory and
/// throughput, after checking streaming builds are byte-identical at
/// 1/2/4/8 threads. The corpus size is fixed across quick and full
/// modes: ci.sh asserts a fixed byte bound on the streaming peak.
fn run_train_streaming(iters: usize) -> StreamingRow {
    let corpus = train_bench_corpus(320);
    let languages = enumerate_coarse_languages();
    let config = StatsConfig::default();
    let exact_opts = PipelineOptions {
        threads: 4,
        cooc: CoocMode::Exact,
        ..PipelineOptions::default()
    };
    let streaming_opts = PipelineOptions {
        threads: 4,
        cooc: CoocMode::Streaming,
        ..PipelineOptions::default()
    };

    let (_, exact_report) =
        for_each_language_stats(&languages, &corpus, &config, &exact_opts, |_, s| s)
            .expect("exact build failed");

    let mut reference: Option<Vec<Vec<u8>>> = None;
    let mut streaming_report = None;
    let mut identical = true;
    for threads in [1usize, 2, 4, 8] {
        let opts = PipelineOptions {
            threads,
            ..streaming_opts
        };
        let (stats, report) =
            for_each_language_stats(&languages, &corpus, &config, &opts, |_, s| s)
                .expect("streaming build failed");
        let bytes: Vec<Vec<u8>> = stats.iter().map(stats_bytes).collect();
        match &reference {
            Some(r) => identical &= r == &bytes,
            None => {
                reference = Some(bytes);
                streaming_report = Some(report);
            }
        }
    }
    if !identical {
        eprintln!("FAIL: streaming training varies across thread counts");
        std::process::exit(1);
    }
    let sr = streaming_report.expect("streaming report");

    let exact_ns = median_ns(iters, || {
        black_box(
            for_each_language_stats(&languages, &corpus, &config, &exact_opts, |_, s| s)
                .expect("exact build failed"),
        );
    });
    let streaming_ns = median_ns(iters, || {
        black_box(
            for_each_language_stats(&languages, &corpus, &config, &streaming_opts, |_, s| s)
                .expect("streaming build failed"),
        );
    });

    StreamingRow {
        columns: corpus.len(),
        languages: languages.len(),
        exact_peak_bytes: exact_report.peak_cooc_bytes,
        streaming_peak_bytes: sr.peak_cooc_bytes,
        exact_ns,
        streaming_ns,
        width_min: sr.sketch_width_min,
        width_max: sr.sketch_width_max,
        depth: sr.sketch_depth,
        sketch_bytes: sr.sketch_bytes,
        error_bound_max: sr.sketch_error_bound_max,
        identical,
    }
}

struct EnsembleRow {
    columns: usize,
    serial_ns: u64,
    parallel_ns: u64,
    /// The instrumented run whose lanes and merge time are reported.
    report: EnsembleReport,
}

impl EnsembleRow {
    fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns.max(1) as f64
    }
}

/// Times the ensemble engine (Auto-Detect + F-Regex + CDM, union merge)
/// over a duplicate-heavy column set, serial vs all cores, after
/// checking the two runs merge to identical predictions.
fn run_ensemble(model: &AutoDetect, quick: bool, iters: usize) -> EnsembleRow {
    let corpus = train_bench_corpus(if quick { 48 } else { 192 });
    let columns = corpus.columns();
    let members = || -> Vec<Box<dyn Detector + '_>> {
        vec![
            Box::new(model),
            Box::new(FRegexDetector::default()),
            Box::new(CdmDetector::default()),
        ]
    };
    let serial = EnsembleEngine::new(members())
        .with_threads(1)
        .run(columns)
        .expect("serial ensemble run failed");
    let parallel = EnsembleEngine::new(members())
        .with_threads(0)
        .run(columns)
        .expect("parallel ensemble run failed");
    if serial.predictions != parallel.predictions {
        eprintln!("FAIL: ensemble predictions differ between 1 thread and all cores");
        std::process::exit(1);
    }
    let serial_ns = median_ns(iters, || {
        black_box(
            EnsembleEngine::new(members())
                .with_threads(1)
                .run(columns)
                .expect("serial ensemble run failed"),
        );
    });
    let parallel_ns = median_ns(iters, || {
        black_box(
            EnsembleEngine::new(members())
                .with_threads(0)
                .run(columns)
                .expect("parallel ensemble run failed"),
        );
    });
    EnsembleRow {
        columns: columns.len(),
        serial_ns,
        parallel_ns,
        report: parallel,
    }
}

struct OnlineRow {
    base_columns: usize,
    delta_columns: usize,
    full_train_ns: u64,
    absorb_ns: u64,
    retrain_ns: u64,
    identical: bool,
}

impl OnlineRow {
    /// Full from-scratch union train per incremental absorb + retrain —
    /// the online learning loop's acceptance ratio. The win is
    /// algorithmic (the learner skips the corpus-wide statistics passes
    /// over the already-absorbed base), so it must hold in debug builds.
    fn speedup(&self) -> f64 {
        self.full_train_ns as f64 / (self.absorb_ns + self.retrain_ns).max(1) as f64
    }
}

fn model_bytes(model: &AutoDetect) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::write_model(&mut buf, model).expect("in-memory write");
    buf
}

/// Races the serve loop's incremental path (seeded learner absorbs a
/// delta, retrains) against a from-scratch train on the union, after
/// checking the two models agree byte for byte.
fn run_online(quick: bool, iters: usize) -> OnlineRow {
    let base_n = if quick { 240 } else { 960 };
    let delta_n = if quick { 60 } else { 240 };
    let union = train_bench_corpus(base_n + delta_n);
    let base = Corpus::from_columns(union.columns()[..base_n].to_vec());
    let delta: Vec<Column> = union.columns()[base_n..].to_vec();
    let config = AutoDetectConfig {
        training_examples: 2_000,
        train_threads: 1, // equal footing: both paths single-threaded
        ..AutoDetectConfig::small()
    };

    let (scratch, _) = train(&union, &config).expect("union train failed");
    let seeded = OnlineLearner::from_corpus(&base, config.clone()).expect("learner seeding failed");
    let mut learner = seeded.clone();
    learner
        .absorb_columns(delta.clone())
        .expect("absorb failed");
    let (online_model, _) = learner.retrain().expect("retrain failed");
    let identical = model_bytes(&scratch) == model_bytes(&online_model);
    if !identical {
        eprintln!("FAIL: absorb+retrain diverged from the from-scratch union train");
        std::process::exit(1);
    }

    let full_train_ns = median_ns(iters, || {
        black_box(train(&union, &config).expect("union train failed"));
    });
    // Clone the seeded learner outside the timers: the serve loop keeps
    // its learner alive, so the per-delta cost is absorb + retrain only.
    let mut absorb_samples = Vec::with_capacity(iters);
    let mut retrain_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let mut learner = seeded.clone();
        let batch = delta.clone();
        let t0 = Instant::now();
        learner.absorb_columns(batch).expect("absorb failed");
        absorb_samples.push(t0.elapsed().as_nanos() as u64);
        let t1 = Instant::now();
        black_box(learner.retrain().expect("retrain failed"));
        retrain_samples.push(t1.elapsed().as_nanos() as u64);
    }
    absorb_samples.sort_unstable();
    retrain_samples.sort_unstable();

    OnlineRow {
        base_columns: base_n,
        delta_columns: delta_n,
        full_train_ns,
        absorb_ns: absorb_samples[absorb_samples.len() / 2],
        retrain_ns: retrain_samples[retrain_samples.len() / 2],
        identical,
    }
}

fn json_report(
    mode: &str,
    iters: usize,
    shapes: &[ShapeReport],
    train: &TrainReport,
    ensemble: &EnsembleRow,
    online: &OnlineRow,
    streaming: &StreamingRow,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"scan_kernels\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"profile\": \"{}\",\n",
        if cfg!(debug_assertions) {
            "dev"
        } else {
            "release"
        }
    ));
    s.push_str(&format!("  \"iters\": {iters},\n"));
    s.push_str("  \"shapes\": [\n");
    for (i, r) in shapes.iter().enumerate() {
        let groups: Vec<String> = r.groups_per_language.iter().map(u64::to_string).collect();
        s.push_str(&format!(
            "    {{\"shape\": \"{}\", \"d\": {}, \"groups_per_language\": [{}], \
             \"kernel\": \"{}\", \
             \"group_cold_median_ns\": {}, \"group_warm_median_ns\": {}, \
             \"reference_median_ns\": {}, \"group_npmi_probes\": {}, \
             \"group_npmi_memo_hits\": {}, \"reference_npmi_probes\": {}, \
             \"probe_ratio\": {:.2}}}{}\n",
            r.shape,
            r.d,
            groups.join(", "),
            r.kernel,
            r.group_cold_ns,
            r.group_warm_ns,
            r.reference_ns,
            r.group_probes,
            r.group_memo_hits,
            r.reference_probes,
            r.probe_ratio(),
            if i + 1 < shapes.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let direct_shapes = shapes.iter().filter(|r| r.kernel == "direct").count() as u64;
    s.push_str(&format!(
        "  \"kernel_choices\": {{\"group\": {}, \"direct\": {}}},\n",
        shapes.len() as u64 - direct_shapes,
        direct_shapes
    ));
    s.push_str(&format!(
        "  \"train\": {{\"profile\": \"{}\", \"columns\": {}, \"languages\": {}, \
         \"interned_values\": {}, \
         \"value_occurrences\": {}, \"generalizations_saved\": {}, \
         \"pipeline_median_ns\": {}, \"reference_median_ns\": {}, \
         \"columns_per_sec\": {:.1}, \"values_per_sec\": {:.1}, \"speedup\": {:.2}}},\n",
        if cfg!(debug_assertions) {
            "dev"
        } else {
            "release"
        },
        train.columns,
        train.languages,
        train.interned_values,
        train.value_occurrences,
        train.generalizations_saved,
        train.pipeline_ns,
        train.reference_ns,
        train.columns_per_sec(),
        train.values_per_sec(),
        train.speedup()
    ));
    let lanes: Vec<String> = ensemble
        .report
        .stats
        .detectors
        .iter()
        .map(|l| {
            format!(
                "{{\"name\": \"{}\", \"wall_nanos\": {}, \"predictions\": {}, \"columns\": {}}}",
                l.name, l.wall_nanos, l.predictions, l.columns
            )
        })
        .collect();
    s.push_str(&format!(
        "  \"ensemble\": {{\"columns\": {}, \"merge\": \"union\", \
         \"serial_median_ns\": {}, \"parallel_median_ns\": {}, \"speedup\": {:.2}, \
         \"merge_nanos\": {}, \"lanes\": [{}]}},\n",
        ensemble.columns,
        ensemble.serial_ns,
        ensemble.parallel_ns,
        ensemble.speedup(),
        ensemble.report.merge_nanos,
        lanes.join(", ")
    ));
    s.push_str(&format!(
        "  \"online\": {{\"base_columns\": {}, \"delta_columns\": {}, \
         \"full_train_median_ns\": {}, \"absorb_median_ns\": {}, \
         \"retrain_median_ns\": {}, \"speedup\": {:.2}, \"identical\": {}}},\n",
        online.base_columns,
        online.delta_columns,
        online.full_train_ns,
        online.absorb_ns,
        online.retrain_ns,
        online.speedup(),
        online.identical
    ));
    s.push_str(&format!(
        "  \"train_streaming\": {{\"columns\": {}, \"languages\": {}, \
         \"exact_peak_cooc_bytes\": {}, \"streaming_peak_cooc_bytes\": {}, \
         \"peak_ratio\": {:.4}, \
         \"exact_median_ns\": {}, \"streaming_median_ns\": {}, \
         \"throughput_ratio\": {:.2}, \
         \"sketch_width_min\": {}, \"sketch_width_max\": {}, \"sketch_depth\": {}, \
         \"sketch_bytes\": {}, \"error_bound_max\": {:.1}, \"identical\": {}}}\n",
        streaming.columns,
        streaming.languages,
        streaming.exact_peak_bytes,
        streaming.streaming_peak_bytes,
        streaming.peak_ratio(),
        streaming.exact_ns,
        streaming.streaming_ns,
        streaming.throughput_ratio(),
        streaming.width_min,
        streaming.width_max,
        streaming.depth,
        streaming.sketch_bytes,
        streaming.error_bound_max,
        streaming.identical
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut iters: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next(),
            "--iters" => iters = args.next().and_then(|s| s.parse().ok()),
            other => {
                eprintln!("usage: bench_report [--quick] [--iters N] [--out PATH] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let iters = iters.unwrap_or(if quick { 9 } else { 41 });
    let mode = if quick { "quick" } else { "full" };

    eprintln!("[bench_report] training bench model…");
    let model = bench_model();
    let reports: Vec<ShapeReport> = SHAPES
        .iter()
        .map(|shape| run_shape(&model, shape, quick, iters))
        .collect();

    eprintln!("[bench_report] racing training pipeline vs reference build…");
    let train = run_train(quick, if quick { 3 } else { 7 });

    eprintln!("[bench_report] timing ensemble engine (serial vs all cores)…");
    let ensemble = run_ensemble(&model, quick, if quick { 3 } else { 7 });

    eprintln!("[bench_report] racing online absorb+retrain vs full union train…");
    let online = run_online(quick, if quick { 3 } else { 7 });

    eprintln!("[bench_report] racing streaming cooc mode vs exact pipeline…");
    let streaming = run_train_streaming(if quick { 3 } else { 7 });

    println!(
        "{:<16} {:>5} {:>7} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "shape",
        "d",
        "kernel",
        "group_cold_ns",
        "group_warm_ns",
        "reference_ns",
        "ref_probes",
        "probe_ratio"
    );
    for r in &reports {
        println!(
            "{:<16} {:>5} {:>7} {:>14} {:>14} {:>14} {:>12} {:>11.1}x",
            r.shape,
            r.d,
            r.kernel,
            r.group_cold_ns,
            r.group_warm_ns,
            r.reference_ns,
            r.reference_probes,
            r.probe_ratio()
        );
    }

    println!(
        "train: {} columns x {} languages, {} distinct values ({} occurrences), \
         pipeline {} ns vs reference {} ns = {:.1}x ({:.0} columns/s, {:.0} values/s)",
        train.columns,
        train.languages,
        train.interned_values,
        train.value_occurrences,
        train.pipeline_ns,
        train.reference_ns,
        train.speedup(),
        train.columns_per_sec(),
        train.values_per_sec()
    );
    println!(
        "ensemble: {} columns x {} detector(s), serial {} ns vs all-cores {} ns = {:.1}x \
         (merge {} ns)",
        ensemble.columns,
        ensemble.report.stats.detectors.len(),
        ensemble.serial_ns,
        ensemble.parallel_ns,
        ensemble.speedup(),
        ensemble.report.merge_nanos
    );
    println!(
        "online: {}+{} columns, full train {} ns vs absorb {} ns + retrain {} ns = {:.1}x \
         (byte-identical: {})",
        online.base_columns,
        online.delta_columns,
        online.full_train_ns,
        online.absorb_ns,
        online.retrain_ns,
        online.speedup(),
        online.identical
    );
    println!(
        "train_streaming: {} columns x {} languages, peak cooc {} KB vs exact {} KB \
         ({:.1}% of exact), exact {} ns vs streaming {} ns = {:.1}x, widths {}..={} x depth {}, \
         worst-case eN {:.1} (byte-identical across threads: {})",
        streaming.columns,
        streaming.languages,
        streaming.streaming_peak_bytes / 1024,
        streaming.exact_peak_bytes / 1024,
        streaming.peak_ratio() * 100.0,
        streaming.exact_ns,
        streaming.streaming_ns,
        streaming.throughput_ratio(),
        streaming.width_min,
        streaming.width_max,
        streaming.depth,
        streaming.error_bound_max,
        streaming.identical
    );

    let json = json_report(
        mode, iters, &reports, &train, &ensemble, &online, &streaming,
    );
    if let Some(path) = out {
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("FAIL: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[bench_report] wrote {path}");
    } else {
        print!("{json}");
    }
}
