//! Table 5: average error-detection time per column (seconds) for
//! F-Regex, PWheel, dBoost, Linear and Auto-Detect. (The Criterion bench
//! `detect` measures the same kernels with statistical rigor; this
//! binary prints the paper-style one-row table.)

use adt_bench::{crude, default_model, ent_corpus, n_dirty, ratio_cases, table5_detectors};
use adt_eval::Method;
use std::time::Instant;

fn main() {
    let (model, _corpus, _training) = default_model();
    let source = ent_corpus();
    let oracle = crude(&source);
    let cases = ratio_cases(&source, &oracle, (n_dirty() / 4).max(100), 3, 0x7AB5);
    eprintln!("[table5] timing over {} Ent-XLS columns", cases.len());

    let mut rows: Vec<(String, f64)> = Vec::new();
    for det in table5_detectors() {
        let m = Method::baseline(det);
        let t0 = Instant::now();
        for c in &cases {
            std::hint::black_box(m.detect(&c.column));
        }
        rows.push((
            m.name().to_string(),
            t0.elapsed().as_secs_f64() / cases.len() as f64,
        ));
    }
    let m = Method::auto_detect(&model);
    let t0 = Instant::now();
    for c in &cases {
        std::hint::black_box(m.detect(&c.column));
    }
    rows.push((
        "Auto-Detect".to_string(),
        t0.elapsed().as_secs_f64() / cases.len() as f64,
    ));

    println!("== Table 5: average running time per column (seconds) ==");
    print!("{:<10}", "method");
    for (name, _) in &rows {
        print!(" {name:>12}");
    }
    println!();
    print!("{:<10}", "time(s)");
    for (_, t) in &rows {
        print!(" {t:>12.6}");
    }
    println!();
    println!("\npaper (server-class 2012 hardware): F-Regex 0.11, PWheel 0.21, dBoost 0.16, Linear 1.67, Auto-Detect 0.29");
}
