//! Figure 7: precision@k under different memory budgets, on Ent-XLS at
//! the three dirty:clean ratios.
//!
//! The paper sweeps 1MB → 4GB against a 350M-column corpus; our corpora
//! are ~10³ smaller, so the scaled budgets are 64KB, 1MB and 8MB (the
//! shape to reproduce: tiny budgets select ~2 languages and stay precise
//! at low k; larger budgets add languages and win at high k).

use adt_bench::{
    auto_eval_ks, crude, default_config, emit, ent_corpus, n_dirty, ratio_cases, train_corpus,
};
use adt_core::{build_training_set, calibrate_candidates, select_and_assemble};
use adt_eval::metrics::{pooled_predictions, precision_series};
use adt_eval::report::Figure;
use adt_eval::{run_method, Method};

fn main() {
    let corpus = train_corpus();
    let cfg = default_config();
    let (training, _) = build_training_set(&corpus, &cfg);
    eprintln!(
        "[fig7] calibrating {} candidates once…",
        cfg.candidate_languages().len()
    );
    let t0 = std::time::Instant::now();
    let pool = calibrate_candidates(&corpus, &cfg, &training).expect("calibration failed");
    eprintln!("[fig7] pool ready in {:.1?}", t0.elapsed());

    let budgets: [(usize, &str); 3] = [(64 << 10, "64KB"), (1 << 20, "1MB"), (8 << 20, "8MB")];
    let mut models = Vec::new();
    for &(budget, label) in &budgets {
        let budget_cfg = adt_core::AutoDetectConfig {
            memory_budget: budget,
            ..cfg.clone()
        };
        let (model, report) =
            select_and_assemble(&corpus, &budget_cfg, &training, &pool).expect("assembly failed");
        eprintln!(
            "[fig7] budget {label}: {} languages {:?} ({} bytes)",
            model.num_languages(),
            report.selected_ids,
            report.model_bytes
        );
        models.push((label, model));
    }

    let source = ent_corpus();
    let oracle = crude(&source);
    let ks = auto_eval_ks();
    for ratio in [1usize, 5, 10] {
        let cases = ratio_cases(&source, &oracle, n_dirty(), ratio, 0xF17 + ratio as u64);
        let mut fig = Figure::new(
            &format!("fig7_memory_1to{ratio}"),
            &format!(
                "precision@k vs memory budget on Ent-XLS, dirty:clean = 1:{ratio} (paper Fig 7; budgets scaled /10^3)"
            ),
        );
        for (label, model) in &models {
            let m = Method::auto_detect(model);
            let preds = run_method(&m, &cases);
            let pooled = pooled_predictions(&cases, &preds, 1);
            fig.push(label, precision_series(&pooled, &ks));
        }
        emit(&fig);
    }
}
