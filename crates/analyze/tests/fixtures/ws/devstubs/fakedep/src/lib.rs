//! Fixture stub crate: exports `Good` and `sub::there`, but not `Missing`.

pub struct Good;

pub mod sub {
    pub fn there() {}
}
