//! Fixture: serve-scoped file with lock-discipline violations.

pub struct Hub {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
    rx: std::sync::Mutex<std::sync::mpsc::Receiver<u32>>,
    tx: std::sync::mpsc::Sender<u32>,
}

impl Hub {
    pub fn pump(&self) {
        let g = self.alpha.lock();
        let _ = self.tx.send(0);
        drop(g);
    }

    pub fn ordered(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    pub fn drain(&self) {
        // adt-allow(lock-discipline): fixture: guard exists only for the recv handoff
        let _ = self.rx.lock().recv(); // adt-allow(error-path): fixture: drained value is intentionally dropped
    }
}

impl Hub {
    pub fn forward(&self, v: u32) {
        let _ = self.tx.send(v);
    }

    pub fn relay(&self) {
        let g = self.beta.lock();
        self.forward(*g);
    }

    pub fn relay_allowed(&self) {
        let g = self.beta.lock();
        // adt-allow(lock-discipline): fixture: forward's send never blocks an unbounded channel
        self.forward(*g);
    }
}
