//! Fixture: opposite lock order from server.rs — a deadlock pair.

pub struct Mirror {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
}

impl Mirror {
    pub fn reversed(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a + *b
    }
}
