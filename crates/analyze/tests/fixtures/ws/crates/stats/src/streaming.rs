//! Fixture: the streaming co-occurrence planner joined the determinism,
//! panic-safety, and unchecked-arithmetic scopes.

pub fn plan_widths(counts: &[u64], depth: usize) -> u64 {
    let mut seen = std::collections::HashMap::new();
    seen.insert(depth as u64, counts.len());
    let cells = depth as u32;
    let mass: u64 = counts.iter().sum();
    mass + counts[depth * 2] + u64::from(cells)
}

pub fn merged_width(widths: &mut Vec<usize>) -> usize {
    // adt-allow(panic-safety): fixture: the planner emits one width per batch language
    widths.pop().expect("plan has widths")
}
