//! Fixture: the sharded training pipeline is panic- and determinism-scoped.

pub fn merge_shards(shards: &[Vec<u64>], stride: usize) -> u64 {
    let mut acc = std::collections::HashMap::new();
    for s in shards {
        acc.insert(s.len() as u64, 1u64);
    }
    shards[stride * 2].len() as u64
}

pub fn take_slot(slots: &mut Vec<Option<u64>>) -> u64 {
    // adt-allow(panic-safety): fixture: slot was filled by the worker that just joined
    slots.pop().flatten().expect("worker result present")
}
