//! Fixture: panic-scoped kernel file with seeded violations.

pub fn kernel(v: &[u32], i: usize) -> u32 {
    let first = v.first().unwrap();
    if *first > 3 {
        panic!("boom");
    }
    v[i + 1]
}

pub fn guarded(v: &[u32]) -> u32 {
    // adt-allow(panic-safety): fixture: caller guarantees non-empty input
    *v.iter().next().expect("non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let w: Option<u32> = Some(2);
        assert_eq!(w.unwrap(), 2);
    }
}
