//! Fixture: marker-audit violations.

// adt-allow(determinism): fixture: stale marker with nothing to suppress
pub fn clean() -> u32 {
    7
}

// adt-allow(mystery-rule): fixture: unknown rule name
pub fn also_clean() -> u32 {
    9
}

pub fn reasonless() -> usize {
    // adt-allow(determinism)
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    m.len()
}

// adt-allow(error-path): fixture: stale marker with nothing to suppress
pub fn quiet() -> u32 {
    11
}

// adt-allow(unchecked-arith): fixture: misspelled rule name
pub fn misspelled() -> u32 {
    13
}
