//! Fixture: the online learner is held to kernel determinism and
//! panic-safety rules.

pub fn absorb(vals: &[u64]) -> u64 {
    let first = *vals.first().unwrap();
    let t = std::time::Instant::now();
    let last = vals[vals.len() - 1];
    first + last + t.elapsed().as_nanos() as u64
}

pub fn retrain(vals: &[u64]) -> u64 {
    // adt-allow(panic-safety): fixture: absorb rejects empty batches upstream
    vals.iter().copied().max().expect("non-empty")
}

pub fn save_state(flush: bool) -> std::io::Result<()> {
    if flush {
        return Err(std::io::Error::new(std::io::ErrorKind::Other, "disk"));
    }
    Ok(())
}

pub fn checkpoint() {
    let _ = save_state(true);
}

pub fn version() -> u32 {
    3
}

pub fn tick() {
    let _ = version();
}

pub fn checkpoint_allowed() {
    // adt-allow(error-path): fixture: best-effort checkpoint, retried on the next interval
    let _ = save_state(false);
}

pub struct Feed {
    q: std::sync::Mutex<Vec<u64>>,
    tx: std::sync::mpsc::Sender<u64>,
}

impl Feed {
    pub fn push_all(&self) {
        let g = self.q.lock();
        self.tx.send(g.len() as u64).ok();
    }
}

pub fn reasonless_discard() {
    // adt-allow(error-path)
    let _ = save_state(true);
}
