//! Fixture: the online learner is held to kernel determinism and
//! panic-safety rules.

pub fn absorb(vals: &[u64]) -> u64 {
    let first = *vals.first().unwrap();
    let t = std::time::Instant::now();
    let last = vals[vals.len() - 1];
    first + last + t.elapsed().as_nanos() as u64
}

pub fn retrain(vals: &[u64]) -> u64 {
    // adt-allow(panic-safety): fixture: absorb rejects empty batches upstream
    vals.iter().copied().max().expect("non-empty")
}
