//! Fixture: ensemble lanes are lock-scoped since the PR 9 widening.

pub struct Lanes {
    state: std::sync::Mutex<u32>,
    tx: std::sync::mpsc::Sender<u32>,
}

impl Lanes {
    pub fn pooled(&self) -> u32 {
        let g = self.state.lock();
        self.tx.send(*g).unwrap_or_default();
        *g
    }

    pub fn pooled_allowed(&self) -> u32 {
        let g = self.state.lock();
        // adt-allow(lock-discipline): fixture: the bounded channel is empty by protocol here
        self.tx.send(*g).unwrap_or_default();
        *g
    }
}
