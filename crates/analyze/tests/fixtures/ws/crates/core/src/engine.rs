//! Fixture: determinism-scoped file with seeded violations.

use std::collections::HashMap;
use std::time::Instant;

pub fn scan(n: u32) -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(n, n);
    let t = Instant::now();
    // adt-allow(determinism): fixture: deterministic input set, order never reaches output
    let mut s: std::collections::HashSet<u32> = std::collections::HashSet::new();
    s.insert(n);
    m.len() + s.len() + t.elapsed().as_nanos() as usize
}
