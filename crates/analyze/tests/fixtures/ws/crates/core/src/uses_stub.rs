//! Fixture: imports against the devstubs tree.

use fakedep::sub::there;
use fakedep::Good;
use fakedep::Missing;

pub fn f() -> Good {
    there();
    let _ = Missing;
    Good
}
