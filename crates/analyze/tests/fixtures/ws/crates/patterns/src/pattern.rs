//! Fixture: the run-word packing kernel is arithmetic-scoped.

pub fn pack(tag: u8, len: u32) -> u64 {
    tag as u64 | (len as u64) << 8
}

pub fn fold(h: u64) -> u64 {
    h * 31
}

pub fn span_len(end: usize, pos: usize) -> u32 {
    (end - pos) as u32
}

pub fn padded(len: usize) -> usize {
    // adt-allow(unchecked-arithmetic): fixture: len is capped at 40 upstream
    len + 7
}

pub fn reasonless_scale(x: u64) -> u64 {
    // adt-allow(unchecked-arithmetic)
    x * 3
}

// adt-allow(unchecked-arithmetic): fixture: stale marker with nothing to suppress
pub fn clean(x: u64) -> u64 {
    x
}
