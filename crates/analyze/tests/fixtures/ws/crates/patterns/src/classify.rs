//! Fixture: the SWAR character-class scanner is panic-scoped.

pub fn kind_at(table: &[u8; 128], b: usize, stride: usize) -> u8 {
    table[b * stride]
}

pub fn first_word(bytes: &[u8]) -> u64 {
    let word: [u8; 8] = bytes[..8].try_into().unwrap();
    u64::from_le_bytes(word)
}

pub fn mismatch_lane(diff: u64) -> u32 {
    // adt-allow(panic-safety): fixture: caller guarantees diff is nonzero
    u32::try_from(diff.trailing_zeros() / 8).expect("lane index fits u32")
}
