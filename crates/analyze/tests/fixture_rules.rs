//! Fixture-driven end-to-end tests: a miniature workspace under
//! `tests/fixtures/ws/` seeds one-or-more violations per rule (plus a
//! suppressed case for each), and the assertions pin the exact
//! `file:line: rule` surface the analyzer reports. A final meta-test
//! holds the live workspace itself to `--deny` cleanliness.

use adt_analyze::{analyze_workspace, Analysis, Finding};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn run_fixture() -> Analysis {
    analyze_workspace(&fixture_root(), &[]).expect("fixture workspace analyzes")
}

fn has(findings: &[Finding], file: &str, line: u32, rule: &str) -> bool {
    findings
        .iter()
        .any(|f| f.file == file && f.line == line && f.rule == rule)
}

#[test]
fn seeded_violations_reported_with_file_and_line() {
    let a = run_fixture();
    let f = &a.findings;
    // determinism: std maps and wall clock in scoped files.
    assert!(
        has(f, "crates/core/src/engine.rs", 3, "determinism"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/engine.rs", 7, "determinism"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/engine.rs", 9, "determinism"),
        "{f:#?}"
    );
    // panic-safety: unwrap, panicking macro, computed slice index.
    assert!(
        has(f, "crates/core/src/detector.rs", 4, "panic-safety"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/detector.rs", 6, "panic-safety"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/detector.rs", 8, "panic-safety"),
        "{f:#?}"
    );
    // The online learner joined the kernel scopes: unwrap, computed
    // index, and a wall-clock read are all reported there.
    assert!(
        has(f, "crates/core/src/online.rs", 5, "panic-safety"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/online.rs", 6, "determinism"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/online.rs", 7, "panic-safety"),
        "{f:#?}"
    );
    // panic-safety + determinism in the widened stats-build scope: the
    // sharded training pipeline is held to the same kernel rules.
    assert!(
        has(f, "crates/stats/src/pipeline.rs", 4, "determinism"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/stats/src/pipeline.rs", 8, "panic-safety"),
        "{f:#?}"
    );
    // The streaming planner joined the same scopes: std map, truncating
    // cast, and a computed index that is also a literal multiply.
    assert!(
        has(f, "crates/stats/src/streaming.rs", 5, "determinism"),
        "{f:#?}"
    );
    assert!(
        has(
            f,
            "crates/stats/src/streaming.rs",
            7,
            "unchecked-arithmetic"
        ),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/stats/src/streaming.rs", 9, "panic-safety"),
        "{f:#?}"
    );
    assert!(
        has(
            f,
            "crates/stats/src/streaming.rs",
            9,
            "unchecked-arithmetic"
        ),
        "{f:#?}"
    );
    // panic-safety in the patterns classifier scope: the SWAR scanner's
    // hot path is held to the same kernel rules (computed index, unwrap).
    assert!(
        has(f, "crates/patterns/src/classify.rs", 4, "panic-safety"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/patterns/src/classify.rs", 8, "panic-safety"),
        "{f:#?}"
    );
    // unchecked-arithmetic: raw shift, literal multiply, truncating cast
    // in the pattern kernel, plus literal adds in the other kernel files.
    assert!(
        has(
            f,
            "crates/patterns/src/pattern.rs",
            4,
            "unchecked-arithmetic"
        ),
        "{f:#?}"
    );
    assert!(
        has(
            f,
            "crates/patterns/src/pattern.rs",
            8,
            "unchecked-arithmetic"
        ),
        "{f:#?}"
    );
    assert!(
        has(
            f,
            "crates/patterns/src/pattern.rs",
            12,
            "unchecked-arithmetic"
        ),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/detector.rs", 8, "unchecked-arithmetic"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/stats/src/pipeline.rs", 8, "unchecked-arithmetic"),
        "{f:#?}"
    );
    // error-path: discarded Results via `let _ =` and statement-final
    // `.ok();` across the serve and online-learner scopes.
    assert!(
        has(f, "crates/serve/src/server.rs", 13, "error-path"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/serve/src/server.rs", 31, "error-path"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/online.rs", 24, "error-path"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/online.rs", 48, "error-path"),
        "{f:#?}"
    );
    // lock-discipline: blocking send under a guard, and both sides of an
    // inconsistent cross-file acquisition order.
    assert!(
        has(f, "crates/serve/src/server.rs", 13, "lock-discipline"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/serve/src/server.rs", 19, "lock-discipline"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/serve/src/registry.rs", 11, "lock-discipline"),
        "{f:#?}"
    );
    // lock-discipline v2: the PR 9 scope widening reaches the ensemble
    // lanes and the online learner's feed queue.
    assert!(
        has(f, "crates/core/src/ensemble.rs", 11, "lock-discipline"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/online.rs", 48, "lock-discipline"),
        "{f:#?}"
    );
    // allow-audit: stale, unknown-rule, and reason-less markers.
    assert!(
        has(f, "crates/core/src/audit.rs", 3, "allow-audit"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/audit.rs", 8, "allow-audit"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/audit.rs", 14, "allow-audit"),
        "{f:#?}"
    );
    // allow-audit for the new rules: stale error-path marker, misspelled
    // rule name, reason-less arithmetic/error-path suppressions, and a
    // stale unchecked-arithmetic marker.
    assert!(
        has(f, "crates/core/src/audit.rs", 19, "allow-audit"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/audit.rs", 24, "allow-audit"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/patterns/src/pattern.rs", 21, "allow-audit"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/patterns/src/pattern.rs", 25, "allow-audit"),
        "{f:#?}"
    );
    assert!(
        has(f, "crates/core/src/online.rs", 53, "allow-audit"),
        "{f:#?}"
    );
    // stub-parity: an import the fixture stub does not export.
    assert!(
        has(f, "crates/core/src/uses_stub.rs", 5, "stub-parity"),
        "{f:#?}"
    );
}

#[test]
fn per_rule_counts_are_exact() {
    let a = run_fixture();
    let count = |rule: &str| a.findings.iter().filter(|f| f.rule == rule).count();
    assert_eq!(count("determinism"), 6, "{:#?}", a.findings);
    assert_eq!(count("panic-safety"), 9, "{:#?}", a.findings);
    assert_eq!(count("lock-discipline"), 6, "{:#?}", a.findings);
    assert_eq!(count("unchecked-arithmetic"), 7, "{:#?}", a.findings);
    assert_eq!(count("error-path"), 4, "{:#?}", a.findings);
    assert_eq!(count("allow-audit"), 8, "{:#?}", a.findings);
    assert_eq!(count("stub-parity"), 1, "{:#?}", a.findings);
    assert_eq!(a.findings.len(), 41, "{:#?}", a.findings);
    assert_eq!(a.files_scanned, 12);
}

#[test]
fn justified_markers_suppress_their_findings() {
    let a = run_fixture();
    let f = &a.findings;
    // Suppressed: HashSet under a reasoned marker.
    assert!(
        !has(f, "crates/core/src/engine.rs", 11, "determinism"),
        "{f:#?}"
    );
    // Suppressed: expect under a reasoned marker.
    assert!(
        !has(f, "crates/core/src/detector.rs", 13, "panic-safety"),
        "{f:#?}"
    );
    // Suppressed: non-empty expect in the online-learner scope.
    assert!(
        !has(f, "crates/core/src/online.rs", 13, "panic-safety"),
        "{f:#?}"
    );
    // Suppressed: worker-slot expect in the stats pipeline scope.
    assert!(
        !has(f, "crates/stats/src/pipeline.rs", 13, "panic-safety"),
        "{f:#?}"
    );
    // Suppressed: planner-width expect in the streaming scope.
    assert!(
        !has(f, "crates/stats/src/streaming.rs", 14, "panic-safety"),
        "{f:#?}"
    );
    // Suppressed: nonzero-diff expect in the patterns classifier scope.
    assert!(
        !has(f, "crates/patterns/src/classify.rs", 14, "panic-safety"),
        "{f:#?}"
    );
    // Suppressed: recv-under-guard handoff under a reasoned marker, and
    // the drained value's discard under a same-line error-path marker.
    assert!(
        !has(f, "crates/serve/src/server.rs", 25, "lock-discipline"),
        "{f:#?}"
    );
    assert!(
        !has(f, "crates/serve/src/server.rs", 25, "error-path"),
        "{f:#?}"
    );
    // Suppressed: literal add under a reasoned unchecked-arithmetic marker.
    assert!(
        !has(
            f,
            "crates/patterns/src/pattern.rs",
            17,
            "unchecked-arithmetic"
        ),
        "{f:#?}"
    );
    // Suppressed: best-effort checkpoint under a reasoned error-path marker.
    assert!(
        !has(f, "crates/core/src/online.rs", 37, "error-path"),
        "{f:#?}"
    );
    // Suppressed: indirect blocking call under a reasoned marker.
    assert!(
        !has(f, "crates/serve/src/server.rs", 42, "lock-discipline"),
        "{f:#?}"
    );
    // Suppressed: send-under-guard in the widened ensemble scope.
    assert!(
        !has(f, "crates/core/src/ensemble.rs", 18, "lock-discipline"),
        "{f:#?}"
    );
    // A discard whose callee is known NOT to return Result is clean: the
    // call graph proves `version` infallible, so `tick` carries nothing.
    assert!(
        !has(f, "crates/core/src/online.rs", 32, "error-path"),
        "{f:#?}"
    );
    // The reason-less marker still suppresses (line 15) but is itself
    // reported at its own line (14, asserted above).
    assert!(
        !has(f, "crates/core/src/audit.rs", 15, "determinism"),
        "{f:#?}"
    );
    // Test-gated code is exempt: the unwrap inside #[cfg(test)] mod.
    assert!(
        !f.iter()
            .any(|x| x.file == "crates/core/src/detector.rs" && x.line > 15),
        "{f:#?}"
    );
}

/// The tentpole acceptance case: a guard held across a call to a helper
/// that itself blocks is caught only by propagating effects through the
/// call graph — the pre-PR per-file engine cannot see it. The finding
/// names the helper and cites the blocking site inside it.
#[test]
fn indirect_blocking_is_caught_through_the_call_graph() {
    let a = run_fixture();
    let f = a
        .findings
        .iter()
        .find(|f| {
            f.file == "crates/serve/src/server.rs" && f.line == 36 && f.rule == "lock-discipline"
        })
        .unwrap_or_else(|| panic!("{:#?}", a.findings));
    assert!(f.message.contains("`forward` may block"), "{}", f.message);
    assert!(
        f.message
            .contains("`.send()` at crates/serve/src/server.rs:31"),
        "{}",
        f.message
    );
}

/// Dropped-Result findings cite the callee's definition site when the
/// call graph resolves it to a fn with a Result return type.
#[test]
fn dropped_result_findings_cite_the_definition_site() {
    let a = run_fixture();
    let f = a
        .findings
        .iter()
        .find(|f| f.file == "crates/core/src/online.rs" && f.line == 24 && f.rule == "error-path")
        .unwrap_or_else(|| panic!("{:#?}", a.findings));
    assert!(
        f.message
            .contains("`save_state` (defined at crates/core/src/online.rs:16)"),
        "{}",
        f.message
    );
}

#[test]
fn path_filter_restricts_the_run() {
    let a = analyze_workspace(&fixture_root(), &["detector.rs".to_string()])
        .expect("filtered run analyzes");
    assert_eq!(a.files_scanned, 1);
    assert!(a.findings.iter().all(|f| f.file.ends_with("detector.rs")));
    assert_eq!(a.findings.len(), 4, "{:#?}", a.findings);
}

#[test]
fn json_report_is_stable_and_structured() {
    let first = run_fixture().to_json();
    let second = run_fixture().to_json();
    assert_eq!(first, second, "JSON report must be byte-stable across runs");
    assert!(first.contains("\"version\": 1"));
    assert!(first.contains("\"files_scanned\": 12"));
    assert!(first.contains("\"determinism\": 6"));
    assert!(first.contains("\"panic-safety\": 9"));
    assert!(first.contains("\"lock-discipline\": 6"));
    assert!(first.contains("\"unchecked-arithmetic\": 7"));
    assert!(first.contains("\"error-path\": 4"));
    assert!(first.contains("\"allow-audit\": 8"));
    assert!(first.contains("\"stub-parity\": 1"));
    // One JSON row per finding.
    assert_eq!(first.matches("{\"file\": ").count(), 41);
}

/// S1: two binary invocations of `--json` produce byte-identical output,
/// and the findings array is sorted by (file, line, rule).
#[test]
fn cli_json_output_is_byte_stable_and_sorted() {
    let bin = env!("CARGO_BIN_EXE_adt-analyze");
    let root = fixture_root();
    let run = || {
        let out = std::process::Command::new(bin)
            .args(["--json", "--root"])
            .arg(&root)
            .output()
            .expect("analyzer binary runs");
        assert!(out.status.success());
        out.stdout
    };
    let first = run();
    assert_eq!(first, run(), "two --json runs must be byte-identical");

    // Every findings row carries (file, line, rule), and rows arrive in
    // lexicographic (file, line) order.
    let text = String::from_utf8(first).expect("json output is utf-8");
    let mut keys = Vec::new();
    for row in text
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"file\": "))
    {
        let field = |name: &str| {
            let tag = format!("\"{name}\": ");
            let at = row.find(&tag).unwrap_or_else(|| panic!("{row}")) + tag.len();
            row[at..]
                .split([',', '}'])
                .next()
                .unwrap()
                .trim_matches('"')
                .to_string()
        };
        assert!(!field("rule").is_empty(), "{row}");
        keys.push((field("file"), field("line").parse::<u32>().expect("line")));
    }
    assert_eq!(keys.len(), 41);
    assert!(keys.windows(2).all(|w| w[0] <= w[1]), "{keys:#?}");
}

#[test]
fn cli_deny_fails_on_fixture_and_json_goes_to_stdout() {
    let bin = env!("CARGO_BIN_EXE_adt-analyze");
    let root = fixture_root();
    let out = std::process::Command::new(bin)
        .args(["--deny", "--root"])
        .arg(&root)
        .output()
        .expect("analyzer binary runs");
    assert!(!out.status.success(), "--deny must fail on seeded fixtures");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/core/src/detector.rs:4: panic-safety:"),
        "{stdout}"
    );

    let out = std::process::Command::new(bin)
        .args(["--json", "--root"])
        .arg(&root)
        .output()
        .expect("analyzer binary runs");
    assert!(out.status.success(), "--json without --deny exits zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("{\n  \"version\": 1"), "{stdout}");
}

/// The tentpole acceptance gate: the live workspace itself carries no
/// findings — every violation has been fixed or carries a justified
/// marker. Runs against the repo root both in-tree and inside the
/// offline scratch copy (where `devstubs/` is absent and the parity
/// rule auto-skips).
#[test]
fn live_workspace_is_clean_under_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let a = analyze_workspace(&root, &[]).expect("live workspace analyzes");
    assert!(
        a.findings.is_empty(),
        "live tree must be clean under --deny:\n{}",
        a.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
