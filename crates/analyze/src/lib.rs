//! `adt-analyze`: the repo-invariant lint engine.
//!
//! PRs 1–8 rest on invariants the compiler does not check: scans are
//! byte-identical across thread counts and hash-map iteration orders, a
//! panic never escapes a serve worker, no lock is held across blocking
//! I/O, the SWAR bit-packing never silently wraps, and no `Result` is
//! dropped on the model-swap path. This crate machine-checks them with a
//! hand-rolled, std-only token analyzer (no `syn` — it must build under
//! the offline devstub harness). Since PR 9 the engine is
//! *interprocedural*: a workspace-wide function index and call graph
//! ([`callgraph`]) lets rules see through one or more layers of helper
//! functions. Seven rules:
//!
//! - **determinism** — no seed-randomized `HashMap`/`HashSet` in
//!   `adt-core`/`adt-stats`, no wall-clock reads outside the serve stats
//!   layer and the bench crate.
//! - **panic-safety** — no `unwrap`/`expect`/panicking macros/computed
//!   slice indices in the scan kernel, the sharded training pipeline
//!   (`adt-stats` build path), or serve request handlers.
//! - **lock-discipline** — consistent lock acquisition order, and no
//!   guard held across blocking I/O — including a call to a helper whose
//!   call closure blocks (v2, call-graph-powered).
//! - **unchecked-arithmetic** — no raw `+`/`*`/`<<`/narrowing `as` in
//!   the kernel files whose math is the product ([`arith`]).
//! - **error-path** — no discarded `Result` (`let _ =`, bare `.ok();`)
//!   in the serve/learn/online scopes; the call graph proves discards of
//!   known-infallible helpers clean ([`errorpath`]).
//! - **allow-audit** — suppression markers must carry a reason and must
//!   actually suppress something.
//! - **stub-parity** — `devstubs/` crates export what the workspace
//!   imports from their real counterparts.
//!
//! Findings are suppressed inline with a justified marker comment (see
//! [`allow`]); `DESIGN.md` §9 and §14 document the protocol.

pub mod allow;
pub mod arith;
pub mod callgraph;
pub mod errorpath;
pub mod lexer;
pub mod locks;
pub mod parity;
pub mod rules;
pub mod scopes;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// A finding not yet attached to a file.
#[derive(Debug)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to a file, derived from its repo-relative path.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// `HashMap`/`HashSet` are flagged (core/stats determinism scope).
    pub determinism_hash: bool,
    /// Wall-clock reads are allowed (serve stats layer, bench crate).
    pub time_exempt: bool,
    /// Panic-safety rules apply (scan kernel, serve handlers).
    pub panic_scope: bool,
    /// Lock-discipline rules apply (adt-serve, ensemble/online threads).
    pub lock_scope: bool,
    /// Unchecked-arithmetic rules apply (the SWAR/memo/intern kernels).
    pub arith_scope: bool,
    /// Error-path rules apply (serve handlers, the learn/online loop).
    pub errorpath_scope: bool,
}

/// The default path → rule-scope mapping for this repository.
pub fn classify(rel: &str) -> FileClass {
    let serve_src = rel.starts_with("crates/serve/src/");
    let serve_handler = serve_src && !rel.ends_with("/testutil.rs") && !rel.ends_with("/client.rs");
    FileClass {
        determinism_hash: rel.starts_with("crates/core/src/")
            || rel.starts_with("crates/stats/src/"),
        time_exempt: rel == "crates/serve/src/stats.rs" || rel.starts_with("crates/bench/"),
        panic_scope: rel == "crates/core/src/detector.rs"
            || rel == "crates/core/src/engine.rs"
            || rel == "crates/core/src/ensemble.rs"
            || rel == "crates/core/src/online.rs"
            || rel == "crates/stats/src/build.rs"
            || rel == "crates/stats/src/pipeline.rs"
            || rel == "crates/stats/src/streaming.rs"
            || rel == "crates/patterns/src/classify.rs"
            || serve_handler,
        lock_scope: serve_src
            || rel == "crates/core/src/ensemble.rs"
            || rel == "crates/core/src/online.rs",
        arith_scope: rel == "crates/patterns/src/classify.rs"
            || rel == "crates/patterns/src/pattern.rs"
            || rel == "crates/core/src/detector.rs"
            || rel == "crates/stats/src/pipeline.rs"
            || rel == "crates/stats/src/streaming.rs",
        errorpath_scope: serve_handler || rel == "crates/core/src/online.rs",
    }
}

/// A production-tier file lexed and scaffolded once, shared by the call
/// graph build and every per-file rule (phase 1 of the two-phase run).
pub struct PreparedFile {
    pub rel: String,
    pub class: FileClass,
    pub lexed: lexer::Lexed,
    pub braces: scopes::Braces,
    pub skip: Vec<(usize, usize)>,
    pub fns: Vec<scopes::FnSpan>,
    pub markers: Vec<allow::Marker>,
}

/// Lexes and scaffolds one file for the workspace passes.
pub fn prepare_file(rel: &str, source: &str, class: FileClass) -> PreparedFile {
    let lexed = lexer::lex(source);
    let braces = scopes::Braces::build(&lexed.tokens);
    let skip = scopes::test_spans(&lexed.tokens, &braces);
    let skip_lines: Vec<(u32, u32)> = skip
        .iter()
        .map(|&(a, b)| (lexed.tokens[a].line, lexed.tokens[b].line))
        .collect();
    let markers = allow::collect_markers(&lexed.comments, &skip_lines);
    let fns = scopes::fn_spans(&lexed.tokens, &braces);
    PreparedFile {
        rel: rel.to_string(),
        class,
        lexed,
        braces,
        skip,
        fns,
        markers,
    }
}

/// The combined result of a workspace run.
#[derive(Debug)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// Wall-clock seconds per pass (`walk-and-lex`, `callgraph`, one key
    /// per rule). Diagnostic only — never part of [`Analysis::to_json`],
    /// so the findings report stays byte-stable across machines; the CLI
    /// exposes it behind `--timings` and `bench_report` records it.
    pub timings: BTreeMap<&'static str, f64>,
}

impl Analysis {
    /// Stable machine-readable report.
    pub fn to_json(&self) -> String {
        let mut counts: BTreeMap<&str, usize> = allow::RULES.iter().map(|r| (*r, 0)).collect();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        let mut out = String::from("{\n  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"counts\": {");
        let mut first = true;
        for (rule, n) in &counts {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {}", json_str(rule), n));
        }
        out.push_str("\n  },\n  \"findings\": [");
        let mut first = true;
        for f in &self.findings {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message)
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Machine-readable per-pass timings. Kept out of [`Analysis::to_json`]
    /// so baseline diffs stay byte-stable; consumed by `bench_report`.
    pub fn timings_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (pass, secs) in &self.timings {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n  {}: {:.6}", json_str(pass), secs));
        }
        out.push_str("\n}\n");
        out
    }
}

/// Monotonic clock read for the per-pass timings diagnostic.
fn now() -> std::time::Instant {
    // adt-allow(determinism): timings are an opt-in diagnostic, never part of the findings report
    std::time::Instant::now()
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// How a walked file participates in the run.
enum Tier {
    /// All rules.
    Prod,
    /// Import harvesting (stub parity) only: tests, benches, examples.
    ImportOnly,
}

fn tier_of(rel: &str) -> Tier {
    let is_testish = rel
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
        || Path::new(rel)
            .file_stem()
            .and_then(|s| s.to_str())
            .is_some_and(|s| s.contains("test"));
    if is_testish {
        Tier::ImportOnly
    } else {
        Tier::Prod
    }
}

const SKIP_DIRS: [&str; 5] = [".git", "target", "devstubs", "results", "fixtures"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            // `scripts/offline_check.sh` deletes `proptests.rs` files
            // before building against the stubs, so their imports are
            // exempt from the stub-parity contract by construction.
            if path.file_name().is_some_and(|n| n == "proptests.rs") {
                continue;
            }
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes the workspace rooted at `root`. `only` (when non-empty)
/// restricts analysis to files whose repo-relative path contains one of
/// the given substrings — handy for focused runs; cross-file checks then
/// see only that subset.
pub fn analyze_workspace(root: &Path, only: &[String]) -> std::io::Result<Analysis> {
    let stubs_dir = root.join("devstubs");
    let mut stub_crates: BTreeSet<String> = BTreeSet::new();
    if stubs_dir.is_dir() {
        for e in std::fs::read_dir(&stubs_dir)? {
            let e = e?;
            if e.path().is_dir() {
                if let Some(name) = e.file_name().to_str() {
                    stub_crates.insert(name.to_string());
                }
            }
        }
    }

    let mut timings: BTreeMap<&'static str, f64> = BTreeMap::new();

    // Phase 1: walk, read, lex, and scaffold every production-tier file
    // once; harvest imports from everything (stub parity spans tests).
    let t0 = now();
    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut prepared: Vec<PreparedFile> = Vec::new();
    let mut imports: Vec<parity::Import> = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if !only.is_empty() && !only.iter().any(|o| rel.contains(o.as_str())) {
            continue;
        }
        let source = std::fs::read_to_string(path)?;
        files_scanned += 1;
        match tier_of(&rel) {
            Tier::Prod => {
                let pf = prepare_file(&rel, &source, classify(&rel));
                if !stub_crates.is_empty() {
                    parity::collect_imports(&rel, &pf.lexed.tokens, &stub_crates, &mut imports);
                }
                prepared.push(pf);
            }
            Tier::ImportOnly => {
                if stub_crates.is_empty() {
                    continue;
                }
                let lx = lexer::lex(&source);
                parity::collect_imports(&rel, &lx.tokens, &stub_crates, &mut imports);
            }
        }
    }
    timings.insert("walk-and-lex", t0.elapsed().as_secs_f64());

    // Phase 2: the workspace call graph, from the prepared files.
    let t0 = now();
    let file_fns: Vec<callgraph::FileFns> = prepared
        .iter()
        .map(|pf| callgraph::FileFns {
            rel: &pf.rel,
            tokens: &pf.lexed.tokens,
            skip: &pf.skip,
            fns: &pf.fns,
        })
        .collect();
    let graph = callgraph::CallGraph::build(&file_fns);
    drop(file_fns);
    timings.insert("callgraph", t0.elapsed().as_secs_f64());

    // Phase 3: per-file rules, one timed pass over all files per rule.
    let mut raw: Vec<(usize, RawFinding)> = Vec::new();
    let timed = |raw: &mut Vec<(usize, RawFinding)>,
                 pass: &mut dyn FnMut(&PreparedFile, &mut Vec<RawFinding>)| {
        let t0 = now();
        let mut buf = Vec::new();
        for (idx, pf) in prepared.iter().enumerate() {
            pass(pf, &mut buf);
            raw.extend(buf.drain(..).map(|rf| (idx, rf)));
        }
        t0.elapsed().as_secs_f64()
    };
    let t = timed(&mut raw, &mut |pf, buf| {
        rules::determinism(&pf.lexed.tokens, &pf.skip, &pf.class, buf);
    });
    timings.insert("determinism", t);
    let t = timed(&mut raw, &mut |pf, buf| {
        rules::panic_safety(&pf.lexed.tokens, &pf.braces, &pf.skip, &pf.class, buf);
    });
    timings.insert("panic-safety", t);
    let t = timed(&mut raw, &mut |pf, buf| {
        arith::unchecked_arithmetic(&pf.lexed.tokens, &pf.skip, &pf.class, buf);
    });
    timings.insert("unchecked-arithmetic", t);
    let t = timed(&mut raw, &mut |pf, buf| {
        errorpath::error_path(
            &pf.lexed.tokens,
            &pf.braces,
            &pf.skip,
            &pf.class,
            &graph,
            buf,
        );
    });
    timings.insert("error-path", t);

    // Lock discipline: per-file (graph-aware) plus the cross-file order
    // check, one timing bucket.
    let t0 = now();
    let mut all_pairs: Vec<locks::OrderedPair> = Vec::new();
    for (idx, pf) in prepared.iter().enumerate() {
        if !pf.class.lock_scope {
            continue;
        }
        let mut buf = Vec::new();
        all_pairs.extend(locks::collect(
            &pf.rel,
            &pf.lexed.tokens,
            &pf.braces,
            &pf.skip,
            &pf.fns,
            &graph,
            &mut buf,
        ));
        raw.extend(buf.into_iter().map(|rf| (idx, rf)));
    }
    let order = locks::order_findings(&all_pairs);
    timings.insert("lock-discipline", t0.elapsed().as_secs_f64());

    // Cross-file: stub parity.
    let t0 = now();
    let mut stub_trees = BTreeMap::new();
    for name in &stub_crates {
        if let Ok(tree) = parity::build_stub_tree(&stubs_dir.join(name)) {
            stub_trees.insert(name.clone(), tree);
        }
    }
    let parity_findings = parity::check(&imports, &stub_trees);
    timings.insert("stub-parity", t0.elapsed().as_secs_f64());

    // Attach, suppress, audit.
    let t0 = now();
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .map(|(idx, rf)| Finding {
            file: prepared[idx].rel.clone(),
            line: rf.line,
            rule: rf.rule,
            message: rf.message,
        })
        .collect();
    let mut marker_sets: BTreeMap<String, Vec<allow::Marker>> = prepared
        .into_iter()
        .map(|pf| (pf.rel, pf.markers))
        .collect();
    for (file, rf) in order {
        findings.push(Finding {
            file,
            line: rf.line,
            rule: rf.rule,
            message: rf.message,
        });
    }
    findings.extend(parity_findings);

    findings.retain(|f| {
        let Some(markers) = marker_sets.get_mut(&f.file) else {
            return true;
        };
        match allow::find_marker(markers, f.rule, f.line) {
            Some(i) => {
                markers[i].used = true;
                false
            }
            None => true,
        }
    });

    for (file, markers) in &marker_sets {
        for m in markers {
            if !allow::RULES.contains(&m.rule.as_str()) {
                findings.push(Finding {
                    file: file.clone(),
                    line: m.line,
                    rule: "allow-audit",
                    message: format!(
                        "unknown rule `{}` in suppression marker (rules: {})",
                        m.rule,
                        allow::RULES.join(", ")
                    ),
                });
                continue;
            }
            if m.reason.is_empty() {
                findings.push(Finding {
                    file: file.clone(),
                    line: m.line,
                    rule: "allow-audit",
                    message: format!(
                        "suppression of `{}` without a reason; write `: <why>` after the marker",
                        m.rule
                    ),
                });
            }
            if !m.used {
                findings.push(Finding {
                    file: file.clone(),
                    line: m.line,
                    rule: "allow-audit",
                    message: format!(
                        "stale marker: no `{}` finding on this or the next line — remove it",
                        m.rule
                    ),
                });
            }
        }
    }

    timings.insert("allow-audit", t0.elapsed().as_secs_f64());

    // Deterministic output order: (file, line, rule, message) — the
    // derived `Ord` on `Finding` — so `--json` reports are byte-stable
    // across platforms and runs.
    findings.sort();
    findings.dedup();
    Ok(Analysis {
        findings,
        files_scanned,
        timings,
    })
}
