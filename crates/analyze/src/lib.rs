//! `adt-analyze`: the repo-invariant lint engine.
//!
//! PRs 1–3 rest on invariants the compiler does not check: scans are
//! byte-identical across thread counts and hash-map iteration orders, a
//! panic never escapes a serve worker, and no lock is held across
//! blocking I/O. This crate machine-checks them with a hand-rolled,
//! std-only token analyzer (no `syn` — it must build under the offline
//! devstub harness) and five rules:
//!
//! - **determinism** — no seed-randomized `HashMap`/`HashSet` in
//!   `adt-core`/`adt-stats`, no wall-clock reads outside the serve stats
//!   layer and the bench crate.
//! - **panic-safety** — no `unwrap`/`expect`/panicking macros/computed
//!   slice indices in the scan kernel, the sharded training pipeline
//!   (`adt-stats` build path), or serve request handlers.
//! - **lock-discipline** — consistent lock acquisition order across
//!   `adt-serve`, and no guard held across blocking I/O.
//! - **allow-audit** — suppression markers must carry a reason and must
//!   actually suppress something.
//! - **stub-parity** — `devstubs/` crates export what the workspace
//!   imports from their real counterparts.
//!
//! Findings are suppressed inline with a justified marker comment (see
//! [`allow`]); `DESIGN.md` §9 documents the protocol.

pub mod allow;
pub mod lexer;
pub mod locks;
pub mod parity;
pub mod rules;
pub mod scopes;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// A finding not yet attached to a file.
#[derive(Debug)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to a file, derived from its repo-relative path.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// `HashMap`/`HashSet` are flagged (core/stats determinism scope).
    pub determinism_hash: bool,
    /// Wall-clock reads are allowed (serve stats layer, bench crate).
    pub time_exempt: bool,
    /// Panic-safety rules apply (scan kernel, serve handlers).
    pub panic_scope: bool,
    /// Lock-discipline rules apply (adt-serve).
    pub lock_scope: bool,
}

/// The default path → rule-scope mapping for this repository.
pub fn classify(rel: &str) -> FileClass {
    let serve_src = rel.starts_with("crates/serve/src/");
    FileClass {
        determinism_hash: rel.starts_with("crates/core/src/")
            || rel.starts_with("crates/stats/src/"),
        time_exempt: rel == "crates/serve/src/stats.rs" || rel.starts_with("crates/bench/"),
        panic_scope: rel == "crates/core/src/detector.rs"
            || rel == "crates/core/src/engine.rs"
            || rel == "crates/core/src/ensemble.rs"
            || rel == "crates/core/src/online.rs"
            || rel == "crates/stats/src/build.rs"
            || rel == "crates/stats/src/pipeline.rs"
            || rel == "crates/patterns/src/classify.rs"
            || (serve_src && !rel.ends_with("/testutil.rs") && !rel.ends_with("/client.rs")),
        lock_scope: serve_src,
    }
}

/// Per-file analysis output, before cross-file passes and suppression.
pub struct FileAnalysis {
    pub rel: String,
    pub raw: Vec<RawFinding>,
    pub markers: Vec<allow::Marker>,
    pub pairs: Vec<locks::OrderedPair>,
    pub imports: Vec<parity::Import>,
}

/// Runs the single-file rules. `stub_crates` drives import harvesting
/// for the stub-parity pass (pass an empty set to skip it).
pub fn analyze_file(
    rel: &str,
    source: &str,
    class: &FileClass,
    stub_crates: &BTreeSet<String>,
) -> FileAnalysis {
    let lx = lexer::lex(source);
    let braces = scopes::Braces::build(&lx.tokens);
    let skip = scopes::test_spans(&lx.tokens, &braces);
    let skip_lines: Vec<(u32, u32)> = skip
        .iter()
        .map(|&(a, b)| (lx.tokens[a].line, lx.tokens[b].line))
        .collect();
    let markers = allow::collect_markers(&lx.comments, &skip_lines);
    let mut raw = Vec::new();
    rules::determinism(&lx.tokens, &skip, class, &mut raw);
    rules::panic_safety(&lx.tokens, &braces, &skip, class, &mut raw);
    let pairs = if class.lock_scope {
        let fns = scopes::fn_spans(&lx.tokens, &braces);
        locks::collect(rel, &lx.tokens, &braces, &skip, &fns, &mut raw)
    } else {
        Vec::new()
    };
    let mut imports = Vec::new();
    if !stub_crates.is_empty() {
        parity::collect_imports(rel, &lx.tokens, stub_crates, &mut imports);
    }
    FileAnalysis {
        rel: rel.to_string(),
        raw,
        markers,
        pairs,
        imports,
    }
}

/// The combined result of a workspace run.
#[derive(Debug)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Analysis {
    /// Stable machine-readable report.
    pub fn to_json(&self) -> String {
        let mut counts: BTreeMap<&str, usize> = allow::RULES.iter().map(|r| (*r, 0)).collect();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        let mut out = String::from("{\n  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"counts\": {");
        let mut first = true;
        for (rule, n) in &counts {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {}", json_str(rule), n));
        }
        out.push_str("\n  },\n  \"findings\": [");
        let mut first = true;
        for f in &self.findings {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message)
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// How a walked file participates in the run.
enum Tier {
    /// All rules.
    Prod,
    /// Import harvesting (stub parity) only: tests, benches, examples.
    ImportOnly,
}

fn tier_of(rel: &str) -> Tier {
    let is_testish = rel
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
        || Path::new(rel)
            .file_stem()
            .and_then(|s| s.to_str())
            .is_some_and(|s| s.contains("test"));
    if is_testish {
        Tier::ImportOnly
    } else {
        Tier::Prod
    }
}

const SKIP_DIRS: [&str; 5] = [".git", "target", "devstubs", "results", "fixtures"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            // `scripts/offline_check.sh` deletes `proptests.rs` files
            // before building against the stubs, so their imports are
            // exempt from the stub-parity contract by construction.
            if path.file_name().is_some_and(|n| n == "proptests.rs") {
                continue;
            }
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes the workspace rooted at `root`. `only` (when non-empty)
/// restricts analysis to files whose repo-relative path contains one of
/// the given substrings — handy for focused runs; cross-file checks then
/// see only that subset.
pub fn analyze_workspace(root: &Path, only: &[String]) -> std::io::Result<Analysis> {
    let stubs_dir = root.join("devstubs");
    let mut stub_crates: BTreeSet<String> = BTreeSet::new();
    if stubs_dir.is_dir() {
        for e in std::fs::read_dir(&stubs_dir)? {
            let e = e?;
            if e.path().is_dir() {
                if let Some(name) = e.file_name().to_str() {
                    stub_crates.insert(name.to_string());
                }
            }
        }
    }

    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    let mut imports: Vec<parity::Import> = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if !only.is_empty() && !only.iter().any(|o| rel.contains(o.as_str())) {
            continue;
        }
        let source = std::fs::read_to_string(path)?;
        files_scanned += 1;
        match tier_of(&rel) {
            Tier::Prod => {
                let class = classify(&rel);
                let mut fa = analyze_file(&rel, &source, &class, &stub_crates);
                imports.append(&mut fa.imports);
                analyses.push(fa);
            }
            Tier::ImportOnly => {
                if stub_crates.is_empty() {
                    continue;
                }
                let lx = lexer::lex(&source);
                parity::collect_imports(&rel, &lx.tokens, &stub_crates, &mut imports);
            }
        }
    }

    // Cross-file: lock order.
    let all_pairs: Vec<locks::OrderedPair> = analyses
        .iter()
        .flat_map(|a| a.pairs.iter().cloned())
        .collect();
    let order = locks::order_findings(&all_pairs);

    // Cross-file: stub parity.
    let mut stub_trees = BTreeMap::new();
    for name in &stub_crates {
        if let Ok(tree) = parity::build_stub_tree(&stubs_dir.join(name)) {
            stub_trees.insert(name.clone(), tree);
        }
    }
    let parity_findings = parity::check(&imports, &stub_trees);

    // Attach, suppress, audit.
    let mut findings: Vec<Finding> = Vec::new();
    let mut marker_sets: BTreeMap<String, Vec<allow::Marker>> = analyses
        .into_iter()
        .map(|a| {
            for rf in a.raw {
                findings.push(Finding {
                    file: a.rel.clone(),
                    line: rf.line,
                    rule: rf.rule,
                    message: rf.message,
                });
            }
            (a.rel, a.markers)
        })
        .collect();
    for (file, rf) in order {
        findings.push(Finding {
            file,
            line: rf.line,
            rule: rf.rule,
            message: rf.message,
        });
    }
    findings.extend(parity_findings);

    findings.retain(|f| {
        let Some(markers) = marker_sets.get_mut(&f.file) else {
            return true;
        };
        match allow::find_marker(markers, f.rule, f.line) {
            Some(i) => {
                markers[i].used = true;
                false
            }
            None => true,
        }
    });

    for (file, markers) in &marker_sets {
        for m in markers {
            if !allow::RULES.contains(&m.rule.as_str()) {
                findings.push(Finding {
                    file: file.clone(),
                    line: m.line,
                    rule: "allow-audit",
                    message: format!(
                        "unknown rule `{}` in suppression marker (rules: {})",
                        m.rule,
                        allow::RULES.join(", ")
                    ),
                });
                continue;
            }
            if m.reason.is_empty() {
                findings.push(Finding {
                    file: file.clone(),
                    line: m.line,
                    rule: "allow-audit",
                    message: format!(
                        "suppression of `{}` without a reason; write `: <why>` after the marker",
                        m.rule
                    ),
                });
            }
            if !m.used {
                findings.push(Finding {
                    file: file.clone(),
                    line: m.line,
                    rule: "allow-audit",
                    message: format!(
                        "stale marker: no `{}` finding on this or the next line — remove it",
                        m.rule
                    ),
                });
            }
        }
    }

    findings.sort();
    findings.dedup();
    Ok(Analysis {
        findings,
        files_scanned,
    })
}
