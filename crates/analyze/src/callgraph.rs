//! Workspace-wide function index and call graph.
//!
//! The token rules in [`rules`](crate::rules) and the v1 lock checks see
//! exactly one function body at a time, so an invariant that crosses a
//! call — a guard held while a *helper* blocks, a discarded `Result`
//! returned by a function two files away — was invisible. This module
//! builds the missing structure from the same hand-rolled lexer (still
//! zero deps, still buildable under the offline devstub harness):
//!
//! 1. **Function index** — every `fn` with a body in a production-tier
//!    file, keyed by name, with its definition sites and whether any
//!    definition returns a `Result`.
//! 2. **Direct effects** — per function: the first blocking call it makes
//!    (`send`/`recv`/`write_all`/`join`/…), and the set of lock names it
//!    acquires (`.lock()`/`.read()`/`.write()` with empty arguments).
//! 3. **Propagation** — a deterministic fixed point spreads both effects
//!    backwards over call edges: a function *may block* if it blocks
//!    directly or calls one that may; its *transitive acquisition set* is
//!    the union over its call closure. Cycles converge because both
//!    domains are monotone and finite.
//!
//! Resolution is by bare name, deliberately over-approximate: a call site
//! `helper(…)` or `x.helper(…)` resolves to every workspace function
//! named `helper`. Two dampers keep that sound-but-useful: names that
//! collide with the acquirer/blocking vocabulary are never indexed (their
//! semantics are handled directly), and dotted calls through ubiquitous
//! std method names ([`COMMON_METHODS`]) never resolve — otherwise every
//! `map.get(…)` in the tree would alias onto whichever type also defines
//! a `get`.

use crate::lexer::{TokKind, Token};
use crate::locks;
use crate::scopes::{in_spans, FnSpan};
use std::collections::{BTreeMap, BTreeSet};

/// Dotted method names too generic to resolve to workspace functions:
/// the std collection / iterator / conversion vocabulary. A plain-path
/// call (`helper(…)`, `module::helper(…)`) still resolves these.
pub const COMMON_METHODS: [&str; 44] = [
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_str",
    "clear",
    "clone",
    "collect",
    "contains",
    "contains_key",
    "count",
    "default",
    "entry",
    "extend",
    "filter",
    "find",
    "fold",
    "from",
    "get",
    "get_mut",
    "insert",
    "into",
    "into_iter",
    "iter",
    "iter_mut",
    "len",
    "map",
    "max",
    "min",
    "new",
    "next",
    "parse",
    "position",
    "push",
    "pop",
    "remove",
    "replace",
    "sort",
    "sum",
    "take",
    "to_owned",
    "to_string",
];

/// Per-file inputs to the graph build: the lexed tokens, the test spans
/// to skip, and the function spans found by [`crate::scopes::fn_spans`].
pub struct FileFns<'a> {
    pub rel: &'a str,
    pub tokens: &'a [Token],
    pub skip: &'a [(usize, usize)],
    pub fns: &'a [FnSpan],
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: String,
    /// The call went through `.` (method position).
    pub dotted: bool,
    pub line: u32,
}

#[derive(Debug, Default)]
struct Node {
    /// Definition sites, smallest (file, line) first.
    defs: BTreeSet<(String, u32)>,
    /// Any definition declares a `Result` return.
    returns_result: bool,
    /// Root cause of the first direct blocking call, e.g.
    /// "`.recv()` at crates/serve/src/server.rs:331".
    direct_block: Option<String>,
    direct_acquires: BTreeSet<String>,
    calls: BTreeSet<String>,
}

/// The workspace call graph with propagated effects.
#[derive(Debug, Default)]
pub struct CallGraph {
    nodes: BTreeMap<String, Node>,
    /// name → root blocking cause, after the fixed point.
    blocked: BTreeMap<String, String>,
    /// name → transitive lock-acquisition set, after the fixed point.
    acquires: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Builds the index, harvests direct effects and call edges, and runs
    /// both fixed points. Deterministic: all iteration is over `BTreeMap`
    /// in name order, and ties pick the lexicographically smallest cause.
    pub fn build(files: &[FileFns]) -> CallGraph {
        let mut g = CallGraph::default();
        for file in files {
            for (fi, f) in file.fns.iter().enumerate() {
                if in_spans(file.skip, f.body_start) || !indexable(&f.name) {
                    continue;
                }
                let node = g.nodes.entry(f.name.clone()).or_default();
                node.defs.insert((file.rel.to_string(), f.line));
                node.returns_result |= f.returns_result(file.tokens);
                // Attribute body tokens to the innermost function: carve
                // out any nested fn bodies.
                let children: Vec<(usize, usize)> = file
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|&(ci, c)| {
                        ci != fi && c.body_start > f.body_start && c.body_end < f.body_end
                    })
                    .map(|(_, c)| (c.body_start, c.body_end))
                    .collect();
                let mut i = f.body_start;
                let end = f.body_end.min(file.tokens.len());
                while i < end {
                    if let Some(&(_, ce)) = children.iter().find(|&&(cs, ce)| cs <= i && i <= ce) {
                        i = ce + 1;
                        continue;
                    }
                    harvest_effects(file, i, node);
                    i += 1;
                }
            }
        }
        g.propagate();
        g
    }

    fn propagate(&mut self) {
        let mut blocked: BTreeMap<String, String> = self
            .nodes
            .iter()
            .filter_map(|(n, node)| node.direct_block.clone().map(|c| (n.clone(), c)))
            .collect();
        let mut acquires: BTreeMap<String, BTreeSet<String>> = self
            .nodes
            .iter()
            .map(|(n, node)| (n.clone(), node.direct_acquires.clone()))
            .collect();
        loop {
            let mut changed = false;
            for (name, node) in &self.nodes {
                for callee in &node.calls {
                    if let Some(cause) = blocked.get(callee).cloned() {
                        match blocked.get(name) {
                            Some(prev) if *prev <= cause => {}
                            _ => {
                                blocked.insert(name.clone(), cause);
                                changed = true;
                            }
                        }
                    }
                    if let Some(extra) = acquires.get(callee).cloned() {
                        let mine = acquires.entry(name.clone()).or_default();
                        for lock in extra {
                            changed |= mine.insert(lock);
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        acquires.retain(|_, set| !set.is_empty());
        self.blocked = blocked;
        self.acquires = acquires;
    }

    fn resolve(&self, callee: &str, dotted: bool) -> Option<&Node> {
        if dotted && COMMON_METHODS.contains(&callee) {
            return None;
        }
        self.nodes.get(callee)
    }

    /// Root blocking cause of `callee`, when it resolves and may block.
    pub fn block_cause(&self, callee: &str, dotted: bool) -> Option<&str> {
        self.resolve(callee, dotted)?;
        self.blocked.get(callee).map(String::as_str)
    }

    /// Transitive lock-acquisition set of `callee`, when it resolves.
    pub fn transitive_acquires(&self, callee: &str, dotted: bool) -> Option<&BTreeSet<String>> {
        self.resolve(callee, dotted)?;
        self.acquires.get(callee)
    }

    /// Signature knowledge about `callee`: `Some((returns_result, def))`
    /// when the name resolves to indexed workspace functions, `None` for
    /// unknown/external calls. `def` is the smallest definition site.
    pub fn returns(&self, callee: &str, dotted: bool) -> Option<(bool, &(String, u32))> {
        let node = self.resolve(callee, dotted)?;
        let def = node.defs.iter().next()?;
        Some((node.returns_result, def))
    }
}

/// Names excluded from the index: the acquirer/blocking vocabulary is
/// handled by direct-effect checks, and `main` is never a helper.
fn indexable(name: &str) -> bool {
    name != "main" && !locks::ACQUIRERS.contains(&name) && !locks::BLOCKING.contains(&name)
}

/// Reads one token position of a function body into `node`: a direct
/// blocking call, a direct lock acquisition, or an outgoing call edge.
fn harvest_effects(file: &FileFns, i: usize, node: &mut Node) {
    let tokens = file.tokens;
    let t = &tokens[i];
    if t.kind != TokKind::Ident || !tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return;
    }
    let dotted = i > 0 && tokens[i - 1].is_punct('.');
    let pathed = i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':');
    if locks::BLOCKING.contains(&t.text.as_str()) {
        if (dotted || pathed) && node.direct_block.is_none() {
            node.direct_block = Some(format!("`.{}()` at {}:{}", t.text, file.rel, t.line));
        }
        return;
    }
    if locks::ACQUIRERS.contains(&t.text.as_str()) {
        if let Some(lock) = locks::acquisition_at(tokens, i) {
            node.direct_acquires.insert(lock);
        }
        return;
    }
    if let Some(site) = call_at(tokens, i) {
        node.calls.insert(site.callee);
    }
}

/// Recognizes a call site at token `i`: a lowercase/underscore ident
/// directly followed by `(`, not a macro bang, not a definition. Returns
/// `None` for constructor-cased idents (`Some`, `Ok`, tuple structs) and
/// keywords that syntactically precede parens.
pub fn call_at(tokens: &[Token], i: usize) -> Option<CallSite> {
    let t = tokens.get(i)?;
    if t.kind != TokKind::Ident || !tokens.get(i + 1)?.is_punct('(') {
        return None;
    }
    if !t
        .text
        .chars()
        .next()
        .is_some_and(|c| c.is_lowercase() || c == '_')
    {
        return None;
    }
    if matches!(
        t.text.as_str(),
        "if" | "while" | "for" | "match" | "return" | "fn" | "let" | "move" | "loop" | "in" | "as"
    ) {
        return None;
    }
    if i > 0 && (tokens[i - 1].is_punct('!') || tokens[i - 1].is_ident("fn")) {
        return None;
    }
    Some(CallSite {
        callee: t.text.clone(),
        dotted: i > 0 && tokens[i - 1].is_punct('.'),
        line: t.line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scopes::{fn_spans, test_spans, Braces};

    fn graph_of(sources: &[(&str, &str)]) -> CallGraph {
        let lexed: Vec<_> = sources.iter().map(|(_, src)| lex(src)).collect();
        let prepared: Vec<_> = lexed
            .iter()
            .map(|lx| {
                let braces = Braces::build(&lx.tokens);
                let skip = test_spans(&lx.tokens, &braces);
                let fns = fn_spans(&lx.tokens, &braces);
                (lx, skip, fns)
            })
            .collect();
        let files: Vec<FileFns> = sources
            .iter()
            .zip(&prepared)
            .map(|((rel, _), (lx, skip, fns))| FileFns {
                rel,
                tokens: &lx.tokens,
                skip,
                fns,
            })
            .collect();
        CallGraph::build(&files)
    }

    #[test]
    fn direct_blocking_is_recorded_with_site() {
        let g = graph_of(&[("a.rs", "fn f(&self) { self.tx.send(1); }")]);
        let cause = g.block_cause("f", false).unwrap();
        assert!(cause.contains("`.send()` at a.rs:1"), "{cause}");
    }

    #[test]
    fn blocking_propagates_across_files_and_hops() {
        let g = graph_of(&[
            ("a.rs", "fn top(&self) { self.mid(); }"),
            ("b.rs", "fn mid(&self) { bottom(); }"),
            ("c.rs", "fn bottom(rx: &Receiver<u8>) { rx.recv(); }"),
        ]);
        let cause = g.block_cause("top", false).unwrap();
        assert!(cause.contains("`.recv()` at c.rs:1"), "{cause}");
        assert!(g.block_cause("mid", true).is_some());
    }

    #[test]
    fn cycles_converge() {
        let g = graph_of(&[(
            "a.rs",
            "fn ping(&self) { self.pong(); }\n\
             fn pong(&self) { self.ping(); self.q.recv(); }",
        )]);
        assert!(g.block_cause("ping", false).is_some());
    }

    #[test]
    fn non_blocking_helpers_stay_clean() {
        let g = graph_of(&[(
            "a.rs",
            "fn calm(x: u32) -> u32 { double(x) }\nfn double(x: u32) -> u32 { x * 2 }",
        )]);
        assert!(g.block_cause("calm", false).is_none());
    }

    #[test]
    fn acquisitions_propagate_transitively() {
        let g = graph_of(&[(
            "a.rs",
            "fn outer(&self) { self.helper(); }\n\
             fn helper(&self) { let g = self.entries.read(); }",
        )]);
        let locks = g.transitive_acquires("outer", false).unwrap();
        assert!(locks.contains("entries"), "{locks:?}");
    }

    #[test]
    fn common_method_names_do_not_resolve_dotted() {
        let g = graph_of(&[("a.rs", "fn get(&self) { self.rx.recv(); }")]);
        assert!(
            g.block_cause("get", true).is_none(),
            "dotted .get() must not alias"
        );
        assert!(
            g.block_cause("get", false).is_some(),
            "plain get() still resolves"
        );
    }

    #[test]
    fn result_signatures_are_indexed() {
        let g = graph_of(&[(
            "a.rs",
            "fn save(p: &Path) -> io::Result<()> { Ok(()) }\nfn count() -> u32 { 3 }",
        )]);
        let (result, def) = g.returns("save", false).unwrap();
        assert!(result);
        assert_eq!(def, &("a.rs".to_string(), 1));
        let (result, _) = g.returns("count", false).unwrap();
        assert!(!result);
        assert!(g.returns("external", false).is_none());
    }

    #[test]
    fn test_gated_fns_are_not_indexed() {
        let g = graph_of(&[(
            "a.rs",
            "#[cfg(test)]\nmod tests { fn helper(&self) { self.rx.recv(); } }",
        )]);
        assert!(g.block_cause("helper", false).is_none());
    }

    #[test]
    fn blocking_vocabulary_is_never_indexed() {
        let g = graph_of(&[("a.rs", "fn send(&self) { self.rx.recv(); }")]);
        assert!(g.block_cause("send", false).is_none());
    }
}
