//! Lock discipline: per-function guard acquisition sequences.
//!
//! Two checks over `Mutex`/`RwLock` guard acquisitions (`.lock()`,
//! `.read()`, `.write()`, `try_` variants — the empty-argument calls,
//! which distinguishes them from `io::Read::read`/`Write::write`):
//!
//! 1. **Blocking-while-locked** — a guard whose lifetime (conservatively:
//!    to the end of the enclosing block for `let`-bound guards, to the end
//!    of the statement otherwise, or to an explicit `drop(guard)`) covers
//!    a blocking call (`send`, `recv`, `write_all`, `accept`, …) stalls
//!    every other thread contending for that lock. v2: the blocking call
//!    may be *indirect* — a workspace helper whose call closure blocks
//!    (per the [`CallGraph`](crate::callgraph::CallGraph)) is flagged
//!    with the root cause's site.
//! 2. **Lock order** — if one function acquires `a` then `b` while `a` is
//!    still held, and another acquires `b` then `a`, the pair can
//!    deadlock; one order must win. v2: a call made under a guard
//!    contributes the callee's *transitive* acquisition set as ordered
//!    pairs, so split-across-helpers orderings still participate.
//!
//! Lock identity is the receiver path with a leading `self.` stripped
//! (`self.entries.read()` → `entries`), which makes sequences comparable
//! across methods of one type and across files sharing a field name.

use crate::callgraph::{call_at, CallGraph};
use crate::lexer::{TokKind, Token};
use crate::scopes::{in_spans, Braces, FnSpan};
use crate::RawFinding;

/// Guard-producing method names (empty-argument method calls only).
pub const ACQUIRERS: [&str; 6] = ["lock", "read", "write", "try_lock", "try_read", "try_write"];
/// Method names that may block the calling thread.
pub const BLOCKING: [&str; 15] = [
    "send",
    "send_timeout",
    "recv",
    "recv_timeout",
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "flush",
    "accept",
    "connect",
    "join",
    "wait",
    "sleep",
];

/// One ordered acquisition `first` → `second` (while `first` was held),
/// with where the second acquisition happened.
#[derive(Debug, Clone)]
pub struct OrderedPair {
    pub first: String,
    pub second: String,
    pub file: String,
    pub fn_name: String,
    pub line: u32,
}

#[derive(Debug)]
struct Acquisition {
    lock: String,
    tok: usize,
    line: u32,
    guard_end: usize,
}

/// Scans one file: emits blocking-while-locked findings into `out` and
/// returns the ordered acquisition pairs for the cross-file order check.
/// `graph` powers the interprocedural half: calls under a guard to
/// helpers that may block (or that acquire further locks) are treated as
/// if their effects happened inline.
pub fn collect(
    file: &str,
    tokens: &[Token],
    braces: &Braces,
    skip: &[(usize, usize)],
    fns: &[FnSpan],
    graph: &CallGraph,
    out: &mut Vec<RawFinding>,
) -> Vec<OrderedPair> {
    let mut pairs = Vec::new();
    for f in fns {
        if in_spans(skip, f.body_start) {
            continue;
        }
        let acqs = acquisitions(tokens, braces, f);
        for a in &acqs {
            for (j, t) in tokens[a.tok..=a.guard_end.min(tokens.len() - 1)]
                .iter()
                .enumerate()
            {
                let i = a.tok + j;
                if i <= a.tok {
                    continue;
                }
                if t.kind == TokKind::Ident
                    && BLOCKING.contains(&t.text.as_str())
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    out.push(RawFinding {
                        rule: "lock-discipline",
                        line: t.line,
                        message: format!(
                            "blocking `.{}()` while guard of `{}` (acquired line {}) \
                             may still be held; drop the guard first",
                            t.text, a.lock, a.line
                        ),
                    });
                    continue;
                }
                // Indirect: a workspace helper whose closure blocks.
                let Some(site) = call_at(tokens, i) else {
                    continue;
                };
                if ACQUIRERS.contains(&site.callee.as_str())
                    || BLOCKING.contains(&site.callee.as_str())
                {
                    continue;
                }
                if let Some(cause) = graph.block_cause(&site.callee, site.dotted) {
                    out.push(RawFinding {
                        rule: "lock-discipline",
                        line: site.line,
                        message: format!(
                            "call to `{}` while guard of `{}` (acquired line {}) may \
                             still be held; `{}` may block ({})",
                            site.callee, a.lock, a.line, site.callee, cause
                        ),
                    });
                }
                // Transitive ordering: locks the callee's closure takes
                // while this guard is held participate in the cross-file
                // order check as if acquired here.
                if let Some(locks) = graph.transitive_acquires(&site.callee, site.dotted) {
                    for lock in locks {
                        if *lock != a.lock {
                            pairs.push(OrderedPair {
                                first: a.lock.clone(),
                                second: lock.clone(),
                                file: file.to_string(),
                                fn_name: f.name.clone(),
                                line: site.line,
                            });
                        }
                    }
                }
            }
        }
        for (i, a) in acqs.iter().enumerate() {
            for b in &acqs[i + 1..] {
                if b.tok <= a.guard_end && a.lock != b.lock {
                    pairs.push(OrderedPair {
                        first: a.lock.clone(),
                        second: b.lock.clone(),
                        file: file.to_string(),
                        fn_name: f.name.clone(),
                        line: b.line,
                    });
                }
            }
        }
    }
    pairs
}

/// Cross-file pass: report every acquisition site participating in an
/// inconsistent order pair. Returns `(file, finding)` rows.
pub fn order_findings(pairs: &[OrderedPair]) -> Vec<(String, RawFinding)> {
    let mut out = Vec::new();
    for p in pairs {
        if let Some(rev) = pairs
            .iter()
            .find(|q| q.first == p.second && q.second == p.first)
        {
            out.push((
                p.file.clone(),
                RawFinding {
                    rule: "lock-discipline",
                    line: p.line,
                    message: format!(
                        "inconsistent lock order: `{}` then `{}` in `{}`, but the \
                         opposite order occurs in `{}` ({}:{}); pick one order",
                        p.first, p.second, p.fn_name, rev.fn_name, rev.file, rev.line
                    ),
                },
            ));
        }
    }
    out
}

/// When token `i` is a guard acquisition (`recv.lock()`-shaped: an
/// [`ACQUIRERS`] name in method position with an empty argument list),
/// the lock's receiver path. Shared with the call-graph build, which
/// harvests per-function direct acquisition sets through it.
pub fn acquisition_at(tokens: &[Token], i: usize) -> Option<String> {
    let t = tokens.get(i)?;
    if t.kind != TokKind::Ident || !ACQUIRERS.contains(&t.text.as_str()) {
        return None;
    }
    if i == 0 || !tokens[i - 1].is_punct('.') {
        return None;
    }
    if !(tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        && tokens.get(i + 2).is_some_and(|n| n.is_punct(')')))
    {
        return None;
    }
    receiver_path(tokens, i - 1)
}

fn acquisitions(tokens: &[Token], braces: &Braces, f: &FnSpan) -> Vec<Acquisition> {
    let mut out = Vec::new();
    let end = f.body_end.min(tokens.len());
    for i in f.body_start..end {
        let Some(lock) = acquisition_at(tokens, i) else {
            continue;
        };
        let guard_end = guard_end(tokens, braces, i, end);
        out.push(Acquisition {
            lock,
            tok: i,
            line: tokens[i].line,
            guard_end,
        });
    }
    out
}

/// The dotted receiver path ending at the `.` before the acquirer, e.g.
/// `ctx.conn_rx` for `ctx.conn_rx.lock()`. `None` when the receiver is
/// not a plain ident path (a call result, an index, …).
fn receiver_path(tokens: &[Token], dot: usize) -> Option<String> {
    let mut segs: Vec<&str> = Vec::new();
    let mut i = dot; // points at a separator initially
    loop {
        if i == 0 {
            break;
        }
        let prev = &tokens[i - 1];
        if prev.kind == TokKind::Ident {
            segs.push(&prev.text);
            i -= 1;
            // Continue through `.` or `::` separators.
            if i >= 1 && tokens[i - 1].is_punct('.') {
                i -= 1;
                continue;
            }
            if i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
                i -= 2;
                continue;
            }
            break;
        }
        return None;
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    let joined = segs.join(".");
    Some(
        joined
            .strip_prefix("self.")
            .map(str::to_string)
            .unwrap_or(joined),
    )
}

/// Where the guard from the acquisition at `i` should be assumed dead.
fn guard_end(tokens: &[Token], braces: &Braces, i: usize, fn_end: usize) -> usize {
    // Find the start of the statement and whether it is a `let`.
    let mut s = i;
    let mut let_name: Option<&str> = None;
    while s > 0 {
        let t = &tokens[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") {
            let mut n = s; // token after `let`
            if tokens.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            if tokens.get(n).is_some_and(|t| t.kind == TokKind::Ident) {
                let_name = Some(&tokens[n].text);
            } else {
                let_name = Some(""); // pattern binding: no drop tracking
            }
        }
        s -= 1;
    }
    let block_close = braces
        .enclosing_brace(i)
        .and_then(|b| braces.matching(b))
        .unwrap_or(fn_end)
        .min(fn_end);
    if let Some(name) = let_name {
        // Live to the end of the block, or an explicit drop(name).
        if !name.is_empty() {
            for j in i..block_close {
                if tokens[j].is_ident("drop")
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('('))
                    && tokens.get(j + 2).is_some_and(|t| t.is_ident(name))
                    && tokens.get(j + 3).is_some_and(|t| t.is_punct(')'))
                {
                    return j;
                }
            }
        }
        block_close
    } else {
        // Temporary guard: dead at the end of the statement.
        (i..block_close)
            .find(|&j| {
                tokens[j].is_punct(';') && braces.enclosing_brace(j) == braces.enclosing_brace(i)
            })
            .unwrap_or(block_close)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scopes::{fn_spans, test_spans, Braces};

    fn run(src: &str) -> (Vec<RawFinding>, Vec<OrderedPair>) {
        let lx = lex(src);
        let braces = Braces::build(&lx.tokens);
        let skip = test_spans(&lx.tokens, &braces);
        let fns = fn_spans(&lx.tokens, &braces);
        let graph = CallGraph::build(&[crate::callgraph::FileFns {
            rel: "f.rs",
            tokens: &lx.tokens,
            skip: &skip,
            fns: &fns,
        }]);
        let mut out = Vec::new();
        let pairs = collect("f.rs", &lx.tokens, &braces, &skip, &fns, &graph, &mut out);
        (out, pairs)
    }

    #[test]
    fn guard_across_recv_flagged() {
        let (f, _) = run("fn w(ctx: &Ctx) { let s = ctx.conn_rx.lock().unwrap().recv(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("recv"));
        assert!(f[0].message.contains("conn_rx"));
    }

    #[test]
    fn scoped_guard_then_io_not_flagged() {
        let (f, _) = run(
            "fn g(&self) { let p = { let e = self.entries.read(); e.path() }; self.tx.send(p); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dropped_guard_then_io_not_flagged() {
        let (f, _) = run("fn g(&self) { let e = self.entries.read(); drop(e); self.tx.send(1); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn io_write_with_args_is_not_an_acquisition() {
        let (f, pairs) = run("fn g(w: &mut W) { w.write(buf); w.read(buf); }");
        assert!(f.is_empty());
        assert!(pairs.is_empty());
    }

    #[test]
    fn nested_acquisitions_produce_ordered_pairs() {
        let (_, pairs) = run("fn g(&self) { let a = self.a.lock(); let b = self.b.lock(); }");
        assert_eq!(pairs.len(), 1);
        assert_eq!(
            (pairs[0].first.as_str(), pairs[0].second.as_str()),
            ("a", "b")
        );
    }

    #[test]
    fn inconsistent_order_across_functions_reported() {
        let (_, pairs) = run(
            "fn g(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n\
             fn h(&self) { let b = self.b.lock(); let a = self.a.lock(); }",
        );
        let findings = order_findings(&pairs);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].1.message.contains("inconsistent lock order"));
    }

    #[test]
    fn indirect_blocking_through_helper_flagged() {
        let (f, _) = run(
            "fn relay(&self) { let g = self.state.lock(); self.forward(g.id); }\n\
             fn forward(&self, id: u64) { self.tx.send(id); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("`forward` may block"),
            "{}",
            f[0].message
        );
        assert!(
            f[0].message.contains("`.send()` at f.rs:2"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn indirect_nonblocking_helper_is_clean() {
        let (f, _) = run(
            "fn relay(&self) { let g = self.state.lock(); self.label(g.id); }\n\
             fn label(&self, id: u64) -> String { format!(\"{id}\") }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn transitive_acquires_make_ordered_pairs() {
        let (_, pairs) = run(
            "fn outer(&self) { let a = self.a.lock(); self.helper(); }\n\
             fn helper(&self) { let b = self.b.lock(); }",
        );
        assert!(
            pairs.iter().any(|p| p.first == "a" && p.second == "b"),
            "{pairs:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let (_, pairs) = run(
            "fn g(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n\
             fn h(&self) { let a = self.a.lock(); let b = self.b.lock(); }",
        );
        assert!(order_findings(&pairs).is_empty());
    }
}
