//! Structural scaffolding over the token stream: brace matching,
//! `#[cfg(test)]`-ish span detection, and function-body spans.

use crate::lexer::{TokKind, Token};

/// Brace/bracket/paren structure of a token stream.
#[derive(Debug, Default)]
pub struct Braces {
    /// For each opening delimiter token index, the index of its closer
    /// (and vice versa). Unbalanced input simply lacks entries.
    close_of: Vec<Option<usize>>,
    /// For each token index, the index of the innermost `{` enclosing it
    /// (not counting a `{` at the index itself).
    brace_parent: Vec<Option<usize>>,
}

impl Braces {
    pub fn build(tokens: &[Token]) -> Braces {
        let mut close_of = vec![None; tokens.len()];
        let mut brace_parent = vec![None; tokens.len()];
        let mut stack: Vec<(usize, char)> = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            brace_parent[i] = stack
                .iter()
                .rev()
                .find(|(_, c)| *c == '{')
                .map(|(idx, _)| *idx);
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "{" | "[" | "(" => stack.push((i, t.text.as_bytes()[0] as char)),
                "}" | "]" | ")" => {
                    let open = match t.text.as_str() {
                        "}" => '{',
                        "]" => '[',
                        _ => '(',
                    };
                    // Pop until the matching opener kind (tolerates
                    // mismatched input rather than panicking).
                    while let Some((j, c)) = stack.pop() {
                        if c == open {
                            close_of[j] = Some(i);
                            close_of[i] = Some(j);
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        Braces {
            close_of,
            brace_parent,
        }
    }

    /// The index of the delimiter matching the one at `i`, if balanced.
    pub fn matching(&self, i: usize) -> Option<usize> {
        self.close_of.get(i).copied().flatten()
    }

    /// Innermost `{` enclosing token `i`.
    pub fn enclosing_brace(&self, i: usize) -> Option<usize> {
        self.brace_parent.get(i).copied().flatten()
    }
}

/// Token-index ranges (inclusive) of items gated behind a cfg mentioning
/// `test` (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`). Lint
/// rules target production code; test code may unwrap and time freely.
pub fn test_spans(tokens: &[Token], braces: &Braces) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some(attr_end) = braces.matching(i + 1) else {
            i += 2;
            continue;
        };
        let mentions_test = tokens[i + 2..attr_end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test");
        if !mentions_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then find the item body.
        let mut j = attr_end + 1;
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            match braces.matching(j + 1) {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // The gated item runs to its body's closing brace, or to the
        // terminating semicolon for bodyless items.
        let mut k = j;
        let mut end = None;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('{') {
                end = braces.matching(k);
                break;
            }
            if t.is_punct(';') {
                end = Some(k);
                break;
            }
            k += 1;
        }
        match end {
            Some(e) => {
                spans.push((i, e));
                i = e + 1;
            }
            None => i = j + 1,
        }
    }
    spans
}

/// True when token index `i` falls inside any of `spans`.
pub fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(a, b)| a <= i && i <= b)
}

/// One `fn` item: its name, body token range (exclusive of braces), and
/// enough signature context for the call graph (the `fn` keyword index
/// bounds the signature; `line` is where the name token sits).
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    pub line: u32,
    /// Index of the `fn` keyword token.
    pub fn_tok: usize,
    pub body_start: usize,
    pub body_end: usize,
}

impl FnSpan {
    /// True when the signature declares a `Result` return: a `->` arrow
    /// followed anywhere before the body by a `Result` ident (covers
    /// `io::Result`, `Result<T, E>`, and type aliases ending in
    /// `Result`).
    pub fn returns_result(&self, tokens: &[Token]) -> bool {
        let sig = &tokens[self.fn_tok..self.body_start.min(tokens.len())];
        let Some(arrow) = sig
            .windows(2)
            .position(|w| w[0].is_punct('-') && w[1].is_punct('>'))
        else {
            return false;
        };
        sig[arrow..]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.ends_with("Result"))
    }
}

/// Every function with a body, innermost-last so callers can attribute a
/// token to the innermost containing function by scanning in reverse.
pub fn fn_spans(tokens: &[Token], braces: &Braces) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Find the parameter list, then the body brace (stopping at `;`
        // for trait-method declarations without bodies).
        let mut j = i + 2;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('<') {
                // Skip the parameter list; generics lack brace matching
                // (`<` is not a delimiter), so only parens are jumped.
                if t.is_punct('(') {
                    match braces.matching(j) {
                        Some(e) => {
                            j = e + 1;
                            continue;
                        }
                        None => break,
                    }
                }
            }
            if t.is_punct('{') {
                body = braces.matching(j).map(|e| (j + 1, e));
                break;
            }
            if t.is_punct(';') {
                break;
            }
            j += 1;
        }
        if let Some((s, e)) = body {
            out.push(FnSpan {
                name: name_tok.text.clone(),
                line: name_tok.line,
                fn_tok: i,
                body_start: s,
                body_end: e,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn braces_match_and_nest() {
        let lx = lex("fn f() { let v = [1, (2)]; }");
        let b = Braces::build(&lx.tokens);
        let open = lx.tokens.iter().position(|t| t.is_punct('{')).unwrap();
        let close = lx.tokens.iter().rposition(|t| t.is_punct('}')).unwrap();
        assert_eq!(b.matching(open), Some(close));
        // The `(` inside the array literal (not the parameter list).
        let inner = lx.tokens.iter().rposition(|t| t.is_punct('(')).unwrap();
        assert_eq!(b.enclosing_brace(inner), Some(open));
    }

    #[test]
    fn cfg_test_items_are_spanned() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn also_live() {}";
        let lx = lex(src);
        let b = Braces::build(&lx.tokens);
        let spans = test_spans(&lx.tokens, &b);
        assert_eq!(spans.len(), 1);
        let unwrap_idx = lx.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(in_spans(&spans, unwrap_idx));
        let live_idx = lx
            .tokens
            .iter()
            .position(|t| t.is_ident("also_live"))
            .unwrap();
        assert!(!in_spans(&spans, live_idx));
    }

    #[test]
    fn cfg_any_test_feature_is_spanned() {
        let src = "#[cfg(any(test, feature = \"reference-kernel\"))]\nimpl Foo { fn r(&self) { x.unwrap(); } }\nfn live() { y.unwrap(); }";
        let lx = lex(src);
        let b = Braces::build(&lx.tokens);
        let spans = test_spans(&lx.tokens, &b);
        let x = lx.tokens.iter().position(|t| t.is_ident("x")).unwrap();
        let y = lx.tokens.iter().position(|t| t.is_ident("y")).unwrap();
        assert!(in_spans(&spans, x));
        assert!(!in_spans(&spans, y));
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() { one(); }\nimpl T { fn b(&self) -> usize { two() } }";
        let lx = lex(src);
        let b = Braces::build(&lx.tokens);
        let fns = fn_spans(&lx.tokens, &b);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[1].name, "b");
        let two = lx.tokens.iter().position(|t| t.is_ident("two")).unwrap();
        assert!(fns[1].body_start <= two && two <= fns[1].body_end);
    }
}
