//! Unchecked-arithmetic: raw integer operators in kernel scope.
//!
//! The SWAR bit-packing kernels (`run_word`'s tag|len|literal framing,
//! the classify word scan, the detector's memo keys, the pipeline's
//! intern ids) are exactly the code where a silent wrap or truncation
//! corrupts results instead of crashing. In files under
//! [`FileClass::arith_scope`](crate::FileClass) this rule flags:
//!
//! - binary `+` and `*` where at least one *immediate* operand is an
//!   integer literal (`self.pos + 1`, `threads * 4`) — the
//!   literal-operand requirement keeps trait bounds (`Clone + Send`) and
//!   generic variable math out of scope while catching the increment /
//!   scale patterns that overflow at the margins;
//! - every `<<` shift in expression position — shifted-out bits vanish
//!   silently, so each shift needs a width argument (`wrapping_shl`) or
//!   a justification;
//! - `as` casts to a type narrower than 64 bits (`u8`…`u32`, `i8`…`i32`)
//!   — `as` truncates without complaint; `try_from` or a marker saying
//!   why the value provably fits.
//!
//! The fix vocabulary is `wrapping_*` / `checked_*` / `saturating_*` /
//! `try_from` — all method calls, so fixed code stops matching the raw
//! operator patterns with no special-casing here. Anything intentional
//! carries a justified `adt-allow` + `(unchecked-arithmetic): <reason>`
//! marker (spelled split here so this comment is not itself a marker).

use crate::lexer::{TokKind, Token};
use crate::scopes::in_spans;
use crate::{FileClass, RawFinding};

/// Cast targets narrower than 64 bits.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

pub fn unchecked_arithmetic(
    tokens: &[Token],
    skip: &[(usize, usize)],
    class: &FileClass,
    out: &mut Vec<RawFinding>,
) {
    if !class.arith_scope {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_spans(skip, i) {
            continue;
        }
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "+" | "*" => binary_op(tokens, i, out),
                "<" => shift(tokens, i, out),
                _ => {}
            }
        }
        if t.is_ident("as") {
            narrowing_cast(tokens, i, out);
        }
    }
}

/// Flags `a + b` / `a * b` when one immediate operand is an int literal.
fn binary_op(tokens: &[Token], i: usize, out: &mut Vec<RawFinding>) {
    let op = &tokens[i];
    let (Some(prev), Some(next)) = (i.checked_sub(1).map(|p| &tokens[p]), tokens.get(i + 1)) else {
        return;
    };
    // Expression position: the left side must end an operand. Rules out
    // unary deref/ref positions and type syntax.
    let expr_pos = prev.kind == TokKind::Ident
        || prev.kind == TokKind::Num
        || prev.is_punct(')')
        || prev.is_punct(']');
    if !expr_pos {
        return;
    }
    // `+=` / `*=` are read-modify-write on an existing binding; the
    // overflow semantics question is the same but the idiomatic fix is a
    // different statement shape — out of scope for this rule.
    if next.is_punct('=') {
        return;
    }
    if op.text == "*" {
        // Right side must start an operand (rules out `*const` / `*mut`
        // raw-pointer types and deref chains).
        let operand = next.kind == TokKind::Num
            || next.is_punct('(')
            || (next.kind == TokKind::Ident && !next.is_ident("const") && !next.is_ident("mut"));
        if !operand {
            return;
        }
    }
    let literal = is_int_literal(prev) || is_int_literal(next);
    if !literal {
        return;
    }
    out.push(RawFinding {
        rule: "unchecked-arithmetic",
        line: op.line,
        message: format!(
            "raw `{}` with an integer-literal operand in kernel scope; use \
             `wrapping_*`/`checked_*`/`saturating_*` or justify the bound",
            op.text
        ),
    });
}

/// Flags `a << b`. The lexer emits `<<` as two adjacent `<` puncts;
/// generics never produce adjacent `<`s with an operand on the left
/// (`Vec<Vec<…>>` separates them with the inner type name), and
/// turbofish is excluded because its `<` follows `:`.
fn shift(tokens: &[Token], i: usize, out: &mut Vec<RawFinding>) {
    if !tokens.get(i + 1).is_some_and(|n| n.is_punct('<')) {
        return;
    }
    // `<<=` compound assign: same carve-out as `+=`.
    if tokens.get(i + 2).is_some_and(|n| n.is_punct('=')) {
        return;
    }
    let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) else {
        return;
    };
    let expr_pos = prev.kind == TokKind::Ident
        || prev.kind == TokKind::Num
        || prev.is_punct(')')
        || prev.is_punct(']');
    if !expr_pos {
        return;
    }
    out.push(RawFinding {
        rule: "unchecked-arithmetic",
        line: tokens[i].line,
        message: "raw `<<` shift in kernel scope; shifted-out bits vanish silently — \
                  use `wrapping_shl`/`checked_shl` or justify the width"
            .to_string(),
    });
}

/// Flags `expr as u32` and the other sub-64-bit integer targets.
fn narrowing_cast(tokens: &[Token], i: usize, out: &mut Vec<RawFinding>) {
    let Some(ty) = tokens.get(i + 1) else {
        return;
    };
    if ty.kind != TokKind::Ident || !NARROW_INTS.contains(&ty.text.as_str()) {
        return;
    }
    out.push(RawFinding {
        rule: "unchecked-arithmetic",
        line: tokens[i].line,
        message: format!(
            "truncating `as {}` cast in kernel scope; use `try_from` or justify \
             why the value fits",
            ty.text
        ),
    });
}

/// Typed integer suffixes — checked before the float heuristics because
/// `usize`/`isize` contain an `e` that would otherwise read as an
/// exponent.
const INT_SUFFIXES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Integer literal: a `Num` token that is not float-shaped. Prefixed
/// literals (`0x…`, `0o…`, `0b…`) and int-suffixed literals are always
/// integers; otherwise floats are recognized by a `.`, a decimal
/// exponent, or an `f32`/`f64` suffix.
fn is_int_literal(t: &Token) -> bool {
    if t.kind != TokKind::Num {
        return false;
    }
    let s = t.text.as_str();
    if s.starts_with("0x") || s.starts_with("0X") || s.starts_with("0o") || s.starts_with("0b") {
        return true;
    }
    if INT_SUFFIXES.iter().any(|suf| s.ends_with(suf)) {
        return true;
    }
    !(s.contains('.')
        || s.contains('e')
        || s.contains('E')
        || s.ends_with("f32")
        || s.ends_with("f64"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scopes::{test_spans, Braces};

    fn run(src: &str) -> Vec<RawFinding> {
        let lx = lex(src);
        let braces = Braces::build(&lx.tokens);
        let skip = test_spans(&lx.tokens, &braces);
        let class = FileClass {
            arith_scope: true,
            ..FileClass::default()
        };
        let mut out = Vec::new();
        unchecked_arithmetic(&lx.tokens, &skip, &class, &mut out);
        out
    }

    #[test]
    fn literal_add_and_mul_flagged() {
        let f = run("fn f(p: usize, t: usize) { let a = p + 1; let b = t * 4; }");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("raw `+`"));
        assert!(f[1].message.contains("raw `*`"));
    }

    #[test]
    fn variable_only_math_not_flagged() {
        let f = run("fn f(a: usize, b: usize) { let c = a + b; let d = a * b; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn trait_bounds_and_impl_sums_not_flagged() {
        let f = run("fn f<T: Clone + Send>(x: T) -> impl Iterator<Item = T> + '_ { once(x) }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wrapping_and_compound_assign_not_flagged() {
        let f = run("fn f(a: u64) { let b = a.wrapping_mul(3); let mut c = 0; c += 1; c <<= 2; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn shifts_flagged_regardless_of_operands() {
        let f = run("fn f(len: u64, lit: u64) { let w = 1u64 | len << 8 | lit << 40; }");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("raw `<<`"));
    }

    #[test]
    fn generics_and_turbofish_not_shifts() {
        let f = run(
            "fn f(v: Vec<Vec<u8>>) { let n = v.len(); let s = Vec::<u8>::new(); let c = n < 3; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn narrowing_casts_flagged_widening_not() {
        let f = run(
            "fn f(n: usize, c: char) { let a = n as u32; let b = n as u64; let d = c as usize; }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("as u32"));
    }

    #[test]
    fn float_literals_and_strings_not_flagged() {
        let f = run(
            "fn f(x: f64, s: String) { let a = x + 1.5; let b = x * 2.0e3; let c = s + \"x\"; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn raw_pointer_types_not_mul() {
        let f = run("fn f(p: *const u8, q: *mut u8) { unsafe { let a = *p; } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn out_of_scope_is_silent() {
        let lx = lex("fn f(p: usize) { let a = p + 1; }");
        let braces = Braces::build(&lx.tokens);
        let skip = test_spans(&lx.tokens, &braces);
        let mut out = Vec::new();
        unchecked_arithmetic(&lx.tokens, &skip, &FileClass::default(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn test_spans_are_skipped() {
        let f = run("#[cfg(test)]\nmod tests { fn t() { let a = 1 + 1; } }");
        assert!(f.is_empty(), "{f:?}");
    }
}
