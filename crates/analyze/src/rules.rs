//! The determinism and panic-safety rules: straight-line scans over the
//! token stream, gated by the file's [`FileClass`].

use crate::lexer::{TokKind, Token};
use crate::scopes::{in_spans, Braces};
use crate::{FileClass, RawFinding};

/// Determinism: in scoped crates, findings are byte-identical across
/// runs, thread counts, and platforms — so (a) no seed-randomized std
/// `HashMap`/`HashSet` (use the vendored `FxHashMap`/`FxHashSet`, or a
/// `BTreeMap` when iteration order reaches output), and (b) no wall
/// clock (`Instant::now` / `SystemTime::now`) outside the exempted
/// stats/bench layers.
pub fn determinism(
    tokens: &[Token],
    skip: &[(usize, usize)],
    class: &FileClass,
    out: &mut Vec<RawFinding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || in_spans(skip, i) {
            continue;
        }
        if class.determinism_hash && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(RawFinding {
                rule: "determinism",
                line: t.line,
                message: format!(
                    "seed-randomized std `{}` in a determinism-scoped crate; \
                     use `FxHashMap`/`FxHashSet` (plus an explicit sort where \
                     iteration order reaches output) or `BTreeMap`",
                    t.text
                ),
            });
        }
        if !class.time_exempt && (t.text == "Instant" || t.text == "SystemTime") {
            let is_now = tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|a| a.is_ident("now"));
            if is_now {
                out.push(RawFinding {
                    rule: "determinism",
                    line: t.line,
                    message: format!(
                        "`{}::now` outside the serve stats layer; wall-clock reads \
                         make scans time-dependent",
                        t.text
                    ),
                });
            }
        }
    }
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Panic-safety: in the scan kernel and serve request handlers a panic
/// poisons a whole batch (every job in the dispatch fails) or costs a
/// request a 500, so `unwrap`/`expect`, panicking macros, and computed
/// slice indices are flagged for an error path or a justified allow.
pub fn panic_safety(
    tokens: &[Token],
    braces: &Braces,
    skip: &[(usize, usize)],
    class: &FileClass,
    out: &mut Vec<RawFinding>,
) {
    if !class.panic_scope {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_spans(skip, i) {
            continue;
        }
        if t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect") {
            let is_method_call = i > 0
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|a| a.is_punct('('));
            if is_method_call {
                out.push(RawFinding {
                    rule: "panic-safety",
                    line: t.line,
                    message: format!(
                        "`.{}()` in a panic-scoped path; return a typed error \
                         (a panic here poisons the batch / costs a 500)",
                        t.text
                    ),
                });
            }
        }
        if t.kind == TokKind::Ident && PANIC_MACROS.contains(&t.text.as_str()) {
            let is_macro = tokens.get(i + 1).is_some_and(|a| a.is_punct('!'));
            let is_def = i > 0 && tokens[i - 1].is_ident("macro_rules");
            if is_macro && !is_def {
                out.push(RawFinding {
                    rule: "panic-safety",
                    line: t.line,
                    message: format!("`{}!` in a panic-scoped path; return a typed error", t.text),
                });
            }
        }
        // Computed slice index: postfix `expr[…]` whose index expression
        // does arithmetic — the classic off-by-one panic shape. Plain
        // `v[i]` loop indexing is accepted (bounds usually come from the
        // loop range); `v[i + 1]` is not.
        if t.is_punct('[') {
            let postfix = i > 0
                && (tokens[i - 1].kind == TokKind::Ident
                    || tokens[i - 1].is_punct(')')
                    || tokens[i - 1].is_punct(']'));
            if !postfix {
                continue;
            }
            let Some(close) = braces.matching(i) else {
                continue;
            };
            let has_arith = tokens[i + 1..close].iter().any(|t| {
                t.kind == TokKind::Punct && matches!(t.text.as_str(), "+" | "-" | "*" | "/" | "%")
            });
            if has_arith {
                out.push(RawFinding {
                    rule: "panic-safety",
                    line: t.line,
                    message: "computed slice index in a panic-scoped path; use `.get()` \
                              or hoist the bound check"
                        .to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scopes::{test_spans, Braces};

    fn run(src: &str, class: &FileClass) -> Vec<RawFinding> {
        let lx = lex(src);
        let braces = Braces::build(&lx.tokens);
        let skip = test_spans(&lx.tokens, &braces);
        let mut out = Vec::new();
        determinism(&lx.tokens, &skip, class, &mut out);
        panic_safety(&lx.tokens, &braces, &skip, class, &mut out);
        out
    }

    fn all_rules() -> FileClass {
        FileClass {
            determinism_hash: true,
            time_exempt: false,
            panic_scope: true,
            lock_scope: true,
            ..FileClass::default()
        }
    }

    #[test]
    fn hashmap_and_now_flagged_in_scope() {
        let f = run(
            "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }",
            &all_rules(),
        );
        assert_eq!(f.iter().filter(|f| f.rule == "determinism").count(), 2);
    }

    #[test]
    fn fxhashmap_and_elapsed_not_flagged() {
        let f = run(
            "use adt_stats::FxHashMap;\nfn f(t: Instant) { t.elapsed(); }",
            &all_rules(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn out_of_scope_class_silences() {
        let class = FileClass {
            time_exempt: true,
            ..FileClass::default()
        };
        let f = run(
            "use std::collections::HashMap;\nfn f() { Instant::now(); x.unwrap(); }",
            &class,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_expect_macros_flagged() {
        let f = run(
            "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"boom\"); unreachable!(); }",
            &all_rules(),
        );
        assert_eq!(f.iter().filter(|f| f.rule == "panic-safety").count(), 4);
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let f = run(
            "fn f() { a.unwrap_or(0); b.unwrap_or_else(|e| e.into_inner()); c.unwrap_or_default(); }",
            &all_rules(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn computed_index_flagged_plain_index_not() {
        let f = run(
            "fn f() { let a = v[i]; let b = v[i + 1]; let c = m[j]; let d = &v[..]; }",
            &all_rules(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "panic-safety");
    }

    #[test]
    fn array_literals_and_types_not_indexing() {
        let f = run(
            "fn f() -> [u8; 2 + 2] { let a: [u8; 4] = [0; 2 + 2]; a }",
            &all_rules(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_modules_are_skipped() {
        let f = run(
            "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); let m = HashMap::new(); } }",
            &all_rules(),
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
