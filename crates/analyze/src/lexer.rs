//! A hand-rolled token-level Rust lexer.
//!
//! The analyzer needs token streams with line numbers plus the comment
//! text (for `adt-allow` markers) — not a full AST. Lexing by hand keeps
//! the crate std-only so it builds under the offline devstub harness
//! where `syn`/`proc-macro2` are unavailable. The lexer is intentionally
//! forgiving: on input it cannot make sense of it emits punctuation
//! tokens and moves on, because a lint pass must never be the thing that
//! fails the build on exotic-but-valid syntax.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (`42`, `0x1f`, `1.5e3`).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`{`, `[`, `.`, `#`, …).
    Punct,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes() == [ch as u8]
    }
}

/// One comment (line or block) with the line it starts on. Text excludes
/// the delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn slice(&self, start: usize) -> &'a [u8] {
        &self.bytes[start..self.pos]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `source` into tokens and comments. Never fails; unrecognized
/// bytes become punctuation tokens.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos + 2;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&cur.bytes[start..cur.pos]).into_owned(),
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1usize;
                let mut end = cur.pos;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            end = cur.pos;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => {
                            end = cur.pos;
                            break;
                        }
                    }
                }
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&cur.bytes[start..end]).into_owned(),
                });
            }
            b'"' => {
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => lex_quote(&mut cur, &mut out, line),
            b'r' | b'b' if starts_raw_or_byte_literal(&cur) => {
                lex_prefixed_literal(&mut cur, &mut out, line);
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(cur.slice(start)).into_owned(),
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                let start = cur.pos;
                cur.bump();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c)
                        || (c == b'.' && cur.peek_at(1).is_some_and(|n| n.is_ascii_digit()))
                    {
                        cur.bump();
                    } else if (c == b'+' || c == b'-')
                        && matches!(cur.bytes.get(cur.pos - 1), Some(b'e') | Some(b'E'))
                    {
                        // Exponent sign inside `1e-3`.
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    text: String::from_utf8_lossy(cur.slice(start)).into_owned(),
                    line,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
            }
        }
    }
    out
}

/// At a `r` or `b`: is this the start of a raw string, byte string,
/// byte char, or raw identifier (rather than a plain identifier)?
fn starts_raw_or_byte_literal(cur: &Cursor) -> bool {
    let b = cur.peek();
    match (b, cur.peek_at(1)) {
        (Some(b'r'), Some(b'"')) | (Some(b'b'), Some(b'"')) | (Some(b'b'), Some(b'\'')) => true,
        (Some(b'r'), Some(b'#')) => {
            // `r#"…"#` raw string or `r#ident` raw identifier.
            matches!(cur.peek_at(2), Some(b'"') | Some(b'#')) || {
                // r#ident — treated below as raw ident, still handled here.
                cur.peek_at(2).is_some_and(is_ident_start)
            }
        }
        (Some(b'b'), Some(b'r')) => matches!(cur.peek_at(2), Some(b'"') | Some(b'#')),
        _ => false,
    }
}

fn lex_prefixed_literal(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    // Consume the prefix letters (`r`, `b`, or `br`).
    let first = cur.bump();
    if first == Some(b'b') && cur.peek() == Some(b'r') {
        cur.bump();
    }
    if cur.peek() == Some(b'\'') {
        // b'…' byte char.
        cur.bump();
        if cur.peek() == Some(b'\\') {
            cur.bump();
            cur.bump();
        } else {
            cur.bump();
        }
        if cur.peek() == Some(b'\'') {
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokKind::Char,
            text: String::new(),
            line,
        });
        return;
    }
    // Count `#`s for raw strings; a raw identifier has ident chars after `#`.
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if hashes == 1 && cur.peek().is_some_and(is_ident_start) && first == Some(b'r') {
        // r#ident raw identifier.
        let start = cur.pos;
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokKind::Ident,
            text: String::from_utf8_lossy(cur.slice(start)).into_owned(),
            line,
        });
        return;
    }
    if cur.peek() == Some(b'"') {
        cur.bump();
        if hashes == 0 && first == Some(b'b') {
            // b"…" is escape-processed like a normal string.
            lex_string_body(cur);
        } else if hashes == 0 {
            // r"…": no escapes, ends at the first quote.
            while let Some(c) = cur.bump() {
                if c == b'"' {
                    break;
                }
            }
        } else {
            // r#…#"…"#…#: ends at `"` followed by `hashes` hashes.
            'outer: while let Some(c) = cur.bump() {
                if c == b'"' {
                    let mut seen = 0usize;
                    while seen < hashes {
                        if cur.peek() == Some(b'#') {
                            cur.bump();
                            seen += 1;
                        } else {
                            continue 'outer;
                        }
                    }
                    break;
                }
            }
        }
        out.tokens.push(Token {
            kind: TokKind::Str,
            text: String::new(),
            line,
        });
    } else {
        // `r` or `b` was a plain identifier after all; emit it and let the
        // `#`s (already consumed) go missing — harmless for linting.
        out.tokens.push(Token {
            kind: TokKind::Ident,
            text: if first == Some(b'b') { "b" } else { "r" }.to_string(),
            line,
        });
    }
}

fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    lex_string_body(cur);
}

fn lex_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// At a `'`: char literal or lifetime?
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    cur.bump(); // the quote
    match (cur.peek(), cur.peek_at(1)) {
        (Some(b'\\'), _) => {
            // Escaped char literal: consume to the closing quote.
            cur.bump();
            cur.bump();
            while let Some(c) = cur.peek() {
                cur.bump();
                if c == b'\'' {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Char,
                text: String::new(),
                line,
            });
        }
        (Some(c), Some(b'\'')) if c != b'\'' => {
            // 'x' plain char literal.
            cur.bump();
            cur.bump();
            out.tokens.push(Token {
                kind: TokKind::Char,
                text: String::new(),
                line,
            });
        }
        (Some(c), _) if is_ident_start(c) => {
            // 'lifetime
            let start = cur.pos;
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokKind::Lifetime,
                text: String::from_utf8_lossy(cur.slice(start)).into_owned(),
                line,
            });
        }
        _ => {
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: "'".to_string(),
                line,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_keywords_numbers() {
        let toks = kinds("fn foo(x: u32) -> u32 { x + 0x1f }");
        assert!(toks.contains(&(TokKind::Ident, "fn".into())));
        assert!(toks.contains(&(TokKind::Ident, "foo".into())));
        assert!(toks.contains(&(TokKind::Num, "0x1f".into())));
    }

    #[test]
    fn float_and_exponent_literals_stay_single_tokens() {
        let toks = kinds("let x = 1.5e-3 + 2.0;");
        assert!(toks.contains(&(TokKind::Num, "1.5e-3".into())));
        assert!(toks.contains(&(TokKind::Num, "2.0".into())));
    }

    #[test]
    fn range_is_not_swallowed_by_number() {
        let toks = kinds("0..len");
        assert_eq!(toks[0], (TokKind::Num, "0".into()));
        assert!(toks.contains(&(TokKind::Ident, "len".into())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Char).count(),
            2,
            "{toks:?}"
        );
    }

    #[test]
    fn strings_raw_strings_and_bytes() {
        let toks =
            kinds(r####"let a = "hi \" there"; let b = r#"raw "x" body"#; let c = b"by";"####);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 3);
        // Nothing inside the strings leaked out as identifiers.
        assert!(!toks.contains(&(TokKind::Ident, "raw".into())));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lx = lex("let a = 1; // trailing note\n/* block\nspanning */ let b = 2;\n// last");
        assert_eq!(lx.comments.len(), 3);
        assert_eq!(lx.comments[0].line, 1);
        assert_eq!(lx.comments[0].text.trim(), "trailing note");
        assert_eq!(lx.comments[1].line, 2);
        assert_eq!(lx.comments[2].line, 4);
        // Tokens after the block comment carry the right line.
        let b = lx.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.tokens.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokKind::Ident, "type".into())));
    }

    #[test]
    fn lone_r_and_b_are_identifiers() {
        let toks = kinds("let r = b + 1;");
        assert!(toks.contains(&(TokKind::Ident, "r".into())));
        assert!(toks.contains(&(TokKind::Ident, "b".into())));
    }
}
