//! Stub parity: every `devstubs/<crate>` must export the symbols the
//! workspace imports from the real crate, so the offline harness
//! (`scripts/offline_check.sh`) cannot silently rot as new imports land.
//!
//! The check is resolution-shaped but deliberately conservative: a path
//! `crate::a::b::c` is walked segment by segment through the stub's
//! module tree; the walk **accepts** as soon as it reaches a non-module
//! export (`b` a struct → `c` is an associated item we cannot see) or a
//! module marked *open* (it contains a glob re-export). Only a segment
//! missing from a closed module is a finding.

use crate::lexer::{lex, TokKind, Token};
use crate::scopes::Braces;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One imported path: the crate name plus the following segments, and
/// where the import happens.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Import {
    pub krate: String,
    pub path: Vec<String>,
    pub file: String,
    pub line: u32,
}

/// A stub crate's module, as far as exports are concerned.
#[derive(Debug, Default)]
pub struct StubModule {
    exports: BTreeSet<String>,
    modules: BTreeMap<String, StubModule>,
    /// A glob re-export makes the export set unknowable; accept anything.
    open: bool,
}

/// Harvests `use` declarations and inline qualified paths that root at
/// one of `stub_crates` from a token stream.
pub fn collect_imports(
    file: &str,
    tokens: &[Token],
    stub_crates: &BTreeSet<String>,
    out: &mut Vec<Import>,
) {
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("use") {
            let mut paths = Vec::new();
            let end = parse_use_tree(tokens, i + 1, &mut Vec::new(), &mut paths);
            for (line, segs) in paths {
                if let Some((first, rest)) = segs.split_first() {
                    if stub_crates.contains(first) {
                        out.push(Import {
                            krate: first.clone(),
                            path: rest.to_vec(),
                            file: file.to_string(),
                            line,
                        });
                    }
                }
            }
            i = end;
            continue;
        }
        // Inline qualified path: `crossbeam::thread::scope(...)`.
        if t.kind == TokKind::Ident && stub_crates.contains(&t.text) {
            let at_path_start =
                i < 2 || !(tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':'));
            if at_path_start && is_path_sep(tokens, i + 1) {
                let mut segs = Vec::new();
                let mut j = i + 1;
                while is_path_sep(tokens, j)
                    && tokens.get(j + 2).map(|t| t.kind) == Some(TokKind::Ident)
                {
                    segs.push(tokens[j + 2].text.clone());
                    j += 3;
                }
                if !segs.is_empty() {
                    out.push(Import {
                        krate: t.text.clone(),
                        path: segs,
                        file: file.to_string(),
                        line: t.line,
                    });
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
}

fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
}

/// Parses a use-tree starting after `use` (or after a `::{` within one),
/// appending `(line, full_path)` rows. Returns the index after the tree.
fn parse_use_tree(
    tokens: &[Token],
    mut i: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<(u32, Vec<String>)>,
) -> usize {
    let depth_at_entry = prefix.len();
    let mut line = tokens.get(i).map_or(0, |t| t.line);
    while let Some(t) = tokens.get(i) {
        match (&t.kind, t.text.as_str()) {
            (TokKind::Ident, "as") => {
                // Rename: the source path is already recorded; skip the
                // new name.
                i += 2;
            }
            (TokKind::Ident, seg) => {
                line = t.line;
                prefix.push(seg.to_string());
                i += 1;
                if is_path_sep(tokens, i) {
                    i += 2;
                    if tokens.get(i).is_some_and(|t| t.is_punct('{')) {
                        i += 1;
                        // Each group entry recurses with this prefix.
                        loop {
                            i = parse_use_tree(tokens, i, prefix, out);
                            match tokens.get(i) {
                                Some(t) if t.is_punct(',') => i += 1,
                                Some(t) if t.is_punct('}') => {
                                    i += 1;
                                    break;
                                }
                                _ => break,
                            }
                        }
                        prefix.truncate(depth_at_entry);
                        return i;
                    }
                    continue;
                }
                // Terminal segment.
                out.push((line, prefix.clone()));
                prefix.truncate(depth_at_entry);
                // Skip a possible rename, then stop at , } or ;.
                while let Some(t) = tokens.get(i) {
                    if t.is_punct(',') || t.is_punct('}') || t.is_punct(';') {
                        break;
                    }
                    i += 1;
                }
                return i;
            }
            (TokKind::Punct, "*") => {
                prefix.push("*".to_string());
                out.push((line, prefix.clone()));
                prefix.truncate(depth_at_entry);
                return i + 1;
            }
            (TokKind::Punct, ";") | (TokKind::Punct, ",") | (TokKind::Punct, "}") => break,
            _ => {
                i += 1;
            }
        }
    }
    prefix.truncate(depth_at_entry);
    i
}

const ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "type", "const", "static", "union", "mod",
];

/// Builds the export tree of one stub crate from `src/lib.rs`.
pub fn build_stub_tree(crate_dir: &Path) -> std::io::Result<StubModule> {
    let lib = crate_dir.join("src").join("lib.rs");
    let source = std::fs::read_to_string(&lib)?;
    let mut root = StubModule::default();
    let mut macros = Vec::new();
    parse_module_source(&source, &crate_dir.join("src"), &mut root, &mut macros);
    for m in macros {
        root.exports.insert(m);
    }
    Ok(root)
}

fn parse_module_source(
    source: &str,
    dir: &Path,
    module: &mut StubModule,
    macros: &mut Vec<String>,
) {
    let lx = lex(source);
    let braces = Braces::build(&lx.tokens);
    parse_items(&lx.tokens, &braces, 0, lx.tokens.len(), dir, module, macros);
}

/// Walks the items in `tokens[start..end]` (one module body), recording
/// public exports into `module`. `macros` collects `#[macro_export]`
/// macro names, which always export at the crate root.
fn parse_items(
    tokens: &[Token],
    braces: &Braces,
    start: usize,
    end: usize,
    dir: &Path,
    module: &mut StubModule,
    macros: &mut Vec<String>,
) {
    let mut i = start;
    let mut macro_export_pending = false;
    while i < end {
        let t = &tokens[i];
        // Attributes: note #[macro_export], skip the rest.
        if t.is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            if let Some(e) = braces.matching(i + 1) {
                if tokens[i + 2..e].iter().any(|t| t.is_ident("macro_export")) {
                    macro_export_pending = true;
                }
                i = e + 1;
                continue;
            }
        }
        if t.is_ident("macro_rules") {
            if macro_export_pending {
                if let Some(name) = tokens.get(i + 2) {
                    macros.push(name.text.clone());
                }
            }
            macro_export_pending = false;
            i = skip_item(tokens, braces, i + 1, end);
            continue;
        }
        if !t.is_ident("pub") {
            // Private item (or stray token): skip to its end.
            if t.kind == TokKind::Ident
                && (ITEM_KEYWORDS.contains(&t.text.as_str()) || t.text == "use" || t.text == "impl")
            {
                i = skip_item(tokens, braces, i + 1, end);
            } else {
                i += 1;
            }
            continue;
        }
        // `pub` — maybe restricted: pub(crate)/pub(super) are not
        // visible to the workspace.
        let mut j = i + 1;
        let mut restricted = false;
        if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            restricted = true;
            j = braces.matching(j).map_or(j + 1, |e| e + 1);
        }
        let Some(kw) = tokens.get(j) else { break };
        if restricted {
            i = skip_item(tokens, braces, j, end);
            continue;
        }
        match kw.text.as_str() {
            "mod" => {
                let Some(name) = tokens.get(j + 1) else { break };
                let name = name.text.clone();
                module.exports.insert(name.clone());
                let child = module.modules.entry(name.clone()).or_default();
                match tokens.get(j + 2) {
                    Some(t) if t.is_punct('{') => {
                        let close = braces.matching(j + 2).unwrap_or(end);
                        parse_items(
                            tokens,
                            braces,
                            j + 3,
                            close,
                            &dir.join(&name),
                            child,
                            macros,
                        );
                        i = close + 1;
                    }
                    _ => {
                        // `pub mod name;` — module in its own file.
                        for cand in [
                            dir.join(format!("{name}.rs")),
                            dir.join(&name).join("mod.rs"),
                        ] {
                            if let Ok(src) = std::fs::read_to_string(&cand) {
                                parse_module_source(&src, &dir.join(&name), child, macros);
                                break;
                            }
                        }
                        i = skip_item(tokens, braces, j + 1, end);
                    }
                }
            }
            "use" => {
                // `pub use path::{A, B as C, *};` — re-exports. The
                // exported name is the rename when present, else the
                // terminal segment; a glob opens the module.
                let mut k = j + 1;
                let item_end = skip_item(tokens, braces, j + 1, end);
                while k < item_end {
                    let t = &tokens[k];
                    if t.is_punct('*') {
                        module.open = true;
                    }
                    if t.is_ident("as") {
                        // Rename: drop the previously recorded source
                        // name, record the rename.
                        if let Some(prev) = tokens.get(k.wrapping_sub(1)) {
                            module.exports.remove(&prev.text);
                        }
                        if let Some(new) = tokens.get(k + 1) {
                            module.exports.insert(new.text.clone());
                        }
                        k += 2;
                        continue;
                    }
                    if t.kind == TokKind::Ident && t.text != "self" {
                        // Terminal if the next token is not `::`.
                        if !is_path_sep(tokens, k + 1) {
                            module.exports.insert(t.text.clone());
                        }
                    }
                    k += 1;
                }
                i = item_end;
            }
            kw_text if ITEM_KEYWORDS.contains(&kw_text) => {
                if let Some(name) = tokens.get(j + 1) {
                    if name.kind == TokKind::Ident {
                        module.exports.insert(name.text.clone());
                    }
                }
                i = skip_item(tokens, braces, j + 1, end);
            }
            _ => {
                i = j + 1;
            }
        }
        macro_export_pending = false;
    }
}

/// Advances past the current item: to just after the first top-level `;`
/// or matched `{…}` body. A `{…}` ends the item (fn/struct/trait bodies);
/// `(...)`/`[...]` groups are stepped over (tuple structs, array types —
/// whose `;` must not end the item early). A stray `;` left behind by an
/// initializer like `static X: u8 = { 1 };` is harmlessly skipped by the
/// caller's item loop.
fn skip_item(tokens: &[Token], braces: &Braces, from: usize, end: usize) -> usize {
    let mut i = from;
    while i < end {
        let t = &tokens[i];
        if t.is_punct(';') {
            return i + 1;
        }
        if t.is_punct('{') {
            return braces.matching(i).map_or(i + 1, |e| e + 1);
        }
        if t.is_punct('(') || t.is_punct('[') {
            i = braces.matching(i).map_or(i + 1, |e| e + 1);
            continue;
        }
        i += 1;
    }
    end
}

/// Checks `imports` against the stub trees; returns findings for paths a
/// stub cannot satisfy.
pub fn check(imports: &[Import], stubs: &BTreeMap<String, StubModule>) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for imp in imports {
        let Some(root) = stubs.get(&imp.krate) else {
            continue;
        };
        if resolves(root, &imp.path) {
            continue;
        }
        let full = format!("{}::{}", imp.krate, imp.path.join("::"));
        if !seen.insert((imp.file.clone(), imp.line, full.clone())) {
            continue;
        }
        out.push(Finding {
            file: imp.file.clone(),
            line: imp.line,
            rule: "stub-parity",
            message: format!(
                "`{}` is imported here but devstubs/{} does not export it; \
                 the offline harness will fail to build",
                full, imp.krate
            ),
        });
    }
    out
}

fn resolves(root: &StubModule, path: &[String]) -> bool {
    let mut module = root;
    for seg in path {
        if module.open || seg == "*" || seg == "self" {
            return true;
        }
        if let Some(child) = module.modules.get(seg) {
            module = child;
            continue;
        }
        // A non-module export ends the walk: deeper segments are
        // associated items or enum variants we cannot verify.
        return module.exports.contains(seg);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imports_of(src: &str, crates: &[&str]) -> Vec<Import> {
        let lx = lex(src);
        let set: BTreeSet<String> = crates.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        collect_imports("t.rs", &lx.tokens, &set, &mut out);
        out
    }

    fn paths(imports: &[Import]) -> Vec<String> {
        imports
            .iter()
            .map(|i| format!("{}::{}", i.krate, i.path.join("::")))
            .collect()
    }

    #[test]
    fn use_trees_flatten() {
        let got = paths(&imports_of(
            "use rand::{Rng, SeedableRng};\nuse rand::rngs::StdRng;\nuse std::io::Read;",
            &["rand"],
        ));
        assert_eq!(
            got,
            vec!["rand::Rng", "rand::SeedableRng", "rand::rngs::StdRng"]
        );
    }

    #[test]
    fn nested_groups_renames_and_globs() {
        let got = paths(&imports_of(
            "use crossbeam::{thread::{scope as cb_scope, Scope}, channel::*};",
            &["crossbeam"],
        ));
        assert_eq!(
            got,
            vec![
                "crossbeam::thread::scope",
                "crossbeam::thread::Scope",
                "crossbeam::channel::*"
            ]
        );
    }

    #[test]
    fn inline_qualified_paths_collected() {
        let got = paths(&imports_of(
            "fn f() { crossbeam::thread::scope(|s| {}).unwrap(); }",
            &["crossbeam"],
        ));
        assert_eq!(got, vec!["crossbeam::thread::scope"]);
    }

    fn stub_from(src: &str) -> StubModule {
        let mut m = StubModule::default();
        let mut macros = Vec::new();
        parse_module_source(src, Path::new("/nonexistent"), &mut m, &mut macros);
        for mac in macros {
            m.exports.insert(mac);
        }
        m
    }

    #[test]
    fn stub_exports_resolve() {
        let stub = stub_from(
            "pub trait Rng {}\npub mod rngs { pub struct StdRng; }\n\
             pub use rngs::StdRng;\n#[macro_export] macro_rules! mk { () => {} }\n\
             pub(crate) fn hidden() {}\nfn private() {}",
        );
        assert!(resolves(&stub, &["Rng".into()]));
        assert!(resolves(&stub, &["rngs".into(), "StdRng".into()]));
        assert!(resolves(&stub, &["StdRng".into()]));
        assert!(resolves(&stub, &["mk".into()]));
        assert!(!resolves(&stub, &["hidden".into()]));
        assert!(!resolves(&stub, &["private".into()]));
        assert!(!resolves(&stub, &["Missing".into()]));
        // Associated items beyond a resolved type are accepted.
        assert!(resolves(
            &stub,
            &["rngs".into(), "StdRng".into(), "from_seed".into()]
        ));
    }

    #[test]
    fn glob_reexport_opens_module() {
        let stub = stub_from("pub use inner::*;\nmod inner { pub fn anything() {} }");
        assert!(resolves(&stub, &["whatever".into()]));
    }

    #[test]
    fn check_reports_missing_export() {
        let mut stubs = BTreeMap::new();
        stubs.insert("foo".to_string(), stub_from("pub fn real() {}"));
        let imports = imports_of("use foo::{real, missing};", &["foo"]);
        let f = check(&imports, &stubs);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("foo::missing"), "{}", f[0].message);
    }
}
