//! Inline suppression markers.
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above, of the form `adt-allow` + `(<rule>): <reason>`. The
//! reason is mandatory; reason-less and unused (stale) markers are
//! themselves findings under the `allow-audit` rule, so suppressions
//! stay justified and current.

use crate::lexer::Comment;

pub const RULES: [&str; 7] = [
    "determinism",
    "panic-safety",
    "lock-discipline",
    "unchecked-arithmetic",
    "error-path",
    "allow-audit",
    "stub-parity",
];

/// One parsed marker.
#[derive(Debug)]
pub struct Marker {
    pub line: u32,
    pub rule: String,
    pub reason: String,
    /// Set when some finding was suppressed by this marker.
    pub used: bool,
}

/// Extracts markers from a file's comments. `skip_lines` holds line
/// ranges of test-gated code, where rules do not run and markers would
/// always read as stale; markers there are ignored entirely.
pub fn collect_markers(comments: &[Comment], skip_lines: &[(u32, u32)]) -> Vec<Marker> {
    let mut out = Vec::new();
    for c in comments {
        if skip_lines.iter().any(|&(a, b)| a <= c.line && c.line <= b) {
            continue;
        }
        let Some(pos) = c.text.find("adt-allow(") else {
            continue;
        };
        let rest = &c.text[pos + "adt-allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.push(Marker {
            line: c.line,
            rule,
            reason,
            used: false,
        });
    }
    out
}

/// Finds a marker covering `(rule, line)`: same line (trailing comment)
/// or the line directly above. Returns its index.
pub fn find_marker(markers: &[Marker], rule: &str, line: u32) -> Option<usize> {
    markers
        .iter()
        .position(|m| m.rule == rule && (m.line == line || m.line + 1 == line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn markers_parse_rule_and_reason() {
        let src = "let a = 1; // adt-allow(determinism): timing feeds stats only\n// adt-allow(panic-safety):\n// adt-allow(nope) missing colon\n// plain comment";
        let lx = lex(src);
        let ms = collect_markers(&lx.comments, &[]);
        assert_eq!(ms.len(), 3);
        assert_eq!(ms[0].rule, "determinism");
        assert_eq!(ms[0].reason, "timing feeds stats only");
        assert_eq!(ms[0].line, 1);
        assert_eq!(ms[1].rule, "panic-safety");
        assert_eq!(ms[1].reason, "");
        assert_eq!(ms[2].rule, "nope");
        assert_eq!(ms[2].reason, "");
    }

    #[test]
    fn marker_lookup_covers_same_and_previous_line() {
        let src = "// adt-allow(determinism): above\nlet a = 1;\nlet b = 2; // adt-allow(determinism): trailing";
        let lx = lex(src);
        let ms = collect_markers(&lx.comments, &[]);
        assert!(find_marker(&ms, "determinism", 2).is_some());
        assert_eq!(find_marker(&ms, "determinism", 3), Some(1));
        assert!(find_marker(&ms, "panic-safety", 2).is_none());
        assert!(find_marker(&ms, "determinism", 5).is_none());
    }

    #[test]
    fn markers_in_test_spans_are_ignored() {
        let src = "// adt-allow(determinism): in tests\nlet a = 1;";
        let lx = lex(src);
        let ms = collect_markers(&lx.comments, &[(1, 2)]);
        assert!(ms.is_empty());
    }
}
