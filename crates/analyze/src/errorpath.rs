//! Error-path: discarded `Result`s in the serve / learn / online scopes.
//!
//! The atomic model-swap story (PR 7) depends on errors surfacing: a
//! `save_model` failure that vanishes into `let _ =` leaves the registry
//! serving a stale model with no trace, and a swallowed send error hides
//! a dead learner thread. In files under
//! [`FileClass::errorpath_scope`](crate::FileClass) this rule flags:
//!
//! - **`let _ = <expr>;`** where the expression makes at least one call
//!   that could return a `Result`. The call graph refines this
//!   interprocedurally: when *every* callee in the expression resolves
//!   to a workspace function and *none* declares a `Result` return, the
//!   discard is provably not an error path and stays silent; when a
//!   known callee does return `Result`, the message cites its
//!   definition site. Unresolved calls (std / method calls) are
//!   conservatively flagged — intentional discards carry a justified
//!   `adt-allow` + `(error-path): <reason>` marker (spelled split here
//!   so this comment is not itself a marker).
//! - **statement-final `.ok();`** — converting to `Option` and dropping
//!   it is the same discard with extra steps. `let x = f().ok();` and
//!   `return f().ok();` consume the option and are fine.
//!
//! Macro invocations (`write!`, `log!`) are not treated as calls — the
//! hand-rolled serve JSON writer's `let _ = write!(buf, …)` into a
//! `String` is genuinely infallible.

use crate::callgraph::{call_at, CallGraph, CallSite};
use crate::lexer::Token;
use crate::scopes::{in_spans, Braces};
use crate::{FileClass, RawFinding};

pub fn error_path(
    tokens: &[Token],
    braces: &Braces,
    skip: &[(usize, usize)],
    class: &FileClass,
    graph: &CallGraph,
    out: &mut Vec<RawFinding>,
) {
    if !class.errorpath_scope {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_spans(skip, i) {
            continue;
        }
        // `let _ = <expr>;`
        if t.is_ident("let")
            && tokens.get(i + 1).is_some_and(|n| n.is_ident("_"))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('='))
        {
            discarded_binding(tokens, braces, graph, i, out);
        }
        // statement-final `.ok();`
        if t.is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_ident("ok"))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('('))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct(')'))
            && tokens.get(i + 4).is_some_and(|n| n.is_punct(';'))
            && !statement_consumes(tokens, i)
        {
            out.push(RawFinding {
                rule: "error-path",
                line: tokens[i + 1].line,
                message: "statement-final `.ok();` discards the error; handle or log \
                          it, or justify the discard"
                    .to_string(),
            });
        }
    }
}

/// Handles one `let _ = …;` starting at the `let` token at `i`.
fn discarded_binding(
    tokens: &[Token],
    braces: &Braces,
    graph: &CallGraph,
    i: usize,
    out: &mut Vec<RawFinding>,
) {
    let expr_start = i + 3;
    let end = statement_end(tokens, braces, expr_start);
    let calls: Vec<CallSite> = (expr_start..end)
        .filter_map(|j| call_at(tokens, j))
        .collect();
    if calls.is_empty() {
        return;
    }
    let mut known_result: Option<(&CallSite, &(String, u32))> = None;
    let mut any_unknown = false;
    for c in &calls {
        match graph.returns(&c.callee, c.dotted) {
            Some((true, def)) => {
                if known_result.is_none() {
                    known_result = Some((c, def));
                }
            }
            Some((false, _)) => {}
            None => any_unknown = true,
        }
    }
    if let Some((c, (file, line))) = known_result {
        out.push(RawFinding {
            rule: "error-path",
            line: tokens[i].line,
            message: format!(
                "`let _ =` discards the `Result` of `{}` (defined at {}:{}); \
                 handle or log the error",
                c.callee, file, line
            ),
        });
    } else if any_unknown {
        out.push(RawFinding {
            rule: "error-path",
            line: tokens[i].line,
            message: "`let _ =` discards a call result that may be a `Result`; \
                      bind and handle the error, or justify the discard"
                .to_string(),
        });
    }
    // else: every callee is a known non-Result workspace fn — clean.
}

/// Index of the `;` ending the statement that starts at `from`, staying
/// at the statement's own brace level so `;`s inside closure bodies and
/// nested blocks don't end it early.
fn statement_end(tokens: &[Token], braces: &Braces, from: usize) -> usize {
    let level = braces.enclosing_brace(from.saturating_sub(1));
    (from..tokens.len())
        .find(|&j| tokens[j].is_punct(';') && braces.enclosing_brace(j) == level)
        .unwrap_or(tokens.len())
}

/// True when the statement containing the `.` at `i` starts with `let`
/// or `return` — the produced `Option` is consumed, not dropped.
fn statement_consumes(tokens: &[Token], i: usize) -> bool {
    let mut s = i;
    while s > 0 {
        let t = &tokens[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    tokens
        .get(s)
        .is_some_and(|t| t.is_ident("let") || t.is_ident("return"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::FileFns;
    use crate::lexer::lex;
    use crate::scopes::{fn_spans, test_spans, Braces};

    fn run(src: &str) -> Vec<RawFinding> {
        let lx = lex(src);
        let braces = Braces::build(&lx.tokens);
        let skip = test_spans(&lx.tokens, &braces);
        let fns = fn_spans(&lx.tokens, &braces);
        let graph = CallGraph::build(&[FileFns {
            rel: "f.rs",
            tokens: &lx.tokens,
            skip: &skip,
            fns: &fns,
        }]);
        let class = FileClass {
            errorpath_scope: true,
            ..FileClass::default()
        };
        let mut out = Vec::new();
        error_path(&lx.tokens, &braces, &skip, &class, &graph, &mut out);
        out
    }

    #[test]
    fn discarded_known_result_cites_definition() {
        let f = run("fn save(v: u32) -> io::Result<()> { Ok(()) }\n\
             fn checkpoint() { let _ = save(3); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`save`"), "{}", f[0].message);
        assert!(f[0].message.contains("f.rs:1"), "{}", f[0].message);
    }

    #[test]
    fn discarded_known_infallible_is_clean() {
        let f = run("fn version() -> u32 { 3 }\n\
             fn tick() { let _ = version(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn discarded_unknown_call_flagged() {
        let f = run("fn f(&self) { let _ = self.tx.send(7); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("may be a `Result`"));
    }

    #[test]
    fn discarded_macro_is_clean() {
        let f = run("fn f(buf: &mut String) { let _ = write!(buf, \"x\"); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn discarded_plain_value_is_clean() {
        let f = run("fn f(x: u32) { let _ = x; let _ = (x, 3); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bare_ok_flagged_bound_ok_not() {
        let f = run("fn f(&self) { self.save().ok(); let x = self.load().ok(); \
             if x.is_none() { return self.load().ok(); } }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains(".ok();"));
    }

    #[test]
    fn semicolons_inside_closures_do_not_end_statement() {
        let f = run("fn save() -> io::Result<()> { Ok(()) }\n\
             fn f() { let _ = std::panic::catch_unwind(|| { tick(); save() }); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`save`"));
    }

    #[test]
    fn out_of_scope_is_silent() {
        let lx = lex("fn f(&self) { let _ = self.tx.send(7); }");
        let braces = Braces::build(&lx.tokens);
        let skip = test_spans(&lx.tokens, &braces);
        let graph = CallGraph::build(&[]);
        let mut out = Vec::new();
        error_path(
            &lx.tokens,
            &braces,
            &skip,
            &FileClass::default(),
            &graph,
            &mut out,
        );
        assert!(out.is_empty());
    }
}
