//! CLI for the repo-invariant lint engine.
//!
//!     cargo run -p adt-analyze -- [--deny] [--json] [--timings] [--root DIR] [paths…]
//!
//! Findings print as `file:line: rule: message`. `--deny` exits non-zero
//! when any finding remains (the CI gate); `--json` emits the stable
//! machine-readable report instead; `--timings` appends a per-pass
//! wall-clock JSON object to stderr (diagnostic — kept out of the stable
//! report so baseline diffs stay byte-identical); `paths` restrict the
//! run to files whose repo-relative path contains one of the given
//! substrings.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: adt-analyze [--deny] [--json] [--timings] [--root DIR] [paths...]";

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut timings = false;
    let mut root = PathBuf::from(".");
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--timings" => timings = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => only.push(path.to_string()),
        }
    }

    let analysis = match adt_analyze::analyze_workspace(&root, &only) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("adt-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", analysis.to_json());
    } else {
        for f in &analysis.findings {
            println!("{f}");
        }
        eprintln!(
            "adt-analyze: {} finding{} in {} file{} scanned",
            analysis.findings.len(),
            if analysis.findings.len() == 1 {
                ""
            } else {
                "s"
            },
            analysis.files_scanned,
            if analysis.files_scanned == 1 { "" } else { "s" },
        );
    }

    if timings {
        eprint!("{}", analysis.timings_json());
    }

    if deny && !analysis.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
