//! SVDD: support vector data description (Tax & Duin), approximated over
//! the alignment pattern distance of §4.2.
//!
//! The exact SVDD ball requires quadratic programming; over a discrete
//! metric the 1-medoid ball is the standard combinatorial surrogate: the
//! center is the value minimizing weighted total distance, the radius
//! minimizes the description cost `cost(r) = r + C·(fraction outside)`,
//! and values outside the ball are outliers ranked by their distance to
//! the center.

use crate::traits::{finalize_predictions, Detector, Prediction};
use adt_corpus::Column;
use adt_patterns::{crude_generalize, normalized_pattern_distance, Pattern};

/// The SVDD detector.
#[derive(Debug, Clone)]
pub struct SvddDetector {
    /// Trade-off constant `C` between ball radius and excluded mass.
    pub cost: f64,
    /// Maximum predictions per column.
    pub limit: usize,
}

impl Default for SvddDetector {
    fn default() -> Self {
        SvddDetector {
            cost: 4.0,
            limit: 16,
        }
    }
}

impl Detector for SvddDetector {
    fn name(&self) -> &'static str {
        "SVDD"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let values = crate::traits::value_counts(column);
        let total: usize = values.iter().map(|&(_, c)| c).sum();
        if values.len() < 3 {
            return Vec::new();
        }
        let patterns: Vec<Pattern> = values.iter().map(|(v, _)| crude_generalize(v)).collect();
        let n = patterns.len();
        // Pairwise distances.
        let mut dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = normalized_pattern_distance(&patterns[i], &patterns[j]);
                dist[i][j] = d;
                dist[j][i] = d;
            }
        }
        // Medoid: minimize count-weighted total distance.
        let medoid = (0..n)
            .min_by(|&a, &b| {
                let da: f64 = (0..n).map(|j| dist[a][j] * values[j].1 as f64).sum();
                let db: f64 = (0..n).map(|j| dist[b][j] * values[j].1 as f64).sum();
                da.total_cmp(&db)
            })
            .expect("non-empty");
        // Radius: minimize r + C * outside_fraction over candidate radii.
        let mut radii: Vec<f64> = (0..n).map(|j| dist[medoid][j]).collect();
        radii.sort_by(f64::total_cmp);
        radii.dedup();
        let mut best_r = *radii.last().expect("non-empty");
        let mut best_cost = f64::INFINITY;
        for &r in &radii {
            let outside: usize = (0..n)
                .filter(|&j| dist[medoid][j] > r)
                .map(|j| values[j].1)
                .sum();
            let c = r + self.cost * outside as f64 / total as f64;
            if c < best_cost {
                best_cost = c;
                best_r = r;
            }
        }
        let preds: Vec<Prediction> = (0..n)
            .filter(|&j| dist[medoid][j] > best_r)
            .map(|j| Prediction {
                value: values[j].0.clone(),
                confidence: dist[medoid][j],
            })
            .collect();
        finalize_predictions(preds, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn outlier_falls_outside_ball() {
        let mut vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        vals.push("????????".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = SvddDetector::default().detect(&col);
        assert_eq!(preds[0].value, "????????");
    }

    #[test]
    fn tight_cluster_has_no_outliers() {
        let vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        let col = Column::new(vals, SourceTag::Csv);
        assert!(SvddDetector::default().detect(&col).is_empty());
    }

    #[test]
    fn medoid_resists_minority_cluster() {
        // 15 dates + 5 words: the medoid must sit in the date cluster and
        // the words fall outside.
        let mut vals: Vec<String> = (0..15).map(|i| format!("20{i:02}-01-01")).collect();
        for w in ["apple", "pear", "plum", "fig", "kiwi"] {
            vals.push(w.to_string());
        }
        let col = Column::new(vals, SourceTag::Csv);
        let preds = SvddDetector::default().detect(&col);
        assert!(!preds.is_empty());
        assert!(preds.iter().all(|p| !p.value.contains('-')));
    }

    #[test]
    fn tiny_columns_silent() {
        let col = Column::from_strs(&["a", "b"], SourceTag::Csv);
        assert!(SvddDetector::default().detect(&col).is_empty());
    }
}
