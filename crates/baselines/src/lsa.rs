//! LSA: entropy-based local-search outlier detection (He, Deng & Xu).
//!
//! Entropy of the column's pattern distribution measures its regularity;
//! outliers are the values whose removal most reduces that entropy. The
//! local-search procedure greedily removes one value at a time, scoring
//! each removal by its entropy reduction.

use crate::traits::{finalize_predictions, Detector, Prediction};
use adt_corpus::Column;
use adt_patterns::crude_generalize;
use std::collections::BTreeMap;

/// Shannon entropy of a multiset given as (count) values, with total `n`.
fn entropy(counts: impl Iterator<Item = usize>, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    counts
        .filter(|&c| c > 0)
        .map(|c| {
            let p = c as f64 / n as f64;
            -p * p.log2()
        })
        .sum()
}

/// The LSA detector.
#[derive(Debug, Clone)]
pub struct LsaDetector {
    /// Maximum number of greedy removals (candidate outliers).
    pub max_outliers: usize,
    /// Maximum predictions per column.
    pub limit: usize,
}

impl Default for LsaDetector {
    fn default() -> Self {
        LsaDetector {
            max_outliers: 8,
            limit: 16,
        }
    }
}

impl Detector for LsaDetector {
    fn name(&self) -> &'static str {
        "LSA"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let values = crate::traits::value_counts(column);
        let mut total: usize = values.iter().map(|&(_, c)| c).sum();
        if total < 4 {
            return Vec::new();
        }
        // Pattern histogram.
        let keys: Vec<String> = values
            .iter()
            .map(|(v, _)| crude_generalize(v).to_string())
            .collect();
        let mut hist: BTreeMap<&str, usize> = BTreeMap::new();
        for (k, (_, c)) in keys.iter().zip(&values) {
            *hist.entry(k.as_str()).or_insert(0) += c;
        }

        let mut removed: Vec<usize> = Vec::new();
        let mut preds = Vec::new();
        for _round in 0..self.max_outliers {
            let h_now = entropy(hist.values().copied(), total);
            if h_now == 0.0 {
                break;
            }
            // Find the single removal with the largest entropy drop per
            // removed cell.
            let mut best: Option<(usize, f64)> = None;
            for (i, (_, cnt)) in values.iter().enumerate() {
                if removed.contains(&i) {
                    continue;
                }
                let k = keys[i].as_str();
                let kc = hist[k];
                if kc < *cnt {
                    continue;
                }
                // Entropy after removing this value's cells.
                let n_after = total - cnt;
                let h_after = entropy(
                    hist.iter()
                        .map(|(&hk, &hc)| if hk == k { hc - cnt } else { hc }),
                    n_after,
                );
                let gain = h_now - h_after;
                let better = match best {
                    Some((_, g)) => gain > g,
                    None => true,
                };
                if better {
                    best = Some((i, gain));
                }
            }
            let Some((i, gain)) = best else { break };
            if gain <= 0.0 {
                break;
            }
            let (v, cnt) = &values[i];
            preds.push(Prediction {
                value: v.clone(),
                confidence: gain,
            });
            let k = keys[i].as_str();
            *hist.get_mut(k).expect("key present") -= cnt;
            total -= cnt;
            removed.push(i);
        }
        finalize_predictions(preds, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy([4usize].into_iter(), 4), 0.0);
        assert!((entropy([2usize, 2].into_iter(), 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn removal_of_outlier_reduces_entropy_most() {
        let mut vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        vals.push("oops!".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = LsaDetector::default().detect(&col);
        assert_eq!(preds[0].value, "oops!");
    }

    #[test]
    fn uniform_pattern_column_silent() {
        let vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        let col = Column::new(vals, SourceTag::Csv);
        assert!(LsaDetector::default().detect(&col).is_empty());
    }

    #[test]
    fn respects_max_outliers() {
        let vals: Vec<String> = (0..30)
            .map(|i| format!("{}!{}", "x".repeat(i % 7 + 1), i))
            .collect();
        let col = Column::new(vals, SourceTag::Csv);
        let det = LsaDetector {
            max_outliers: 3,
            limit: 16,
        };
        assert!(det.detect(&col).len() <= 3);
    }
}
