//! Linear: the linear-complexity deviation-detection framework of Arning,
//! Agrawal & Raghavan (KDD'96), instantiated with a dissimilarity function
//! over regular-expression-style patterns, plus the paper's LinearP
//! variant that first generalizes values with the tree classes.
//!
//! The framework scans the sequence, tracking a dissimilarity function
//! `D(I)` of the prefix; the *smoothing factor* of an item is
//! `SF(I_j) = C(I \ I_j) · (D(I) − D(I \ I_j))` — how much total
//! dissimilarity drops when the item is removed, scaled by the remaining
//! cardinality. Items with the largest smoothing factors form the
//! exception set.

use crate::traits::{finalize_predictions, Detector, Prediction};
use adt_corpus::Column;
use adt_patterns::{crude_generalize, normalized_pattern_distance, Language, Pattern};

/// Shared scan logic for Linear and LinearP.
///
/// The dissimilarity of a value set is the count-weighted mean pairwise
/// normalized pattern distance. The leave-one-out dissimilarities needed
/// for the smoothing factors are derived incrementally from per-row
/// distance sums, so the whole scan is O(d²) in the number of distinct
/// values rather than O(d³).
fn detect_with_patterns(
    values: &[(String, usize)],
    patterns: Vec<Pattern>,
    limit: usize,
) -> Vec<Prediction> {
    let counts: Vec<f64> = values.iter().map(|&(_, c)| c as f64).collect();
    let total: f64 = counts.iter().sum();
    if total < 3.0 {
        return Vec::new();
    }
    let n = patterns.len();
    // Weighted pairwise sums: S = Σ_{i<j} w_ij d_ij, W = Σ_{i<j} w_ij,
    // plus per-row partial sums for O(1) leave-one-out.
    let mut row_sum = vec![0.0f64; n]; // Σ_j w_ij d_ij for j != i
    let mut row_w = vec![0.0f64; n]; // Σ_j w_ij for j != i
    let mut s = 0.0;
    let mut w_total = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = normalized_pattern_distance(&patterns[i], &patterns[j]);
            let w = counts[i] * counts[j];
            s += d * w;
            w_total += w;
            row_sum[i] += d * w;
            row_sum[j] += d * w;
            row_w[i] += w;
            row_w[j] += w;
        }
    }
    if w_total == 0.0 || s == 0.0 {
        return Vec::new();
    }
    let d_full = s / w_total;
    let mut preds = Vec::new();
    for i in 0..n {
        let s_without = s - row_sum[i];
        let w_without = w_total - row_w[i];
        let d_without = if w_without > 0.0 {
            s_without / w_without
        } else {
            0.0
        };
        let remaining = total - counts[i];
        let sf = remaining * (d_full - d_without);
        if sf > 0.0 {
            preds.push(Prediction {
                value: values[i].0.clone(),
                confidence: sf,
            });
        }
    }
    finalize_predictions(preds, limit)
}

/// Linear over raw character sequences (the paper notes its
/// generalization is too coarse and it performs poorly — reproducing that
/// is intentional).
#[derive(Debug, Clone)]
pub struct LinearDetector {
    /// Maximum predictions per column.
    pub limit: usize,
}

impl Default for LinearDetector {
    fn default() -> Self {
        LinearDetector { limit: 16 }
    }
}

impl Detector for LinearDetector {
    fn name(&self) -> &'static str {
        "Linear"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let values = crate::traits::value_counts(column);
        let patterns: Vec<Pattern> = values
            .iter()
            .map(|(v, _)| Pattern::generalize(v, &Language::leaf()))
            .collect();
        detect_with_patterns(&values, patterns, self.limit)
    }
}

/// LinearP: Linear over tree-generalized patterns (`\D`, `\L`, …), the
/// paper's strengthened variant.
#[derive(Debug, Clone)]
pub struct LinearPDetector {
    /// Maximum predictions per column.
    pub limit: usize,
}

impl Default for LinearPDetector {
    fn default() -> Self {
        LinearPDetector { limit: 16 }
    }
}

impl Detector for LinearPDetector {
    fn name(&self) -> &'static str {
        "LinearP"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let values = crate::traits::value_counts(column);
        let patterns: Vec<Pattern> = values.iter().map(|(v, _)| crude_generalize(v)).collect();
        detect_with_patterns(&values, patterns, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn linearp_flags_the_deviant() {
        let mut vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        vals.push("totally different".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = LinearPDetector::default().detect(&col);
        assert_eq!(preds[0].value, "totally different");
    }

    #[test]
    fn homogeneous_patterns_silent_under_linearp() {
        // Distinct values, identical crude patterns: dissimilarity 0.
        let vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        let col = Column::new(vals, SourceTag::Csv);
        assert!(LinearPDetector::default().detect(&col).is_empty());
    }

    #[test]
    fn linear_flags_on_raw_characters() {
        // Raw Linear sees "1999" vs "2000"-style char differences, so even
        // same-pattern columns yield nonzero dissimilarity; the strongest
        // outlier must still rank first.
        let mut vals: Vec<String> = (0..20).map(|i| format!("{}", 1000 + i)).collect();
        vals.push("xxxxxxxxxxxx".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = LinearDetector::default().detect(&col);
        assert_eq!(preds[0].value, "xxxxxxxxxxxx");
    }

    #[test]
    fn deviant_has_maximal_smoothing_factor() {
        // The singleton deviant must out-score every regular value, even
        // when a second mildly different cluster exists.
        let mut vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        vals.extend((0..5).map(|i| format!("20{i:02}-01")));
        vals.push("!!deviant!!".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = LinearPDetector::default().detect(&col);
        assert_eq!(preds[0].value, "!!deviant!!");
        assert!(preds[0].confidence > 0.0);
    }

    #[test]
    fn tiny_columns_silent() {
        let col = Column::from_strs(&["a", "b"], SourceTag::Csv);
        assert!(LinearDetector::default().detect(&col).is_empty());
        assert!(LinearPDetector::default().detect(&col).is_empty());
    }
}
