//! Potter's Wheel: MDL-based pattern inference (Raman & Hellerstein).
//!
//! For each generalization granularity, values cluster by pattern; the
//! description length of the column is the cost of declaring the patterns
//! plus the cost of encoding every value given its pattern (residual
//! entropy of the generalized positions) plus the cost of naming each
//! value's pattern. The granularity with minimum total DL wins — the MDL
//! structure extraction of the original system. Values whose patterns have
//! low support under the winning granularity are flagged, ranked by the
//! fraction of values consistent with the dominant patterns (§4.2).
//!
//! This is by construction a *local* method: as the paper's Col-1/Col-2
//! examples show, it mispredicts when local regularity diverges from
//! global compatibility.

use crate::traits::{finalize_predictions, Detector, Prediction};
use adt_corpus::Column;
use adt_patterns::{crude::crude_language, Language, Pattern, Token};
use std::collections::HashMap;

/// Bits to encode one character under each tree node (log2 of the node's
/// character count).
fn residual_bits(t: Token) -> f64 {
    match t {
        Token::Literal(_) => 0.0,
        Token::Upper | Token::Lower => (26f64).log2(),
        Token::Letter => (52f64).log2(),
        Token::Digit => (10f64).log2(),
        Token::Symbol => (43f64).log2(),
        Token::Any => (95f64).log2(),
    }
}

/// Description cost of declaring one pattern: each run costs a token tag
/// (3 bits) plus a length byte; literal runs also spell the character.
fn pattern_decl_bits(p: &Pattern) -> f64 {
    p.runs()
        .iter()
        .map(|&(t, _)| {
            3.0 + 8.0
                + match t {
                    Token::Literal(_) => 7.0,
                    _ => 0.0,
                }
        })
        .sum()
}

/// Per-value encoding cost under its pattern.
fn value_bits(p: &Pattern) -> f64 {
    p.runs()
        .iter()
        .map(|&(t, n)| residual_bits(t) * n as f64)
        .sum()
}

/// Total MDL of a column under one language.
fn description_length(values: &[(&str, usize)], lang: &Language) -> (f64, HashMap<String, usize>) {
    // Cluster by pattern display string (stable key).
    let mut clusters: HashMap<String, (Pattern, usize)> = HashMap::new();
    let mut total_values = 0usize;
    for (v, cnt) in values {
        let p = Pattern::generalize(v, lang);
        let key = p.to_string();
        let e = clusters.entry(key).or_insert((p, 0));
        e.1 += cnt;
        total_values += cnt;
    }
    let k = clusters.len().max(1) as f64;
    let pattern_id_bits = k.log2().max(0.0);
    let mut dl = 0.0;
    let mut support: HashMap<String, usize> = HashMap::new();
    for (key, (p, cnt)) in &clusters {
        dl += pattern_decl_bits(p);
        dl += (*cnt as f64) * (value_bits(p) + pattern_id_bits);
        support.insert(key.clone(), *cnt);
    }
    let _ = total_values;
    (dl, support)
}

/// The Potter's Wheel detector.
#[derive(Debug, Clone)]
pub struct PotterWheelDetector {
    /// Patterns covering at least this fraction of cells are "structure";
    /// everything else is a candidate error.
    pub dominant_fraction: f64,
    /// Maximum predictions per column.
    pub limit: usize,
}

impl Default for PotterWheelDetector {
    fn default() -> Self {
        PotterWheelDetector {
            dominant_fraction: 0.2,
            limit: 16,
        }
    }
}

impl PotterWheelDetector {
    /// The candidate granularities the MDL search ranges over.
    fn granularities() -> Vec<Language> {
        vec![
            Language::leaf(),
            crude_language(),
            Language::paper_l2(),
            Language::paper_l1(),
            Language::root(),
        ]
    }

    /// Picks the MDL-minimal language for the column.
    pub fn best_language(&self, values: &[(&str, usize)]) -> (Language, HashMap<String, usize>) {
        let mut best: Option<(f64, Language, HashMap<String, usize>)> = None;
        for lang in Self::granularities() {
            let (dl, support) = description_length(values, &lang);
            let better = match &best {
                Some((b, _, _)) => dl < *b,
                None => true,
            };
            if better {
                best = Some((dl, lang, support));
            }
        }
        let (_, lang, support) = best.expect("at least one granularity");
        (lang, support)
    }
}

impl Detector for PotterWheelDetector {
    fn name(&self) -> &'static str {
        "PWheel"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let values = crate::traits::value_counts(column);
        if values.len() < 2 {
            return Vec::new();
        }
        let refs: Vec<(&str, usize)> = values.iter().map(|(v, c)| (v.as_str(), *c)).collect();
        let total: usize = refs.iter().map(|&(_, c)| c).sum();
        let (lang, support) = self.best_language(&refs);
        // Dominant patterns cover at least `dominant_fraction` of cells.
        let threshold = ((total as f64) * self.dominant_fraction).ceil() as usize;
        let dominant_cells: usize = support.values().filter(|&&c| c >= threshold.max(2)).sum();
        if dominant_cells == 0 {
            // No structure found; Potter's Wheel stays silent.
            return Vec::new();
        }
        let consistent_fraction = dominant_cells as f64 / total as f64;
        let preds: Vec<Prediction> = refs
            .iter()
            .filter(|(v, _)| {
                let key = Pattern::generalize(v, &lang).to_string();
                support.get(&key).copied().unwrap_or(0) < threshold.max(2)
            })
            .map(|(v, _)| Prediction {
                value: v.to_string(),
                confidence: consistent_fraction,
            })
            .collect();
        finalize_predictions(preds, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn flags_pattern_outlier() {
        let mut vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        vals.push("January 1st".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = PotterWheelDetector::default().detect(&col);
        assert_eq!(preds[0].value, "January 1st");
    }

    #[test]
    fn col1_paper_weakness_flags_separator_number() {
        // The paper's Col-1: {0..999, "1,000"} — MDL flags "1,000" even
        // though it is globally compatible. Reproducing the *weakness* is
        // part of reproducing the method.
        let mut vals: Vec<String> = (0..50).map(|i| format!("{}", i * 19 % 999)).collect();
        vals.push("1,000".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = PotterWheelDetector::default().detect(&col);
        assert!(preds.iter().any(|p| p.value == "1,000"));
    }

    #[test]
    fn balanced_mix_of_formats_is_silent() {
        // 50-50 date-format mix: both patterns are dominant structure, so
        // local MDL finds no outliers (the paper's Col-3 critique).
        let mut vals: Vec<String> = (0..10).map(|i| format!("201{i}-01-01")).collect();
        vals.extend((0..10).map(|i| format!("201{i}/01/01")));
        let col = Column::new(vals, SourceTag::Csv);
        assert!(PotterWheelDetector::default().detect(&col).is_empty());
    }

    #[test]
    fn uniform_column_is_silent() {
        let vals: Vec<String> = (0..20).map(|i| format!("{i}")).collect();
        let col = Column::new(vals, SourceTag::Csv);
        assert!(PotterWheelDetector::default().detect(&col).is_empty());
    }

    #[test]
    fn mdl_prefers_digit_class_for_dates() {
        let values = vec![("2011-01-01", 1usize), ("2012-02-02", 1), ("2013-03-03", 1)];
        let det = PotterWheelDetector::default();
        let (lang, _) = det.best_language(&values);
        // All three collapse to one pattern under the crude language,
        // which beats leaf (3 patterns) and root (expensive residuals).
        assert_eq!(lang, crude_language());
    }

    #[test]
    fn single_value_column_silent() {
        let col = Column::from_strs(&["x"], SourceTag::Csv);
        assert!(PotterWheelDetector::default().detect(&col).is_empty());
    }
}
