//! dBoost: tuple expansion + per-feature distribution outliers (Mariet et
//! al.). Values expand into typed feature tuples (length, character-class
//! counts, numeric magnitude, date fields where parseable); each feature's
//! distribution is modeled, and values deviating on "correlated" features
//! (agreement ≥ θ) are outliers. Defaults θ = 0.8, ε = 0.05 as in §4.2.

use crate::traits::{finalize_predictions, Detector, Prediction};
use adt_corpus::Column;
use std::collections::HashMap;

/// Expanded feature tuple of one value.
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion {
    /// Discrete features: (feature name, discretized value).
    pub discrete: Vec<(&'static str, i64)>,
    /// Continuous features: (feature name, value).
    pub continuous: Vec<(&'static str, f64)>,
}

/// Expands a value per dBoost's rules.
pub fn expand(v: &str) -> Expansion {
    let len = v.chars().count() as i64;
    let digits = v.chars().filter(|c| c.is_ascii_digit()).count() as i64;
    let letters = v.chars().filter(|c| c.is_ascii_alphabetic()).count() as i64;
    let symbols = len - digits - letters;
    let mut discrete = vec![
        ("len", len),
        ("digits", digits),
        ("letters", letters),
        ("symbols", symbols),
        ("has_dot", v.contains('.') as i64),
        ("has_dash", v.contains('-') as i64),
        ("has_slash", v.contains('/') as i64),
        ("has_colon", v.contains(':') as i64),
        ("has_comma", v.contains(',') as i64),
        ("has_space", v.contains(' ') as i64),
        (
            "first_class",
            match v.chars().next() {
                Some(c) if c.is_ascii_digit() => 0,
                Some(c) if c.is_ascii_uppercase() => 1,
                Some(c) if c.is_ascii_lowercase() => 2,
                Some(_) => 3,
                None => 4,
            },
        ),
        (
            "last_class",
            match v.chars().last() {
                Some(c) if c.is_ascii_digit() => 0,
                Some(c) if c.is_ascii_alphabetic() => 1,
                Some(_) => 2,
                None => 3,
            },
        ),
    ];
    let mut continuous = Vec::new();
    // Numeric interpretation (dBoost's "number stored differently" rule).
    let cleaned: String = v.chars().filter(|&c| c != ',' && c != '$').collect();
    if let Ok(x) = cleaned.parse::<f64>() {
        continuous.push(("magnitude", x.abs().max(1e-9).log10()));
        discrete.push(("is_numeric", 1));
    } else {
        discrete.push(("is_numeric", 0));
    }
    // Date interpretation: integers can be dates; ymd-shaped strings
    // expand into year/month/day.
    let parts: Vec<&str> = v.split(['-', '/', '.']).collect();
    if parts.len() == 3
        && parts[0].len() == 4
        && parts
            .iter()
            .all(|p| p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty())
    {
        discrete.push(("date_month", parts[1].parse().unwrap_or(0)));
        continuous.push(("date_year", parts[0].parse().unwrap_or(0.0)));
    }
    Expansion {
        discrete,
        continuous,
    }
}

/// The dBoost detector.
#[derive(Debug, Clone)]
pub struct DboostDetector {
    /// Correlation threshold θ: a discrete feature participates when at
    /// least θ of values agree on its modal value.
    pub theta: f64,
    /// Rarity threshold ε: deviating values must be rarer than ε.
    pub epsilon: f64,
    /// Gaussian tolerance for continuous features, in standard deviations.
    pub n_sigma: f64,
    /// Maximum predictions per column.
    pub limit: usize,
}

impl Default for DboostDetector {
    fn default() -> Self {
        DboostDetector {
            theta: 0.8,
            epsilon: 0.05,
            n_sigma: 3.0,
            limit: 16,
        }
    }
}

impl Detector for DboostDetector {
    fn name(&self) -> &'static str {
        "dBoost"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let values = crate::traits::value_counts(column);
        let total: usize = values.iter().map(|&(_, c)| c).sum();
        if total < 4 {
            return Vec::new();
        }
        let expansions: Vec<Expansion> = values.iter().map(|(v, _)| expand(v)).collect();

        // Discrete feature histograms (weighted by multiplicity).
        let mut hist: HashMap<&'static str, HashMap<i64, usize>> = HashMap::new();
        for (e, (_, cnt)) in expansions.iter().zip(&values) {
            for &(f, x) in &e.discrete {
                *hist.entry(f).or_default().entry(x).or_insert(0) += cnt;
            }
        }
        // Correlated features: modal agreement >= theta.
        let correlated: HashMap<&'static str, i64> = hist
            .iter()
            .filter_map(|(&f, h)| {
                let (&modal, &cnt) = h.iter().max_by_key(|(_, &c)| c)?;
                (cnt as f64 / total as f64 >= self.theta).then_some((f, modal))
            })
            .collect();

        // Continuous features: weighted mean/std.
        let mut cont_stats: HashMap<&'static str, (f64, f64, f64)> = HashMap::new(); // (sum, sumsq, weight)
        for (e, (_, cnt)) in expansions.iter().zip(&values) {
            for &(f, x) in &e.continuous {
                let s = cont_stats.entry(f).or_insert((0.0, 0.0, 0.0));
                s.0 += x * *cnt as f64;
                s.1 += x * x * *cnt as f64;
                s.2 += *cnt as f64;
            }
        }

        let mut preds = Vec::new();
        for (e, (v, cnt)) in expansions.iter().zip(&values) {
            let freq = *cnt as f64 / total as f64;
            if freq > self.epsilon {
                continue;
            }
            let mut deviation = 0.0f64;
            for &(f, x) in &e.discrete {
                if let Some(&modal) = correlated.get(f) {
                    if x != modal {
                        let agreement = hist[f][&modal] as f64 / total as f64;
                        deviation += agreement;
                    }
                }
            }
            for &(f, x) in &e.continuous {
                if let Some(&(sum, sumsq, w)) = cont_stats.get(f) {
                    if w >= 4.0 {
                        let mean = sum / w;
                        let var = (sumsq / w - mean * mean).max(1e-12);
                        let z = (x - mean).abs() / var.sqrt();
                        if z > self.n_sigma {
                            deviation += z / self.n_sigma;
                        }
                    }
                }
            }
            if deviation > 0.0 {
                preds.push(Prediction {
                    value: v.clone(),
                    confidence: deviation,
                });
            }
        }
        finalize_predictions(preds, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn expansion_features() {
        let e = expand("2011-01-01");
        assert!(e.discrete.contains(&("len", 10)));
        assert!(e.discrete.contains(&("digits", 8)));
        assert!(e.discrete.contains(&("has_dash", 1)));
        assert!(e.discrete.contains(&("date_month", 1)));
        let e2 = expand("$1,234.56");
        assert!(e2.discrete.contains(&("is_numeric", 1)));
    }

    #[test]
    fn detects_separator_deviation() {
        let mut vals: Vec<String> = (0..30).map(|i| format!("20{i:02}-01-01")).collect();
        vals.push("2031/01/01".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = DboostDetector::default().detect(&col);
        assert_eq!(preds[0].value, "2031/01/01");
    }

    #[test]
    fn detects_numeric_magnitude_outlier() {
        let mut vals: Vec<String> = (10..40).map(|i| i.to_string()).collect();
        vals.push("99999999999".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = DboostDetector::default().detect(&col);
        assert!(preds.iter().any(|p| p.value == "99999999999"));
    }

    #[test]
    fn frequent_values_not_flagged() {
        // A value making up 40% of the column can't be an ε-outlier.
        let mut vals = vec!["alpha".to_string(); 12];
        vals.extend(vec!["42".to_string(); 8]);
        let col = Column::new(vals, SourceTag::Csv);
        let preds = DboostDetector::default().detect(&col);
        assert!(preds.is_empty());
    }

    #[test]
    fn tiny_columns_are_silent() {
        let col = Column::from_strs(&["a", "b"], SourceTag::Csv);
        assert!(DboostDetector::default().detect(&col).is_empty());
    }

    #[test]
    fn homogeneous_column_is_silent() {
        let vals: Vec<String> = (0..30).map(|i| format!("20{i:02}-01-01")).collect();
        let col = Column::new(vals, SourceTag::Csv);
        assert!(DboostDetector::default().detect(&col).is_empty());
    }
}
