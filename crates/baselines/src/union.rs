//! Union: pools the predictions of all baseline methods (§4.2).
//!
//! Each member method contributes its ranked predictions; scores are
//! rank-normalized (method scales are incomparable) and the pooled
//! prediction takes each value's best normalized rank across methods.
//!
//! Since the ensemble redesign this is a thin wrapper over
//! [`EnsembleEngine`]'s `union` merge policy, which reproduces the
//! historical rank-pooling byte for byte (see the differential test
//! below). The type is kept for paper parity — `Union` is one of the
//! §4.2 comparison methods — and as the `"union"` registry entry.

use crate::traits::{Detector, Prediction};
use adt_core::api::{CostClass, DetectorInfo, DetectorKind};
use adt_core::ensemble::{EnsembleEngine, MergePolicy};
use adt_corpus::Column;

/// The Union meta-detector.
pub struct UnionDetector {
    members: Vec<Box<dyn Detector>>,
    /// Maximum predictions per column.
    pub limit: usize,
}

impl Default for UnionDetector {
    fn default() -> Self {
        UnionDetector {
            members: crate::all_baselines(),
            limit: 16,
        }
    }
}

impl UnionDetector {
    /// A union over an explicit member set.
    pub fn new(members: Vec<Box<dyn Detector>>) -> Self {
        UnionDetector { members, limit: 16 }
    }

    /// Member method names.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

impl Detector for UnionDetector {
    fn name(&self) -> &'static str {
        "Union"
    }

    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: self.name(),
            kind: DetectorKind::Meta,
            cost: CostClass::Expensive,
        }
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let mut batch = self.detect_batch(std::slice::from_ref(column));
        batch.pop().unwrap_or_default()
    }

    fn detect_batch(&self, columns: &[Column]) -> Vec<Vec<Prediction>> {
        // Members are borrowed (`&dyn Detector` is itself a Detector), so
        // the engine is rebuilt per call without cloning the member set.
        // One worker thread: Union is routinely driven from inside an
        // already-parallel evaluation loop, and the historical
        // implementation was serial.
        let engine = EnsembleEngine::new(
            self.members
                .iter()
                .map(|m| Box::new(m.as_ref()) as Box<dyn Detector + '_>)
                .collect(),
        )
        .with_merge(MergePolicy::Union)
        .with_threads(1)
        .with_limit(self.limit);
        match engine.run(columns) {
            Ok(report) => report.predictions,
            // Unreachable in practice (single-threaded runs execute
            // inline and the member set is non-empty by construction);
            // degrade to "no predictions" rather than panicking.
            Err(_) => columns.iter().map(|_| Vec::new()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::finalize_predictions;
    use adt_corpus::SourceTag;
    use std::collections::HashMap;

    /// The pre-ensemble rank-pooling implementation, preserved verbatim
    /// as the reference for the differential test.
    fn reference_union(
        members: &[Box<dyn Detector>],
        limit: usize,
        column: &Column,
    ) -> Vec<Prediction> {
        let mut pooled: HashMap<String, f64> = HashMap::new();
        for m in members {
            let preds = m.detect(column);
            let n = preds.len();
            for (rank, p) in preds.into_iter().enumerate() {
                // Normalized rank score in (0, 1]: top prediction of any
                // method scores 1, the last scores 1/n.
                let score = (n - rank) as f64 / n as f64;
                let e = pooled.entry(p.value).or_insert(0.0);
                if score > *e {
                    *e = score;
                }
            }
        }
        let preds: Vec<Prediction> = pooled
            .into_iter()
            .map(|(value, confidence)| Prediction { value, confidence })
            .collect();
        finalize_predictions(preds, limit)
    }

    fn mixed_columns() -> Vec<Column> {
        let mut cols = Vec::new();
        // 19 ISO dates + intruder.
        let mut vals: Vec<String> = (1..20)
            .map(|i| format!("2011-{:02}-{:02}", (i % 12) + 1, (i % 27) + 1))
            .collect();
        vals.push("not a date at all!!".to_string());
        cols.push(Column::new(vals, SourceTag::Csv));
        // Numbers with a thousands-separator intruder.
        let mut vals: Vec<String> = (0..18).map(|i| format!("{}", 100 + i * 7)).collect();
        vals.push("3,000".to_string());
        cols.push(Column::new(vals, SourceTag::Csv));
        // Clean short codes (many methods stay silent here).
        let vals: Vec<String> = (0..15).map(|i| format!("AB-{i:03}")).collect();
        cols.push(Column::new(vals, SourceTag::Csv));
        cols
    }

    /// The ensemble-backed Union must be byte-identical to the historical
    /// rank-pooling implementation on every prediction.
    #[test]
    fn differential_against_rank_pooling_reference() {
        let u = UnionDetector::default();
        let reference_members = crate::all_baselines();
        for (i, col) in mixed_columns().iter().enumerate() {
            let new = u.detect(col);
            let old = reference_union(&reference_members, u.limit, col);
            assert_eq!(new.len(), old.len(), "column {i}: prediction count");
            for (n, o) in new.iter().zip(&old) {
                assert_eq!(n.value, o.value, "column {i}: value order diverged");
                assert!(
                    n.confidence.to_bits() == o.confidence.to_bits(),
                    "column {i}: confidence diverged for {}: {} vs {}",
                    n.value,
                    n.confidence,
                    o.confidence
                );
            }
        }
    }

    #[test]
    fn union_pools_member_predictions() {
        let mut vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        vals.push("not a date".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let u = UnionDetector::default();
        let preds = u.detect(&col);
        assert!(!preds.is_empty());
        assert_eq!(preds[0].value, "not a date");
        assert_eq!(u.member_names().len(), 10);
        assert_eq!(u.info().kind, DetectorKind::Meta);
    }

    #[test]
    fn union_predictions_come_from_the_column() {
        // Noisy members (Linear fires on almost anything) mean the union
        // is rarely silent; its predictions must at least be real column
        // values with normalized-rank confidences in (0, 1].
        let vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        let col = Column::new(vals.clone(), SourceTag::Csv);
        let preds = UnionDetector::default().detect(&col);
        for p in &preds {
            assert!(vals.contains(&p.value));
            assert!(p.confidence > 0.0 && p.confidence <= 1.0);
        }
    }
}
