//! Union: pools the predictions of all baseline methods (§4.2).
//!
//! Each member method contributes its ranked predictions; scores are
//! rank-normalized (method scales are incomparable) and the pooled
//! prediction takes each value's best normalized rank across methods.

use crate::traits::{finalize_predictions, Detector, Prediction};
use adt_corpus::Column;
use std::collections::HashMap;

/// The Union meta-detector.
pub struct UnionDetector {
    members: Vec<Box<dyn Detector>>,
    /// Maximum predictions per column.
    pub limit: usize,
}

impl Default for UnionDetector {
    fn default() -> Self {
        UnionDetector {
            members: crate::all_baselines(),
            limit: 16,
        }
    }
}

impl UnionDetector {
    /// A union over an explicit member set.
    pub fn new(members: Vec<Box<dyn Detector>>) -> Self {
        UnionDetector { members, limit: 16 }
    }

    /// Member method names.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

impl Detector for UnionDetector {
    fn name(&self) -> &'static str {
        "Union"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let mut pooled: HashMap<String, f64> = HashMap::new();
        for m in &self.members {
            let preds = m.detect(column);
            let n = preds.len();
            for (rank, p) in preds.into_iter().enumerate() {
                // Normalized rank score in (0, 1]: top prediction of any
                // method scores 1, the last scores 1/n.
                let score = (n - rank) as f64 / n as f64;
                let e = pooled.entry(p.value).or_insert(0.0);
                if score > *e {
                    *e = score;
                }
            }
        }
        let preds: Vec<Prediction> = pooled
            .into_iter()
            .map(|(value, confidence)| Prediction { value, confidence })
            .collect();
        finalize_predictions(preds, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn union_pools_member_predictions() {
        let mut vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        vals.push("not a date".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let u = UnionDetector::default();
        let preds = u.detect(&col);
        assert!(!preds.is_empty());
        assert_eq!(preds[0].value, "not a date");
        assert_eq!(u.member_names().len(), 10);
    }

    #[test]
    fn union_predictions_come_from_the_column() {
        // Noisy members (Linear fires on almost anything) mean the union
        // is rarely silent; its predictions must at least be real column
        // values with normalized-rank confidences in (0, 1].
        let vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        let col = Column::new(vals.clone(), SourceTag::Csv);
        let preds = UnionDetector::default().detect(&col);
        for p in &preds {
            assert!(vals.contains(&p.value));
            assert!(p.confidence > 0.0 && p.confidence <= 1.0);
        }
    }
}
