//! The common detector interface — re-exported from `adt_core::api`.
//!
//! **Deprecated path.** The trait moved into `adt-core` so Auto-Detect
//! itself and every baseline implement the same interface and
//! evaluation drivers consume a uniform `dyn Detector`. This module
//! remains only as the compatibility path —
//! `adt_baselines::traits::Detector` *is* `adt_core::Detector` — and
//! re-exports nothing of its own (the old duplicated `Prediction` is
//! gone). New code should import from `adt_core::api` directly, which
//! also carries the batch/registry surface (`detect_batch`,
//! `DetectorInfo`, `DetectorRegistry`, `DetectorSpec`).

pub use adt_core::api::{finalize_predictions, value_counts, Detector, Prediction};
