//! The common detector interface — re-exported from `adt_core::api`.
//!
//! The trait moved into `adt-core` so Auto-Detect itself and every
//! baseline implement the same interface and evaluation drivers consume
//! a uniform `dyn Detector`. This module remains as the compatibility
//! path: `adt_baselines::traits::Detector` *is* `adt_core::Detector`.

pub use adt_core::api::{finalize_predictions, value_counts, Detector, Prediction};
