//! Baseline single-column error detectors (§4.2 of the paper).
//!
//! All ten comparison methods, each implementing [`Detector`]:
//!
//! | Module | Method | Signal |
//! |---|---|---|
//! | [`fregex`] | F-Regex | predefined data-type matchers; non-conforming values |
//! | [`pwheel`] | Potter's Wheel | MDL pattern inference; values outside inferred patterns |
//! | [`dboost`] | dBoost | tuple expansion + per-feature distribution outliers |
//! | [`linear`] | Linear / LinearP | Arning-style deviation detection (raw / pattern level) |
//! | [`cdm`] | CDM | compression-based dissimilarity |
//! | [`lsa`] | LSA | entropy-reduction local search |
//! | [`svdd`] | SVDD | minimum-cost ball over pattern distance |
//! | [`dbod`] | DBOD | distance to nearest neighbour |
//! | [`lof`] | LOF | local outlier factor |
//! | [`union`] | Union | rank-normalized union of all baselines |
//!
//! These are *local* methods: they see only the input column, which is
//! exactly the contrast the paper draws against corpus-driven detection.

pub mod cdm;
pub mod dbod;
pub mod dboost;
pub mod fregex;
pub mod linear;
pub mod lof;
pub mod lsa;
pub mod pwheel;
pub mod svdd;
pub mod traits;
pub mod union;

pub use cdm::CdmDetector;
pub use dbod::DbodDetector;
pub use dboost::DboostDetector;
pub use fregex::FRegexDetector;
pub use linear::{LinearDetector, LinearPDetector};
pub use lof::LofDetector;
pub use lsa::LsaDetector;
pub use pwheel::PotterWheelDetector;
pub use svdd::SvddDetector;
pub use traits::{Detector, Prediction};
pub use union::UnionDetector;

/// All standalone baselines (excluding Union) with their paper names.
pub fn all_baselines() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(FRegexDetector::default()),
        Box::new(PotterWheelDetector::default()),
        Box::new(DboostDetector::default()),
        Box::new(LinearDetector::default()),
        Box::new(LinearPDetector::default()),
        Box::new(CdmDetector::default()),
        Box::new(LsaDetector::default()),
        Box::new(SvddDetector::default()),
        Box::new(DbodDetector::default()),
        Box::new(LofDetector::default()),
    ]
}

/// Registers the ten §4.2 baselines plus `"union"` into `reg` under
/// their canonical configuration names (see
/// [`adt_core::KNOWN_DETECTORS`]).
pub fn register_baselines(reg: &mut adt_core::DetectorRegistry) {
    reg.register("fregex", || Box::new(FRegexDetector::default()));
    reg.register("pwheel", || Box::new(PotterWheelDetector::default()));
    reg.register("dboost", || Box::new(DboostDetector::default()));
    reg.register("linear", || Box::new(LinearDetector::default()));
    reg.register("linearp", || Box::new(LinearPDetector::default()));
    reg.register("cdm", || Box::new(CdmDetector::default()));
    reg.register("lsa", || Box::new(LsaDetector::default()));
    reg.register("svdd", || Box::new(SvddDetector::default()));
    reg.register("dbod", || Box::new(DbodDetector::default()));
    reg.register("lof", || Box::new(LofDetector::default()));
    reg.register("union", || Box::new(UnionDetector::default()));
}

/// The full standard registry: the core `"autodetect"` detector backed
/// by `model` plus every baseline. Covers all of
/// [`adt_core::KNOWN_DETECTORS`], so any validated
/// [`adt_core::DetectorSpec`] builds.
pub fn standard_registry(
    model: std::sync::Arc<adt_core::AutoDetect>,
) -> adt_core::DetectorRegistry {
    let mut reg = adt_core::DetectorRegistry::with_model(model);
    register_baselines(&mut reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::{Column, SourceTag};

    /// Every baseline should rank the planted intruder first on an easy
    /// column (19 ISO dates + 1 free-text intruder).
    #[test]
    fn all_baselines_catch_an_easy_intruder() {
        let mut values: Vec<String> = (1..20)
            .map(|i| format!("2011-{:02}-{:02}", (i % 12) + 1, (i % 27) + 1))
            .collect();
        values.push("not a date at all!!".to_string());
        let col = Column::new(values, SourceTag::Csv);
        for det in all_baselines() {
            let preds = det.detect(&col);
            assert!(!preds.is_empty(), "{} produced no predictions", det.name());
            assert_eq!(
                preds[0].value,
                "not a date at all!!",
                "{} top prediction was {:?}",
                det.name(),
                preds[0]
            );
        }
    }

    #[test]
    fn baseline_names_are_unique() {
        let mut names: Vec<&str> = all_baselines().iter().map(|d| d.name()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
        assert_eq!(n, 10);
    }

    /// `register_baselines` must cover every canonical detector name
    /// except `"autodetect"` (which needs a trained model and is
    /// registered by `DetectorRegistry::with_model`), so any detector
    /// list that passes config validation also resolves through
    /// `standard_registry`.
    #[test]
    fn register_baselines_covers_every_known_detector() {
        let mut reg = adt_core::DetectorRegistry::new();
        register_baselines(&mut reg);
        for name in adt_core::KNOWN_DETECTORS {
            if name == "autodetect" {
                assert!(!reg.contains(name), "baselines must not fake autodetect");
                continue;
            }
            let spec = adt_core::DetectorSpec::parse(name).unwrap();
            let det = reg.build(&spec).unwrap();
            assert!(!det.name().is_empty(), "{name} built a nameless detector");
        }
        assert_eq!(reg.names().len(), adt_core::KNOWN_DETECTORS.len() - 1);
    }
}
