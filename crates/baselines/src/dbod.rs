//! DBOD: distance-based outlier detection (Knorr & Ng). A value is an
//! outlier when the distance to its nearest distinct neighbour exceeds a
//! threshold `D`; predictions are ranked by that distance, using the same
//! alignment pattern distance as SVDD (§4.2).

use crate::traits::{finalize_predictions, Detector, Prediction};
use adt_corpus::Column;
use adt_patterns::{crude_generalize, normalized_pattern_distance, Pattern};

/// The DBOD detector.
#[derive(Debug, Clone)]
pub struct DbodDetector {
    /// Distance threshold `D` above which a value is an outlier.
    pub threshold: f64,
    /// Maximum predictions per column.
    pub limit: usize,
}

impl Default for DbodDetector {
    fn default() -> Self {
        DbodDetector {
            threshold: 0.3,
            limit: 16,
        }
    }
}

impl Detector for DbodDetector {
    fn name(&self) -> &'static str {
        "DBOD"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let values = crate::traits::value_counts(column);
        if values.len() < 3 {
            return Vec::new();
        }
        let patterns: Vec<Pattern> = values.iter().map(|(v, _)| crude_generalize(v)).collect();
        let n = patterns.len();
        let mut preds = Vec::new();
        for i in 0..n {
            // Values with multiplicity > 1 have themselves as neighbours.
            if values[i].1 > 1 {
                continue;
            }
            let nearest = (0..n)
                .filter(|&j| j != i)
                .map(|j| normalized_pattern_distance(&patterns[i], &patterns[j]))
                .fold(f64::INFINITY, f64::min);
            if nearest > self.threshold {
                preds.push(Prediction {
                    value: values[i].0.clone(),
                    confidence: nearest,
                });
            }
        }
        finalize_predictions(preds, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn isolated_value_flagged() {
        let mut vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        vals.push("&&&&&&&&&&".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = DbodDetector::default().detect(&col);
        assert_eq!(preds[0].value, "&&&&&&&&&&");
    }

    #[test]
    fn repeated_values_never_flagged() {
        let mut vals: Vec<String> = (0..10).map(|i| format!("20{i:02}-01-01")).collect();
        vals.push("&&&&&&&&&&".to_string());
        vals.push("&&&&&&&&&&".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = DbodDetector::default().detect(&col);
        assert!(preds.iter().all(|p| p.value != "&&&&&&&&&&"));
    }

    #[test]
    fn close_neighbours_not_flagged() {
        // All values share the crude pattern -> nearest distance 0.
        let vals: Vec<String> = (0..10).map(|i| format!("{}", 100 + i)).collect();
        let col = Column::new(vals, SourceTag::Csv);
        assert!(DbodDetector::default().detect(&col).is_empty());
    }

    #[test]
    fn tiny_columns_silent() {
        let col = Column::from_strs(&["a", "b"], SourceTag::Csv);
        assert!(DbodDetector::default().detect(&col).is_empty());
    }
}
