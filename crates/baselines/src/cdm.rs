//! CDM: compression-based dissimilarity measure (Keogh et al., KDD'04).
//!
//! `CDM(x, y) = C(xy) / (C(x) + C(y))` with `C` an off-the-shelf
//! compressor — here the `adt-compress` LZSS/entropy pipeline standing in
//! for zip. Values are first generalized to patterns (as §4.2 describes),
//! and each value's outlier score is its CDM distance to the
//! concatenation of the rest of the column.

use crate::traits::{finalize_predictions, Detector, Prediction};
use adt_compress::cdm_distance;
use adt_corpus::Column;
use adt_patterns::crude_generalize;

/// The CDM detector.
#[derive(Debug, Clone)]
pub struct CdmDetector {
    /// Maximum predictions per column.
    pub limit: usize,
    /// Minimum excess of a value's nearest-neighbour CDM over its
    /// self-similarity floor for it to be reported.
    pub min_distance: f64,
}

impl Default for CdmDetector {
    fn default() -> Self {
        CdmDetector {
            limit: 16,
            min_distance: 0.05,
        }
    }
}

impl Detector for CdmDetector {
    fn name(&self) -> &'static str {
        "CDM"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let values = crate::traits::value_counts(column);
        if values.len() < 3 {
            return Vec::new();
        }
        let patterns: Vec<String> = values
            .iter()
            .map(|(v, _)| crude_generalize(v).to_string())
            .collect();
        // Nearest-neighbour CDM: a value's score is its smallest CDM
        // distance to any other value's pattern. Comparing same-length
        // inputs keeps CDM in its meaningful regime (a value against the
        // whole concatenated column would be dominated by the column's
        // own redundancy). The self-similarity floor CDM(p, p) is
        // subtracted so identical-pattern columns score ~0.
        let mut preds = Vec::new();
        for i in 0..values.len() {
            let self_floor = cdm_distance(patterns[i].as_bytes(), patterns[i].as_bytes());
            let nearest = (0..values.len())
                .filter(|&j| j != i)
                .map(|j| cdm_distance(patterns[i].as_bytes(), patterns[j].as_bytes()))
                .fold(f64::INFINITY, f64::min);
            let d = nearest - self_floor;
            if d >= self.min_distance {
                preds.push(Prediction {
                    value: values[i].0.clone(),
                    confidence: d,
                });
            }
        }
        finalize_predictions(preds, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn outlier_compresses_worst() {
        let mut vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        vals.push("WTA International $50.000".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = CdmDetector::default().detect(&col);
        assert!(!preds.is_empty());
        assert_eq!(preds[0].value, "WTA International $50.000");
    }

    #[test]
    fn homogeneous_column_scores_low() {
        let vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        let col = Column::new(vals, SourceTag::Csv);
        let preds = CdmDetector::default().detect(&col);
        // Identical patterns compress perfectly against each other.
        assert!(preds.is_empty(), "got {preds:?}");
    }

    #[test]
    fn tiny_columns_silent() {
        let col = Column::from_strs(&["a", "b"], SourceTag::Csv);
        assert!(CdmDetector::default().detect(&col).is_empty());
    }
}
