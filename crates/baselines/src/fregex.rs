//! F-Regex: fixed type-detection patterns, as in Trifacta / Power BI.
//!
//! A library of hand-written matchers for ~15 common data types. The
//! column's type is the matcher covering the largest fraction of values
//! (if above a minimum); values not conforming are flagged, ranked by the
//! conforming fraction — the confidence definition of §4.2.

use crate::traits::{finalize_predictions, Detector, Prediction};
use adt_corpus::Column;

/// One recognized data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    Integer,
    Decimal,
    ThousandsNumber,
    Currency,
    Percent,
    DateYmd,
    DateDmy,
    DateMonthName,
    Time,
    Email,
    Url,
    IpAddress,
    Phone,
    ZipCode,
    Boolean,
    Isbn,
}

impl DataType {
    /// All types, in match-priority order: more specific types first, so
    /// that on coverage ties the narrower type wins (`Integer` before
    /// `ThousandsNumber`, which subsumes it).
    pub const ALL: [DataType; 16] = [
        DataType::DateYmd,
        DataType::DateDmy,
        DataType::DateMonthName,
        DataType::Time,
        DataType::Email,
        DataType::Url,
        DataType::IpAddress,
        DataType::Phone,
        DataType::Isbn,
        DataType::ZipCode,
        DataType::Boolean,
        DataType::Currency,
        DataType::Percent,
        DataType::Integer,
        DataType::Decimal,
        DataType::ThousandsNumber,
    ];

    /// True when `v` conforms to this type's pattern.
    pub fn matches(&self, v: &str) -> bool {
        match self {
            DataType::Integer => !v.is_empty() && v.chars().all(|c| c.is_ascii_digit()),
            DataType::Decimal => {
                let v = v.strip_prefix(['-', '+']).unwrap_or(v);
                let mut parts = v.splitn(2, '.');
                let (a, b) = (parts.next().unwrap_or(""), parts.next());
                match b {
                    Some(b) => {
                        !a.is_empty()
                            && !b.is_empty()
                            && a.chars().all(|c| c.is_ascii_digit())
                            && b.chars().all(|c| c.is_ascii_digit())
                    }
                    None => !a.is_empty() && a.chars().all(|c| c.is_ascii_digit()),
                }
            }
            DataType::ThousandsNumber => {
                let v = v.strip_prefix(['-', '+']).unwrap_or(v);
                let int_part = v.split('.').next().unwrap_or("");
                let groups: Vec<&str> = int_part.split(',').collect();
                if groups.len() < 2 {
                    return DataType::Integer.matches(v) || DataType::Decimal.matches(v);
                }
                let first_ok = !groups[0].is_empty() && groups[0].len() <= 3 && digits(groups[0]);
                let rest_ok = groups[1..].iter().all(|g| g.len() == 3 && digits(g));
                let frac_ok = match v.split_once('.').map(|x| x.1) {
                    Some(f) => !f.is_empty() && digits(f),
                    None => true,
                };
                first_ok && rest_ok && frac_ok
            }
            DataType::Currency => {
                let v = v
                    .strip_prefix(['$', '€', '£', '¥'])
                    .or_else(|| v.strip_suffix(" USD"))
                    .or_else(|| v.strip_suffix(" EUR"));
                match v {
                    Some(rest) => DataType::ThousandsNumber.matches(rest.trim()),
                    None => false,
                }
            }
            DataType::Percent => match v.strip_suffix('%') {
                Some(rest) => DataType::Decimal.matches(rest),
                None => false,
            },
            DataType::DateYmd => {
                // yyyy-mm-dd / yyyy/mm/dd / yyyy.mm.dd
                let seps = ['-', '/', '.'];
                seps.iter().any(|&sep| {
                    let p: Vec<&str> = v.split(sep).collect();
                    p.len() == 3
                        && p[0].len() == 4
                        && digits(p[0])
                        && (1..=2).contains(&p[1].len())
                        && digits(p[1])
                        && in_range(p[1], 1, 12)
                        && (1..=2).contains(&p[2].len())
                        && digits(p[2])
                        && in_range(p[2], 1, 31)
                })
            }
            DataType::DateDmy => {
                let seps = ['-', '/', '.'];
                seps.iter().any(|&sep| {
                    let p: Vec<&str> = v.split(sep).collect();
                    p.len() == 3
                        && (1..=2).contains(&p[0].len())
                        && digits(p[0])
                        && (1..=2).contains(&p[1].len())
                        && digits(p[1])
                        && p[2].len() == 4
                        && digits(p[2])
                        && (in_range(p[0], 1, 31) && in_range(p[1], 1, 12)
                            || in_range(p[0], 1, 12) && in_range(p[1], 1, 31))
                })
            }
            DataType::DateMonthName => {
                const MONTHS: [&str; 24] = [
                    "January",
                    "February",
                    "March",
                    "April",
                    "May",
                    "June",
                    "July",
                    "August",
                    "September",
                    "October",
                    "November",
                    "December",
                    "Jan",
                    "Feb",
                    "Mar",
                    "Apr",
                    "May",
                    "Jun",
                    "Jul",
                    "Aug",
                    "Sep",
                    "Oct",
                    "Nov",
                    "Dec",
                ];
                MONTHS.iter().any(|m| v.contains(m))
                    && v.chars().any(|c| c.is_ascii_digit())
                    && v.chars()
                        .all(|c| c.is_ascii_alphanumeric() || " ,-".contains(c))
            }
            DataType::Time => {
                let p: Vec<&str> = v.split(':').collect();
                (2..=3).contains(&p.len())
                    && p.iter().all(|x| (1..=2).contains(&x.len()) && digits(x))
                    && p[1..].iter().all(|x| in_range(x, 0, 59))
            }
            DataType::Email => {
                let parts: Vec<&str> = v.split('@').collect();
                parts.len() == 2
                    && !parts[0].is_empty()
                    && parts[1].contains('.')
                    && !parts[1].starts_with('.')
                    && !parts[1].ends_with('.')
                    && v.chars().all(|c| !c.is_whitespace())
            }
            DataType::Url => {
                (v.starts_with("http://") || v.starts_with("https://") || v.starts_with("www."))
                    && v.len() > 10
                    && !v.contains(' ')
            }
            DataType::IpAddress => {
                let p: Vec<&str> = v.split('.').collect();
                p.len() == 4
                    && p.iter().all(|x| {
                        !x.is_empty()
                            && x.len() <= 3
                            && digits(x)
                            && x.parse::<u32>().map(|n| n <= 255).unwrap_or(false)
                    })
            }
            DataType::Phone => {
                let digits_count = v.chars().filter(|c| c.is_ascii_digit()).count();
                (7..=15).contains(&digits_count)
                    && v.chars()
                        .all(|c| c.is_ascii_digit() || " ()-+.".contains(c))
                    && v.chars().next().map(|c| c != '.').unwrap_or(false)
            }
            DataType::ZipCode => {
                (v.len() == 5 && digits(v))
                    || (v.len() == 10 && digits(&v[..5]) && &v[5..6] == "-" && digits(&v[6..]))
            }
            DataType::Boolean => matches!(
                v.to_ascii_lowercase().as_str(),
                "yes" | "no" | "true" | "false" | "y" | "n"
            ),
            DataType::Isbn => {
                v.starts_with("978-") && v.matches('-').count() == 4 && {
                    let d = v.chars().filter(|c| c.is_ascii_digit()).count();
                    d == 13
                }
            }
        }
    }
}

fn digits(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_digit())
}

fn in_range(s: &str, lo: u32, hi: u32) -> bool {
    s.parse::<u32>()
        .map(|n| n >= lo && n <= hi)
        .unwrap_or(false)
}

/// The F-Regex detector.
#[derive(Debug, Clone)]
pub struct FRegexDetector {
    /// Minimum fraction of values a type must cover to become the column
    /// type.
    pub min_coverage: f64,
    /// Maximum predictions per column.
    pub limit: usize,
}

impl Default for FRegexDetector {
    fn default() -> Self {
        FRegexDetector {
            min_coverage: 0.5,
            limit: 16,
        }
    }
}

impl FRegexDetector {
    /// Infers the dominant data type of a column, with its coverage.
    pub fn infer_type(&self, column: &Column) -> Option<(DataType, f64)> {
        let values: Vec<&str> = column.non_empty_values().collect();
        if values.is_empty() {
            return None;
        }
        let mut best: Option<(DataType, f64)> = None;
        for t in DataType::ALL {
            let hits = values.iter().filter(|v| t.matches(v)).count();
            let frac = hits as f64 / values.len() as f64;
            let better = match best {
                Some((_, b)) => frac > b,
                None => true,
            };
            if better {
                best = Some((t, frac));
            }
        }
        best.filter(|&(_, frac)| frac >= self.min_coverage)
    }
}

impl Detector for FRegexDetector {
    fn name(&self) -> &'static str {
        "F-Regex"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let Some((ty, coverage)) = self.infer_type(column) else {
            return Vec::new();
        };
        if coverage >= 1.0 {
            return Vec::new();
        }
        let preds: Vec<Prediction> = column
            .distinct_values()
            .into_iter()
            .filter(|v| !v.is_empty() && !ty.matches(v))
            .map(|v| Prediction {
                value: v.to_string(),
                confidence: coverage,
            })
            .collect();
        finalize_predictions(preds, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn type_matchers() {
        assert!(DataType::Integer.matches("12345"));
        assert!(!DataType::Integer.matches("12a"));
        assert!(DataType::Decimal.matches("3.14"));
        assert!(DataType::Decimal.matches("-3.14"));
        assert!(!DataType::Decimal.matches("3."));
        assert!(DataType::ThousandsNumber.matches("1,234,567.89"));
        assert!(!DataType::ThousandsNumber.matches("12,34"));
        assert!(DataType::Currency.matches("$1,234.56"));
        assert!(DataType::Percent.matches("3.5%"));
        assert!(DataType::DateYmd.matches("2011-01-31"));
        assert!(DataType::DateYmd.matches("2011/1/1"));
        assert!(!DataType::DateYmd.matches("2011-13-01"));
        assert!(DataType::DateDmy.matches("27/11/2009"));
        assert!(DataType::DateMonthName.matches("August 16, 1983"));
        assert!(DataType::Time.matches("12:45:30"));
        assert!(!DataType::Time.matches("12:99"));
        assert!(DataType::Email.matches("jane@example.com"));
        assert!(!DataType::Email.matches("jane@com"));
        assert!(DataType::Url.matches("http://example.com/a"));
        assert!(DataType::IpAddress.matches("192.168.0.1"));
        assert!(!DataType::IpAddress.matches("192.168.0.256"));
        assert!(DataType::Phone.matches("(425) 555-0123"));
        assert!(DataType::ZipCode.matches("98052"));
        assert!(DataType::ZipCode.matches("98052-1234"));
        assert!(DataType::Boolean.matches("Yes"));
        assert!(DataType::Isbn.matches("978-3-16-148410-0"));
    }

    #[test]
    fn flags_nonconforming_value() {
        let col = Column::from_strs(
            &["192.168.0.1", "10.0.0.1", "172.16.3.7", "not-an-ip"],
            SourceTag::Csv,
        );
        let det = FRegexDetector::default();
        let preds = det.detect(&col);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].value, "not-an-ip");
        assert!((preds[0].confidence - 0.75).abs() < 1e-9);
    }

    #[test]
    fn clean_typed_column_passes() {
        let col = Column::from_strs(&["1:02", "2:45", "3:30"], SourceTag::Csv);
        assert!(FRegexDetector::default().detect(&col).is_empty());
    }

    #[test]
    fn untyped_column_produces_nothing() {
        let col = Column::from_strs(
            &["alpha one", "beta two!", "?gamma", "delta#4x", "e"],
            SourceTag::Csv,
        );
        assert!(FRegexDetector::default().detect(&col).is_empty());
    }

    #[test]
    fn infer_type_picks_majority() {
        let col = Column::from_strs(&["1", "2", "3", "x"], SourceTag::Csv);
        let (ty, frac) = FRegexDetector::default().infer_type(&col).unwrap();
        assert_eq!(ty, DataType::Integer);
        assert!((frac - 0.75).abs() < 1e-9);
    }
}
