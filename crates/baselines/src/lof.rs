//! LOF: local outlier factor (Breunig et al., SIGMOD'00) over the
//! alignment pattern distance, on the column's distinct values.

use crate::traits::{finalize_predictions, Detector, Prediction};
use adt_corpus::Column;
use adt_patterns::{crude_generalize, normalized_pattern_distance, Pattern};

/// The LOF detector.
#[derive(Debug, Clone)]
pub struct LofDetector {
    /// Neighbourhood size `k` (MinPts).
    pub k: usize,
    /// LOF score above which a value is reported.
    pub min_lof: f64,
    /// Maximum predictions per column.
    pub limit: usize,
}

impl Default for LofDetector {
    fn default() -> Self {
        LofDetector {
            k: 3,
            min_lof: 1.2,
            limit: 16,
        }
    }
}

impl Detector for LofDetector {
    fn name(&self) -> &'static str {
        "LOF"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        let values = crate::traits::value_counts(column);
        let n = values.len();
        if n < 4 {
            return Vec::new();
        }
        let k = self.k.min(n - 1);
        let patterns: Vec<Pattern> = values.iter().map(|(v, _)| crude_generalize(v)).collect();
        // Symmetric distance matrix, computed once.
        let mut dist = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = normalized_pattern_distance(&patterns[i], &patterns[j]);
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        // Cell-level k-nearest neighbours of each distinct value.
        // Duplicate cells collapse to one point but keep the metric
        // honest: a value occurring m times has m-1 zero-distance
        // neighbours, so multiplicities pad the neighbour lists.
        let neighbours: Vec<Vec<(f64, usize)>> = (0..n)
            .map(|i| {
                let mut pairs: Vec<(f64, usize)> = Vec::with_capacity(n + values[i].1);
                for _ in 1..values[i].1 {
                    pairs.push((0.0, i));
                }
                for j in 0..n {
                    if j != i {
                        let d = dist[i * n + j];
                        for _ in 0..values[j].1 {
                            pairs.push((d, j));
                        }
                    }
                }
                pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
                pairs.truncate(k);
                pairs
            })
            .collect();
        // k-distance of each point (distance to its k-th nearest cell).
        let k_dist: Vec<f64> = neighbours
            .iter()
            .map(|ns| ns.last().map(|&(d, _)| d).unwrap_or(0.0))
            .collect();
        // Local reachability density: reach-dist(i, j) = max(k_dist(j), d(i, j)).
        let lrd: Vec<f64> = (0..n)
            .map(|i| {
                let sum: f64 = neighbours[i].iter().map(|&(d, j)| d.max(k_dist[j])).sum();
                let avg = sum / neighbours[i].len().max(1) as f64;
                1.0 / avg.max(1e-9)
            })
            .collect();
        let mut preds = Vec::new();
        for i in 0..n {
            let neigh_lrd: f64 = neighbours[i].iter().map(|&(_, j)| lrd[j]).sum::<f64>()
                / neighbours[i].len().max(1) as f64;
            let lof = neigh_lrd / lrd[i].max(1e-9);
            if lof > self.min_lof {
                preds.push(Prediction {
                    value: values[i].0.clone(),
                    confidence: lof,
                });
            }
        }
        finalize_predictions(preds, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn isolated_point_has_high_lof() {
        let mut vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        vals.push("@@@@@@@@@@@@".to_string());
        let col = Column::new(vals, SourceTag::Csv);
        let preds = LofDetector::default().detect(&col);
        assert!(!preds.is_empty());
        assert_eq!(preds[0].value, "@@@@@@@@@@@@");
    }

    #[test]
    fn dense_cluster_scores_low() {
        let vals: Vec<String> = (0..20).map(|i| format!("20{i:02}-01-01")).collect();
        let col = Column::new(vals, SourceTag::Csv);
        assert!(LofDetector::default().detect(&col).is_empty());
    }

    #[test]
    fn two_balanced_clusters_not_outliers() {
        // LOF is local: two dense clusters of equal size have no outliers.
        let mut vals: Vec<String> = (0..10).map(|i| format!("20{i:02}-01-01")).collect();
        vals.extend((0..10).map(|i| format!("word{i}")));
        let col = Column::new(vals, SourceTag::Csv);
        let preds = LofDetector::default().detect(&col);
        assert!(preds.is_empty(), "got {preds:?}");
    }

    #[test]
    fn tiny_columns_silent() {
        let col = Column::from_strs(&["a", "b", "c"], SourceTag::Csv);
        assert!(LofDetector::default().detect(&col).is_empty());
    }
}
