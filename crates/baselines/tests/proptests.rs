//! Property tests across all baselines: structural guarantees that hold
//! for arbitrary columns.

use adt_baselines::Detector;
use adt_baselines::{all_baselines, UnionDetector};
use adt_corpus::{Column, SourceTag};
use proptest::prelude::*;

fn arb_column() -> impl Strategy<Value = Column> {
    proptest::collection::vec(
        prop_oneof![
            "[0-9]{1,5}",
            "[0-9]{4}-[0-9]{2}-[0-9]{2}",
            "[a-z]{2,8}",
            "[A-Z][a-z]{2,6}",
            "\\$[0-9]{1,3}\\.[0-9]{2}",
            "[ -~]{0,12}",
        ],
        0..25,
    )
    .prop_map(|values| Column::new(values, SourceTag::Csv))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No baseline panics, and every prediction is (a) a real value of
    /// the column, (b) finite-confidence, (c) unique per value, and (d)
    /// the list is sorted by descending confidence.
    #[test]
    fn predictions_are_well_formed(col in arb_column()) {
        for det in all_baselines() {
            let preds = det.detect(&col);
            let mut seen = std::collections::HashSet::new();
            for w in preds.windows(2) {
                prop_assert!(w[0].confidence >= w[1].confidence, "{} unsorted", det.name());
            }
            for p in &preds {
                prop_assert!(
                    col.values.iter().any(|v| v == &p.value),
                    "{} predicted a value not in the column: {:?}",
                    det.name(),
                    p.value
                );
                prop_assert!(p.confidence.is_finite());
                prop_assert!(seen.insert(p.value.clone()), "{} duplicated {:?}", det.name(), p.value);
            }
        }
    }

    /// Detection is deterministic.
    #[test]
    fn detection_is_deterministic(col in arb_column()) {
        for det in all_baselines() {
            prop_assert_eq!(det.detect(&col), det.detect(&col));
        }
    }

    /// Row order never changes the prediction *set* (single-column
    /// methods see a bag of values). Confidences may differ only by
    /// floating-point association, so compare the value sets.
    #[test]
    fn row_order_invariance(col in arb_column(), seed in any::<u64>()) {
        let mut shuffled = col.values.clone();
        // Deterministic Fisher-Yates from the seed.
        let mut s = seed | 1;
        for i in (1..shuffled.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            shuffled.swap(i, (s as usize) % (i + 1));
        }
        let col2 = Column::new(shuffled, SourceTag::Csv);
        for det in all_baselines() {
            let a: std::collections::BTreeSet<String> =
                det.detect(&col).into_iter().map(|p| p.value).collect();
            let b: std::collections::BTreeSet<String> =
                det.detect(&col2).into_iter().map(|p| p.value).collect();
            prop_assert_eq!(&a, &b, "{} not order-invariant", det.name());
        }
    }

    /// The union only predicts values some member predicted.
    #[test]
    fn union_is_subset_of_members(col in arb_column()) {
        let union = UnionDetector::default();
        let union_vals: std::collections::BTreeSet<String> =
            union.detect(&col).into_iter().map(|p| p.value).collect();
        let mut member_vals = std::collections::BTreeSet::new();
        for det in all_baselines() {
            for p in det.detect(&col) {
                member_vals.insert(p.value);
            }
        }
        prop_assert!(union_vals.is_subset(&member_vals));
    }
}
