//! End-to-end tests of the detection service over real sockets: wire
//! protocol edge cases, concurrent clients vs. a direct engine scan,
//! hot-reload, backpressure, and graceful shutdown.

use adt_core::{save_model, AutoDetectConfig, ScanEngine};
use adt_corpus::{generate_corpus, Column, Corpus, CorpusProfile, SourceTag};
use adt_serve::testutil::{tiny_model, tiny_model_one_language};
use adt_serve::{Client, ClientError, Json, LearnConfig, ModelRegistry, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp_models(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("adt_serve_tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    save_model(&tiny_model(), dir.join("default.bin")).unwrap();
    dir
}

fn start(name: &str, config: ServeConfig) -> (Client, adt_serve::ServerHandle, ServerJoin) {
    let registry = ModelRegistry::open(tmp_models(name)).unwrap();
    let server = Server::bind(config, registry).unwrap();
    let (addr, handle, join) = server.spawn();
    let client = Client::new(&addr.to_string())
        .unwrap()
        .with_timeout(Duration::from_secs(10));
    let guard = ServerJoin {
        handle: handle.clone(),
        join: Some(join),
    };
    (client, handle, guard)
}

/// Stops and joins the server on drop, so a failing assertion unwinds
/// into a clean teardown instead of deadlocking on a live accept loop.
struct ServerJoin {
    handle: adt_serve::ServerHandle,
    join: Option<std::thread::JoinHandle<Result<(), adt_core::AdtError>>>,
}

impl ServerJoin {
    fn finish(mut self) -> Result<(), adt_core::AdtError> {
        self.join.take().unwrap().join().unwrap()
    }
}

impl Drop for ServerJoin {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.handle.shutdown();
            let _ = join.join();
        }
    }
}

fn dirty_columns() -> Vec<Column> {
    let mut date = Column::from_strs(
        &["2011-01-01", "2012-02-02", "2013-03-03", "2014/04/04"],
        SourceTag::Local,
    );
    date.header = Some("date".into());
    let mut amount = Column::from_strs(&["1", "2", "3,000"], SourceTag::Local);
    amount.header = Some("amount".into());
    vec![date, amount]
}

#[test]
fn scan_round_trip_matches_direct_engine() {
    let (client, handle, join) = start("round_trip", ServeConfig::default());
    let columns = dirty_columns();
    let response = client.scan(None, &columns).unwrap();
    assert_eq!(response.model, "default");
    assert_eq!(response.generation, 1);
    assert_eq!(response.columns.len(), 2);
    assert_eq!(response.columns[0].header.as_deref(), Some("date"));

    let direct = ScanEngine::from_model(tiny_model())
        .with_threads(1)
        .scan_columns(&columns)
        .unwrap();
    assert_eq!(response.findings.len(), direct.findings.len());
    for (remote, local) in response.findings.iter().zip(&direct.findings) {
        assert_eq!(remote.column, local.column_index);
        assert_eq!(remote.suspect, local.finding.suspect);
        assert_eq!(remote.witness, local.finding.witness);
        assert_eq!(remote.confidence, local.finding.confidence);
        assert_eq!(remote.score, local.finding.score);
    }
    assert_eq!(response.findings[0].suspect, "2014/04/04");

    handle.shutdown();
    join.finish().unwrap();
}

#[test]
fn wire_protocol_rejects_bad_requests_with_correct_codes() {
    let config = ServeConfig {
        max_body_bytes: 4096,
        ..ServeConfig::default()
    };
    let (client, handle, join) = start("wire_protocol", config);

    let status_of = |err: ClientError| match err {
        ClientError::Status { status, .. } => status,
        other => panic!("expected status error, got {other}"),
    };

    // Unknown route and wrong method.
    assert_eq!(status_of(client.get("/v1/nope").unwrap_err()), 404);
    assert_eq!(status_of(client.get("/v1/scan").unwrap_err()), 405);

    // Unknown model.
    let err = client.scan(Some("missing"), &dirty_columns()).unwrap_err();
    match err {
        ClientError::Status { status, message } => {
            assert_eq!(status, 404);
            assert!(message.contains("missing"), "{message}");
        }
        other => panic!("{other}"),
    }

    // Hand-rolled requests for the byte-level cases.
    let raw = |payload: &str| -> u16 {
        let mut s = TcpStream::connect(client.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(payload.as_bytes()).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        buf.split_whitespace()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no status in {buf:?}"))
    };

    // Malformed JSON body → 400.
    let body = "{not json";
    assert_eq!(
        raw(&format!(
            "POST /v1/scan HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )),
        400
    );
    // Valid JSON, invalid message shape → 400.
    let body = r#"{"columns": 7}"#;
    assert_eq!(
        raw(&format!(
            "POST /v1/scan HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )),
        400
    );
    // Oversized body → 413 without reading it.
    assert_eq!(
        raw("POST /v1/scan HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"),
        413
    );
    // Garbage request line → 400.
    assert_eq!(raw("EHLO hi\r\n\r\n"), 400);
    // Chunked framing → 411.
    assert_eq!(
        raw("POST /v1/scan HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
        411
    );

    // The server is still healthy after all of that.
    let health = client.get("/v1/healthz").unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    handle.shutdown();
    join.finish().unwrap();
}

#[test]
fn ensemble_scan_reports_lanes_and_rejects_unknown_detectors() {
    let (client, handle, join) = start("ensemble", ServeConfig::default());
    let columns = dirty_columns();
    let names = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };

    // Unknown detector → 400 naming the offender.
    let err = client
        .scan_ensemble(None, &columns, &names(&["autodetect", "nonesuch"]), None)
        .unwrap_err();
    match err {
        ClientError::Status { status, message } => {
            assert_eq!(status, 400);
            assert!(message.contains("nonesuch"), "{message}");
        }
        other => panic!("expected status error, got {other}"),
    }
    // Duplicate detectors → 400.
    let err = client
        .scan_ensemble(None, &columns, &names(&["fregex", "f-regex"]), None)
        .unwrap_err();
    match err {
        ClientError::Status { status, message } => {
            assert_eq!(status, 400);
            assert!(message.contains("duplicate"), "{message}");
        }
        other => panic!("expected status error, got {other}"),
    }
    // Vote threshold above the set size → 400.
    let err = client
        .scan_ensemble(None, &columns, &names(&["autodetect"]), Some("vote:3"))
        .unwrap_err();
    match err {
        ClientError::Status { status, message } => {
            assert_eq!(status, 400);
            assert!(message.contains("vote"), "{message}");
        }
        other => panic!("expected status error, got {other}"),
    }
    // `merge` without `detectors` is rejected at the protocol layer.
    let body = r#"{"columns": [{"values": ["a"]}], "merge": "union"}"#;
    let mut s = TcpStream::connect(client.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        format!(
            "POST /v1/scan HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .as_bytes(),
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 400"), "{buf:?}");

    // Happy path: two detectors, union merge, per-detector lanes.
    let response = client
        .scan_ensemble(None, &columns, &names(&["autodetect", "fregex"]), None)
        .unwrap();
    assert_eq!(response.model, "default");
    assert_eq!(response.columns.len(), 2);
    let ensemble = response.ensemble.expect("ensemble section missing");
    assert_eq!(ensemble.merge, "union");
    let lane_names: Vec<&str> = ensemble.detectors.iter().map(|l| l.name.as_str()).collect();
    assert_eq!(lane_names, ["Auto-Detect", "F-Regex"]);
    for lane in &ensemble.detectors {
        assert_eq!(lane.columns, 2, "{}", lane.name);
    }
    assert!(!response.findings.is_empty());
    assert!(
        response.findings.iter().any(|f| f.suspect == "2014/04/04"),
        "union of autodetect+fregex should keep the model's top suspect"
    );
    for f in &response.findings {
        assert!(
            f.witness.is_empty(),
            "rank-pooled findings carry no witness"
        );
        assert_eq!(f.score, 0.0);
    }
    // Plain scans keep the old shape.
    let plain = client.scan(None, &columns).unwrap();
    assert!(plain.ensemble.is_none());

    let stats = client.get("/v1/stats").unwrap();
    assert_eq!(stats.get("ensemble_scans").and_then(Json::as_u64), Some(1));
    let lanes = stats.get("detectors").unwrap();
    assert!(
        lanes
            .get("Auto-Detect")
            .and_then(|l| l.get("columns"))
            .and_then(Json::as_u64)
            >= Some(2)
    );
    assert!(lanes.get("F-Regex").is_some());

    handle.shutdown();
    join.finish().unwrap();
}

#[test]
fn concurrent_clients_get_engine_identical_results() {
    let config = ServeConfig {
        workers: 4,
        engine_threads: 2,
        ..ServeConfig::default()
    };
    let (client, handle, join) = start("concurrency", config);

    // Each client thread scans a distinct column set; expectations come
    // from a direct single-threaded engine scan of the same columns.
    let model = Arc::new(tiny_model());
    let cases: Vec<Vec<Column>> = (0..8)
        .map(|i| {
            let mut cols = dirty_columns();
            cols[0].values.push(format!("20{:02}-05-05", (i * 3) % 30));
            if i % 2 == 0 {
                cols.push(Column::from_strs(
                    &["2011/01/01", "2011-02-02", "2011/03/03"],
                    SourceTag::Local,
                ));
            }
            cols
        })
        .collect();
    let expected: Vec<Vec<String>> = cases
        .iter()
        .map(|cols| {
            ScanEngine::new(Arc::clone(&model))
                .with_threads(1)
                .scan_columns(cols)
                .unwrap()
                .findings
                .iter()
                .map(|f| {
                    format!(
                        "{}|{}|{}|{}|{}",
                        f.column_index,
                        f.finding.suspect,
                        f.finding.witness,
                        f.finding.confidence,
                        f.finding.score
                    )
                })
                .collect()
        })
        .collect();

    const ROUNDS: usize = 5;
    let mut threads = Vec::new();
    for (case, want) in cases.into_iter().zip(expected) {
        let client = client.clone();
        threads.push(std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                let response = client.scan(None, &case).expect("scan failed");
                let got: Vec<String> = response
                    .findings
                    .iter()
                    .map(|f| {
                        format!(
                            "{}|{}|{}|{}|{}",
                            f.column, f.suspect, f.witness, f.confidence, f.score
                        )
                    })
                    .collect();
                assert_eq!(got, want, "served findings diverged from direct engine");
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }

    let stats = client.get("/v1/stats").unwrap();
    let scans = stats.get("scans_ok").and_then(Json::as_u64).unwrap();
    assert_eq!(scans, 8 * ROUNDS as u64);
    let batches = stats.get("batches").and_then(Json::as_u64).unwrap();
    assert!(batches >= 1 && batches <= scans, "batches {batches}");
    assert!(stats.get("scan_latency_p50_us").unwrap().as_u64().is_some());
    assert_eq!(
        stats
            .get("model_hits")
            .and_then(|m| m.get("default"))
            .and_then(Json::as_u64),
        Some(scans)
    );

    handle.shutdown();
    join.finish().unwrap();
}

#[test]
fn hot_reload_swaps_model_between_requests() {
    let (client, handle, join) = start("hot_reload", ServeConfig::default());
    let path = {
        // Recover the registry dir from the test helper's convention.
        std::env::temp_dir()
            .join("adt_serve_tests")
            .join("hot_reload")
            .join("default.bin")
    };

    let before = client.scan(None, &dirty_columns()).unwrap();
    assert_eq!(before.generation, 1);
    let models = client.get("/v1/models").unwrap();
    let row = &models.get("models").unwrap().as_arr().unwrap()[0];
    assert_eq!(row.get("languages").and_then(Json::as_u64), Some(2));

    // Retrain (atomically) to a distinguishable model.
    save_model(&tiny_model_one_language(), &path).unwrap();

    let after = client.scan(None, &dirty_columns()).unwrap();
    assert_eq!(after.generation, 2, "hot-reload should bump generation");
    let models = client.get("/v1/models").unwrap();
    let row = &models.get("models").unwrap().as_arr().unwrap()[0];
    assert_eq!(row.get("languages").and_then(Json::as_u64), Some(1));
    let stats = client.get("/v1/stats").unwrap();
    assert_eq!(stats.get("model_reloads").and_then(Json::as_u64), Some(1));

    // Corrupt file: keeps serving the generation-2 model.
    std::fs::write(&path, b"garbage").unwrap();
    let stale = client.scan(None, &dirty_columns()).unwrap();
    assert_eq!(stale.generation, 2);
    let stats = client.get("/v1/stats").unwrap();
    assert!(stats.get("model_reload_errors").and_then(Json::as_u64) >= Some(1));

    handle.shutdown();
    join.finish().unwrap();
}

#[test]
fn full_queue_rejects_with_503_and_drains_after() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        io_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    };
    let (client, handle, join) = start("busy", config);

    // Occupy the single worker with an idle connection, fill the
    // one-slot queue with another, then watch the third get shed.
    let hold_worker = TcpStream::connect(client.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(300)); // let the worker adopt it
    let hold_queue = TcpStream::connect(client.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let mut shed = TcpStream::connect(client.addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = String::new();
    shed.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 503"), "expected 503, got {buf:?}");
    assert!(buf.contains("busy"), "{buf:?}");

    drop(hold_worker);
    drop(hold_queue);
    // The worker frees up (idle holders closed) and normal service
    // resumes — retry through the tail of the drain.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let response = loop {
        match client.scan(None, &dirty_columns()) {
            Ok(r) => break r,
            Err(ClientError::Status { status: 503, .. })
                if std::time::Instant::now() < deadline =>
            {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(other) => panic!("scan did not recover after drain: {other}"),
        }
    };
    assert!(!response.findings.is_empty());
    let stats = client.get("/v1/stats").unwrap();
    assert!(stats.get("rejected_busy").and_then(Json::as_u64) >= Some(1));

    handle.shutdown();
    join.finish().unwrap();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let config = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let (client, handle, join) = start("shutdown", config);

    // Clients hammer the server while another thread pulls the plug;
    // every request that got a connection must get a complete response.
    let mut threads = Vec::new();
    for _ in 0..4 {
        let client = client.clone();
        threads.push(std::thread::spawn(move || {
            let mut completed = 0usize;
            for _ in 0..20 {
                match client.scan(None, &dirty_columns()) {
                    Ok(response) => {
                        assert_eq!(response.columns.len(), 2);
                        completed += 1;
                    }
                    // Connection refused/reset after shutdown is fine;
                    // a *served* request must never be half-answered.
                    Err(ClientError::Io(_)) => break,
                    Err(ClientError::Status { status: 503, .. }) => continue,
                    Err(other) => panic!("unexpected failure: {other}"),
                }
            }
            completed
        }));
    }
    std::thread::sleep(Duration::from_millis(150));
    client.shutdown().unwrap();
    join.finish().unwrap();

    let completed: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(completed > 0, "no request completed before shutdown");
    // The listener is gone.
    assert!(TcpStream::connect_timeout(&client.addr(), Duration::from_millis(500)).is_err());
    // Idempotent from the handle side too.
    handle.shutdown();
}

fn clean_web_corpus(columns: usize) -> Corpus {
    let mut p = CorpusProfile::web(columns);
    p.dirty_rate = 0.0;
    generate_corpus(&p)
}

#[test]
fn learn_loop_retrains_and_swaps_under_concurrent_scans() {
    let corpus = clean_web_corpus(600);
    let split = 400;
    let seed = Corpus::from_columns(corpus.columns()[..split].to_vec());
    let delta: Vec<Column> = corpus.columns()[split..].to_vec();

    let train = AutoDetectConfig {
        training_examples: 2_000,
        train_threads: 2,
        ..AutoDetectConfig::small()
    };
    let learn = LearnConfig {
        absorb_columns: 150,
        // Long enough that only the column threshold can fire, so the
        // test sees exactly one retrain.
        absorb_interval: Duration::from_secs(3_600),
        queue_capacity: 16,
        seed_corpus: Some(seed),
        ..LearnConfig::new(train)
    };
    let config = ServeConfig {
        workers: 4,
        learn: Some(learn),
        ..ServeConfig::default()
    };
    let (client, handle, join) = start("learn_loop", config);

    let before = client.scan(None, &dirty_columns()).unwrap();
    assert_eq!(before.generation, 1);

    // Scan continuously while the learner ingests, retrains, and swaps:
    // every scan must succeed, on generation 1 or 2 and nothing else —
    // a half-installed model would surface here as a failure or a
    // generation outside the set.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut scanners = Vec::new();
    for _ in 0..3 {
        let client = client.clone();
        let stop = Arc::clone(&stop);
        scanners.push(std::thread::spawn(move || {
            let mut seen = std::collections::BTreeSet::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let r = client
                    .scan(None, &dirty_columns())
                    .expect("scan during retrain");
                assert!(
                    r.generation == 1 || r.generation == 2,
                    "mixed/unknown generation {}",
                    r.generation
                );
                seen.insert(r.generation);
            }
            seen
        }));
    }

    // Stream the delta through both ingest paths: explicit uploads and
    // the scan tap. 200 columns crosses the 150-column threshold.
    let mut sent = 0u64;
    for chunk in delta.chunks(50) {
        let accepted = client.learn(chunk).unwrap();
        assert_eq!(accepted, chunk.len() as u64);
        sent += accepted;
    }
    assert!(sent >= 150, "sent {sent}");
    let tapped = client.scan_and_learn(None, &dirty_columns()).unwrap();
    assert!(tapped.generation >= 1);

    // Wait for the retrain + swap to land.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    let learn_stats = loop {
        let stats = client.get("/v1/stats").unwrap();
        let learn = stats
            .get("learn")
            .expect("stats carry a learn section")
            .clone();
        if learn.get("swaps").and_then(Json::as_u64) >= Some(1) {
            break learn;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "learner never swapped: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(learn_stats.get("errors").and_then(Json::as_u64), Some(0));
    assert_eq!(learn_stats.get("skipped").and_then(Json::as_u64), Some(0));
    assert!(learn_stats.get("retrains").and_then(Json::as_u64) >= Some(1));
    assert!(learn_stats.get("ingested_columns").and_then(Json::as_u64) >= Some(sent));
    assert!(learn_stats.get("requests").and_then(Json::as_u64) >= Some(4));

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut seen = std::collections::BTreeSet::new();
    for t in scanners {
        seen.extend(t.join().unwrap());
    }
    assert!(seen.contains(&1), "generations observed: {seen:?}");

    // The swap is already live: the very next scan serves generation 2,
    // and the model is the retrained one (not the 2-language tiny seed).
    let after = client.scan(None, &dirty_columns()).unwrap();
    assert_eq!(after.generation, 2);
    let models = client.get("/v1/models").unwrap();
    let row = &models.get("models").unwrap().as_arr().unwrap()[0];
    assert!(row.get("languages").and_then(Json::as_u64) >= Some(1));

    handle.shutdown();
    join.finish().unwrap();
}

#[test]
fn learn_endpoints_reject_when_learning_is_disabled() {
    let (client, handle, join) = start("learn_disabled", ServeConfig::default());

    // POST /v1/learn without a learn loop → 409.
    match client.learn(&dirty_columns()).unwrap_err() {
        ClientError::Status { status, message } => {
            assert_eq!(status, 409);
            assert!(message.contains("disabled"), "{message}");
        }
        other => panic!("expected status error, got {other}"),
    }
    // `"learn": true` on a scan is an explicit request, not a hint — it
    // fails loudly rather than silently not learning.
    match client.scan_and_learn(None, &dirty_columns()).unwrap_err() {
        ClientError::Status { status, message } => {
            assert_eq!(status, 400);
            assert!(message.contains("learn"), "{message}");
        }
        other => panic!("expected status error, got {other}"),
    }
    // Plain scans are untouched.
    assert!(client.scan(None, &dirty_columns()).is_ok());

    handle.shutdown();
    join.finish().unwrap();
}

#[test]
fn shutdown_endpoint_alone_stops_the_server() {
    let (client, _handle, join) = start("shutdown_endpoint", ServeConfig::default());
    client.shutdown().unwrap();
    join.finish().unwrap();
}
