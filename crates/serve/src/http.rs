//! Minimal HTTP/1.1 framing over `std::net` — just enough for the
//! detection protocol: request-line + headers + `Content-Length` bodies
//! in, status + JSON bodies out, with keep-alive. No TLS, no chunked
//! transfer encoding (a request declaring one is rejected with `411`),
//! and a hard request-size limit enforced *before* the body is read so an
//! oversized upload costs one header parse, not an allocation.

use std::io::{self, BufRead, Write};

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string included.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to keep the connection open (the
    /// HTTP/1.1 default, unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request (→ `400`).
    Malformed(String),
    /// Declared body exceeds the configured limit (→ `413`).
    BodyTooLarge { declared: usize, limit: usize },
    /// `Transfer-Encoding` present; only `Content-Length` framing is
    /// supported (→ `411`).
    LengthRequired,
    /// The socket failed or timed out mid-request.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit of {limit}")
            }
            HttpError::LengthRequired => write!(f, "only Content-Length framing is supported"),
            HttpError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

/// Longest accepted request line or header line, a hygiene bound against
/// unframed garbage on the socket.
const MAX_LINE: usize = 16 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;

fn read_line<R: BufRead>(r: &mut R) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = r.fill_buf().map_err(HttpError::Io)?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None) // clean EOF between requests
            } else {
                Err(HttpError::Malformed("truncated line".into()))
            };
        }
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (buf.len(), false),
        };
        line.extend_from_slice(&buf[..chunk]);
        r.consume(chunk);
        if line.len() > MAX_LINE {
            return Err(HttpError::Malformed("header line too long".into()));
        }
        if done {
            while matches!(line.last(), Some(b'\n' | b'\r')) {
                line.pop();
            }
            return Ok(Some(
                String::from_utf8(line)
                    .map_err(|_| HttpError::Malformed("non-UTF-8 header".into()))?,
            ));
        }
    }
}

/// Reads one request. `Ok(None)` means the peer closed the connection
/// cleanly between requests (normal keep-alive termination).
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing path".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported {version}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?
            .ok_or_else(|| HttpError::Malformed("connection closed in headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::LengthRequired);
    }
    if let Some(len) = req.header("content-length") {
        let declared: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {len:?}")))?;
        if declared > max_body {
            return Err(HttpError::BodyTooLarge {
                declared,
                limit: max_body,
            });
        }
        let mut body = vec![0u8; declared];
        io::Read::read_exact(r, &mut body).map_err(HttpError::Io)?;
        req.body = body;
    }
    Ok(Some(req))
}

/// Standard reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one JSON response. `keep_alive: false` adds `Connection:
/// close` so well-behaved clients stop reusing the socket.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}\r\n{}",
        status,
        reason(status),
        body.len(),
        if keep_alive {
            ""
        } else {
            "Connection: close\r\n"
        },
        body,
    )?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_request_with_body() {
        let raw = "POST /v1/scan HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut Cursor::new(raw), 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/scan");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let raw = "GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw), 1024).unwrap().unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_request(&mut Cursor::new(""), 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_body_rejected_before_read() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        match read_request(&mut Cursor::new(raw), 1024) {
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                assert_eq!(declared, 999999);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_rejected() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            assert!(
                read_request(&mut Cursor::new(raw), 1024).is_err(),
                "accepted {raw:?}"
            );
        }
    }

    #[test]
    fn transfer_encoding_needs_length() {
        let raw = "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(raw), 1024),
            Err(HttpError::LengthRequired)
        ));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
