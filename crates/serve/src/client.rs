//! A small blocking client for the detection protocol — the other half
//! of `autodetect query` and of the integration tests. One request per
//! call; [`Client::scan`] opens a fresh connection (callers that want
//! keep-alive throughput use [`Connection`] directly).

use crate::json::{self, Json};
use crate::protocol::{self, ScanResponse};
use adt_corpus::Column;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect / read / write.
    Io(std::io::Error),
    /// The response was not valid HTTP or JSON.
    Malformed(String),
    /// The server answered with an error status.
    Status { status: u16, message: String },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed response: {m}"),
            ClientError::Status { status, message } => {
                write!(f, "server returned {status}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A parsed HTTP response (client side).
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Parsed JSON body.
    pub body: Json,
}

/// One keep-alive connection to a detection server.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connects with the given I/O timeout.
    pub fn open(addr: &SocketAddr, timeout: Duration) -> Result<Connection, ClientError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection { stream, reader })
    }

    /// Sends one request and reads the JSON response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<Response, ClientError> {
        let body_text = body.map(Json::to_text).unwrap_or_default();
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: adt\r\nContent-Length: {}\r\n\r\n{}",
            body_text.len(),
            body_text
        )?;
        self.stream.flush()?;
        read_json_response(&mut self.reader)
    }
}

/// Reads a status line + headers + `Content-Length` JSON body.
fn read_json_response<R: BufRead>(r: &mut R) -> Result<Response, ClientError> {
    let mut status_line = String::new();
    r.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        r.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Malformed("bad Content-Length".into()))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|_| ClientError::Malformed("response body is not UTF-8".into()))?;
    let body =
        json::parse(&text).map_err(|e| ClientError::Malformed(format!("body not JSON: {e}")))?;
    Ok(Response { status, body })
}

fn status_error(resp: Response) -> ClientError {
    let message = resp
        .body
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("(no error message)")
        .to_string();
    ClientError::Status {
        status: resp.status,
        message,
    }
}

/// Convenience client: resolves the address once, opens one connection
/// per call.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:8080`).
    pub fn new(addr: &str) -> Result<Client, ClientError> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Malformed(format!("address {addr:?} did not resolve")))?;
        Ok(Client {
            addr: resolved,
            timeout: Duration::from_secs(30),
        })
    }

    /// Overrides the default 30 s I/O timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The resolved server address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Opens a keep-alive connection for repeated requests.
    pub fn connect(&self) -> Result<Connection, ClientError> {
        Connection::open(&self.addr, self.timeout)
    }

    /// Scans `columns` under `model` (server default when `None`).
    pub fn scan(
        &self,
        model: Option<&str>,
        columns: &[Column],
    ) -> Result<ScanResponse, ClientError> {
        let body = protocol::scan_request_to_json(model, columns);
        let resp = self.connect()?.request("POST", "/v1/scan", Some(&body))?;
        if resp.status != 200 {
            return Err(status_error(resp));
        }
        protocol::parse_scan_response(&resp.body).map_err(|e| ClientError::Malformed(e.to_string()))
    }

    /// Scans `columns` through an explicit detector ensemble. `merge`
    /// falls back to the server default (`union`) when `None`; the
    /// response carries the per-detector lanes in `ensemble`.
    pub fn scan_ensemble(
        &self,
        model: Option<&str>,
        columns: &[Column],
        detectors: &[String],
        merge: Option<&str>,
    ) -> Result<ScanResponse, ClientError> {
        let body =
            protocol::scan_request_to_json_full(model, columns, Some(detectors), merge, false);
        let resp = self.connect()?.request("POST", "/v1/scan", Some(&body))?;
        if resp.status != 200 {
            return Err(status_error(resp));
        }
        protocol::parse_scan_response(&resp.body).map_err(|e| ClientError::Malformed(e.to_string()))
    }

    /// Scans `columns` and additionally feeds them to the server's
    /// online learner (`"learn": true` tap). The tap is best-effort: a
    /// full learn queue drops the batch without failing the scan.
    pub fn scan_and_learn(
        &self,
        model: Option<&str>,
        columns: &[Column],
    ) -> Result<ScanResponse, ClientError> {
        let body = protocol::scan_request_to_json_full(model, columns, None, None, true);
        let resp = self.connect()?.request("POST", "/v1/scan", Some(&body))?;
        if resp.status != 200 {
            return Err(status_error(resp));
        }
        protocol::parse_scan_response(&resp.body).map_err(|e| ClientError::Malformed(e.to_string()))
    }

    /// Uploads `columns` to the server's online learner without scanning
    /// them (`POST /v1/learn`). Returns the accepted column count; the
    /// server answers `503` (surfaced as [`ClientError::Status`]) when
    /// the learn queue is full.
    pub fn learn(&self, columns: &[Column]) -> Result<u64, ClientError> {
        let body = protocol::learn_request_to_json(columns);
        let resp = self.connect()?.request("POST", "/v1/learn", Some(&body))?;
        if resp.status != 202 {
            return Err(status_error(resp));
        }
        protocol::parse_learn_response(&resp.body)
            .map_err(|e| ClientError::Malformed(e.to_string()))
    }

    /// `GET`s a JSON endpoint (`/v1/healthz`, `/v1/stats`, `/v1/models`).
    pub fn get(&self, path: &str) -> Result<Json, ClientError> {
        let resp = self.connect()?.request("GET", path, None)?;
        if resp.status != 200 {
            return Err(status_error(resp));
        }
        Ok(resp.body)
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        let resp = self.connect()?.request("POST", "/v1/shutdown", None)?;
        if resp.status != 200 {
            return Err(status_error(resp));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_response() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 11\r\n\r\n{\"ok\":true}";
        let resp = read_json_response(&mut Cursor::new(raw)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage_status_line() {
        let raw = "FTP NOPE\r\n\r\n";
        assert!(matches!(
            read_json_response(&mut Cursor::new(raw)),
            Err(ClientError::Malformed(_))
        ));
    }

    #[test]
    fn error_status_carries_message() {
        let resp = Response {
            status: 404,
            body: crate::protocol::error_to_json("unknown model \"x\""),
        };
        let e = status_error(resp);
        let text = e.to_string();
        assert!(text.contains("404"), "{text}");
        assert!(text.contains("unknown model"), "{text}");
    }
}
