//! The model registry: named trained models loaded from a directory and
//! shared with request workers via `Arc`, with hot-reload.
//!
//! Every `*.bin` / `*.json` file in the directory is a model; its name is
//! the file stem (`models/prod.bin` → `prod`). Lookup stats the backing
//! file and reloads when its `(mtime, len)` fingerprint changed, bumping
//! the entry's **generation**; the swap replaces the `Arc` in the map, so
//! requests already holding the old model finish on it undisturbed —
//! hot-reload never drops in-flight work. A reload that fails to parse
//! (e.g. a partially copied file) keeps serving the previous model and
//! counts a `reload_error`; combined with the trainer's atomic
//! write-then-rename persistence this makes `retrain → overwrite → serve`
//! race-free.

use adt_core::{load_model, AdtError, AutoDetect};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::SystemTime;

/// A model resolved for one request.
#[derive(Debug, Clone)]
pub struct ModelHandle {
    /// Registry name (file stem).
    pub name: String,
    /// The shared model; clones keep it alive across hot-reloads.
    pub model: Arc<AutoDetect>,
    /// Load generation: 1 for the initial load, +1 per hot-reload.
    pub generation: u64,
}

#[derive(Debug)]
struct Entry {
    path: PathBuf,
    model: Arc<AutoDetect>,
    mtime: Option<SystemTime>,
    len: u64,
    generation: u64,
}

fn fingerprint(path: &Path) -> Option<(Option<SystemTime>, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok(), meta.len()))
}

/// Named models from one directory.
#[derive(Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
    entries: RwLock<HashMap<String, Entry>>,
    reload_errors: AtomicU64,
    reloads: AtomicU64,
}

impl ModelRegistry {
    /// Loads every model file in `dir`. Fails if the directory cannot be
    /// read, any model fails to load, or no model file is present (a
    /// server with nothing to serve is a deployment error worth failing
    /// fast on).
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<ModelRegistry, AdtError> {
        let dir = dir.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let is_model = path.extension().is_some_and(|e| e == "bin" || e == "json");
            if !is_model || !path.is_file() {
                continue;
            }
            let name = match path.file_stem().and_then(|s| s.to_str()) {
                Some(s) => s.to_string(),
                None => continue,
            };
            let (mtime, len) = fingerprint(&path).unwrap_or((None, 0));
            let model = Arc::new(load_model(&path)?);
            entries.insert(
                name,
                Entry {
                    path,
                    model,
                    mtime,
                    len,
                    generation: 1,
                },
            );
        }
        if entries.is_empty() {
            return Err(AdtError::Config(format!(
                "no model files (*.bin, *.json) in {}",
                dir.display()
            )));
        }
        Ok(ModelRegistry {
            dir,
            entries: RwLock::new(entries),
            reload_errors: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
        })
    }

    /// The directory models are served from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A poisoned lock means some other worker panicked mid-read or
    /// mid-swap; the map itself is still consistent (writers only ever
    /// install fully-built entries), so recover the guard instead of
    /// cascading the panic into every subsequent request.
    fn read_entries(&self) -> RwLockReadGuard<'_, HashMap<String, Entry>> {
        self.entries.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_entries(&self) -> RwLockWriteGuard<'_, HashMap<String, Entry>> {
        self.entries.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Sorted model names.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_entries().keys().cloned().collect();
        names.sort();
        names
    }

    /// The name a request without an explicit `model` resolves to: the
    /// model named `default` if present, otherwise the single loaded
    /// model, otherwise `None` (the caller must then name one).
    pub fn default_name(&self) -> Option<String> {
        let entries = self.read_entries();
        if entries.contains_key("default") {
            return Some("default".to_string());
        }
        if entries.len() == 1 {
            return entries.keys().next().cloned();
        }
        None
    }

    /// Hot-reloads performed since open.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Failed reload attempts since open (the stale model kept serving).
    pub fn reload_errors(&self) -> u64 {
        self.reload_errors.load(Ordering::Relaxed)
    }

    /// Resolves `name`, hot-reloading first when the backing file
    /// changed. Returns `None` for unknown names.
    pub fn get(&self, name: &str) -> Option<ModelHandle> {
        let (path, stale_fp) = {
            let entries = self.read_entries();
            let e = entries.get(name)?;
            match fingerprint(&e.path) {
                Some(fp) if fp != (e.mtime, e.len) => (e.path.clone(), fp),
                // Unchanged (or the file vanished: keep serving what we
                // have — models are immutable once loaded).
                _ => {
                    return Some(ModelHandle {
                        name: name.to_string(),
                        model: Arc::clone(&e.model),
                        generation: e.generation,
                    });
                }
            }
        };
        // Changed on disk: reload outside any lock (loads can be slow),
        // then swap under the write lock.
        match load_model(&path) {
            Ok(model) => {
                let mut entries = self.write_entries();
                let e = entries.get_mut(name)?;
                // Another worker may have won the race; only bump once
                // per observed fingerprint.
                if (e.mtime, e.len) != stale_fp {
                    e.model = Arc::new(model);
                    e.mtime = stale_fp.0;
                    e.len = stale_fp.1;
                    e.generation += 1;
                    self.reloads.fetch_add(1, Ordering::Relaxed);
                }
                Some(ModelHandle {
                    name: name.to_string(),
                    model: Arc::clone(&e.model),
                    generation: e.generation,
                })
            }
            Err(_) => {
                // Unreadable mid-write file: keep the old model.
                self.reload_errors.fetch_add(1, Ordering::Relaxed);
                let entries = self.read_entries();
                let e = entries.get(name)?;
                Some(ModelHandle {
                    name: name.to_string(),
                    model: Arc::clone(&e.model),
                    generation: e.generation,
                })
            }
        }
    }

    /// Per-model `(name, generation, languages, size_bytes)` rows for
    /// `/v1/models` and `/v1/stats`.
    pub fn describe(&self) -> Vec<(String, u64, usize, usize)> {
        let entries = self.read_entries();
        let mut rows: Vec<(String, u64, usize, usize)> = entries
            .iter()
            .map(|(name, e)| {
                (
                    name.clone(),
                    e.generation,
                    e.model.num_languages(),
                    e.model.size_bytes(),
                )
            })
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{tiny_model, tiny_model_one_language};
    use adt_core::save_model;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("adt_registry_tests").join(name);
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn open_requires_models() {
        let dir = tmp_dir("empty");
        let err = ModelRegistry::open(&dir).unwrap_err();
        assert!(err.to_string().contains("no model files"), "{err}");
    }

    #[test]
    fn loads_and_resolves_default() {
        let dir = tmp_dir("single");
        save_model(&tiny_model(), dir.join("prod.bin")).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        assert_eq!(reg.names(), vec!["prod"]);
        assert_eq!(reg.default_name().as_deref(), Some("prod"));
        let h = reg.get("prod").unwrap();
        assert_eq!(h.generation, 1);
        assert_eq!(h.model.num_languages(), 2);
        assert!(reg.get("nope").is_none());

        save_model(&tiny_model(), dir.join("default.bin")).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        assert_eq!(reg.default_name().as_deref(), Some("default"));
    }

    #[test]
    fn hot_reload_bumps_generation_and_keeps_old_arcs_alive() {
        let dir = tmp_dir("reload");
        let path = dir.join("m.bin");
        save_model(&tiny_model(), &path).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        let before = reg.get("m").unwrap();
        assert_eq!(before.model.num_languages(), 2);

        // Retrain: a distinguishable model, atomically swapped in.
        // (mtime granularity can be coarse; ensure the fingerprint moves
        // via the length too — the one-language model is smaller.)
        save_model(&tiny_model_one_language(), &path).unwrap();
        let after = reg.get("m").unwrap();
        assert_eq!(after.generation, 2);
        assert_eq!(after.model.num_languages(), 1);
        assert_eq!(reg.reloads(), 1);
        // The in-flight handle still sees the old model.
        assert_eq!(before.model.num_languages(), 2);
    }

    #[test]
    fn failed_reload_keeps_serving_stale_model() {
        let dir = tmp_dir("reload_fail");
        let path = dir.join("m.bin");
        save_model(&tiny_model(), &path).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        assert_eq!(reg.get("m").unwrap().generation, 1);

        std::fs::write(&path, b"not a model at all").unwrap();
        let h = reg.get("m").unwrap();
        assert_eq!(h.generation, 1, "stale model must keep serving");
        assert_eq!(h.model.num_languages(), 2);
        assert!(reg.reload_errors() >= 1);
    }
}
