//! The model registry: named trained models loaded from a directory and
//! shared with request workers via `Arc`, with hot-reload.
//!
//! Every `*.bin` / `*.json` file in the directory is a model; its name is
//! the file stem (`models/prod.bin` → `prod`). Lookup stats the backing
//! file and reloads when its fingerprint changed, bumping the entry's
//! **generation**; the swap replaces the `Arc` in the map, so requests
//! already holding the old model finish on it undisturbed — hot-reload
//! never drops in-flight work. A reload that fails to parse (e.g. a
//! partially copied file) keeps serving the previous model and counts a
//! `reload_error`; combined with the trainer's atomic write-then-rename
//! persistence this makes `retrain → overwrite → serve` race-free.
//!
//! The fingerprint is `(mtime, len, fnv64(content))`, but content is only
//! hashed while an entry is **racy** — loaded so close to its mtime that
//! a same-length rewrite inside the filesystem's timestamp granularity
//! could leave `(mtime, len)` unchanged (git's "racy clean" problem; the
//! online learner's rapid retrain-and-rename swaps hit exactly this).
//! Once the mtime has aged past the racy window and the hash still
//! matches, the entry settles and lookups go back to a single cheap
//! `stat`.

use adt_core::{load_model, AdtError, AutoDetect};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, SystemTime};

/// A model resolved for one request.
#[derive(Debug, Clone)]
pub struct ModelHandle {
    /// Registry name (file stem).
    pub name: String,
    /// The shared model; clones keep it alive across hot-reloads.
    pub model: Arc<AutoDetect>,
    /// Load generation: 1 for the initial load, +1 per hot-reload.
    pub generation: u64,
}

/// Identity of the bytes an entry was loaded from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    mtime: Option<SystemTime>,
    len: u64,
    fnv: u64,
}

#[derive(Debug)]
struct Entry {
    path: PathBuf,
    model: Arc<AutoDetect>,
    fp: Fingerprint,
    /// Loaded within [`RACY_WINDOW`] of its mtime: a same-length rewrite
    /// could keep `(mtime, len)` fixed, so lookups re-hash content until
    /// the entry settles.
    racy: bool,
    generation: u64,
}

/// Filesystems may round mtimes to whole seconds; a rewrite within this
/// window of the recorded mtime can be invisible to `stat`.
const RACY_WINDOW: Duration = Duration::from_secs(2);

fn stat_fingerprint(path: &Path) -> Option<(Option<SystemTime>, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok(), meta.len()))
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn hash_file(path: &Path) -> Option<u64> {
    std::fs::read(path).ok().map(|bytes| fnv64(&bytes))
}

/// True while a same-length rewrite could still leave `(mtime, len)`
/// unchanged — the file's mtime is within the clock-granularity window
/// of now (or unknown, which stays permanently suspect).
fn is_racy(mtime: Option<SystemTime>) -> bool {
    match mtime {
        Some(m) => {
            // adt-allow(determinism): reload-staleness window only; never reaches scan output
            SystemTime::now()
                .duration_since(m)
                .map_or(true, |age| age < RACY_WINDOW)
        }
        None => true,
    }
}

/// Named models from one directory.
#[derive(Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
    entries: RwLock<HashMap<String, Entry>>,
    reload_errors: AtomicU64,
    reloads: AtomicU64,
}

impl ModelRegistry {
    /// Loads every model file in `dir`. Fails if the directory cannot be
    /// read, any model fails to load, or no model file is present (a
    /// server with nothing to serve is a deployment error worth failing
    /// fast on).
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<ModelRegistry, AdtError> {
        let dir = dir.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let is_model = path.extension().is_some_and(|e| e == "bin" || e == "json");
            if !is_model || !path.is_file() {
                continue;
            }
            let name = match path.file_stem().and_then(|s| s.to_str()) {
                Some(s) => s.to_string(),
                None => continue,
            };
            let (mtime, len) = stat_fingerprint(&path).unwrap_or((None, 0));
            let fnv = hash_file(&path).unwrap_or(0);
            let model = Arc::new(load_model(&path)?);
            entries.insert(
                name,
                Entry {
                    path,
                    model,
                    fp: Fingerprint { mtime, len, fnv },
                    racy: is_racy(mtime),
                    generation: 1,
                },
            );
        }
        if entries.is_empty() {
            return Err(AdtError::Config(format!(
                "no model files (*.bin, *.json) in {}",
                dir.display()
            )));
        }
        Ok(ModelRegistry {
            dir,
            entries: RwLock::new(entries),
            reload_errors: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
        })
    }

    /// The directory models are served from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The backing file of a loaded model — where a retrain must write
    /// (atomically, via [`adt_core::save_model`]) for hot-reload to pick
    /// the new generation up. `None` for unknown names.
    pub fn path_of(&self, name: &str) -> Option<PathBuf> {
        self.read_entries().get(name).map(|e| e.path.clone())
    }

    /// A poisoned lock means some other worker panicked mid-read or
    /// mid-swap; the map itself is still consistent (writers only ever
    /// install fully-built entries), so recover the guard instead of
    /// cascading the panic into every subsequent request.
    fn read_entries(&self) -> RwLockReadGuard<'_, HashMap<String, Entry>> {
        self.entries.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_entries(&self) -> RwLockWriteGuard<'_, HashMap<String, Entry>> {
        self.entries.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Sorted model names.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_entries().keys().cloned().collect();
        names.sort();
        names
    }

    /// The name a request without an explicit `model` resolves to: the
    /// model named `default` if present, otherwise the single loaded
    /// model, otherwise `None` (the caller must then name one).
    pub fn default_name(&self) -> Option<String> {
        let entries = self.read_entries();
        if entries.contains_key("default") {
            return Some("default".to_string());
        }
        if entries.len() == 1 {
            return entries.keys().next().cloned();
        }
        None
    }

    /// Hot-reloads performed since open.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Failed reload attempts since open (the stale model kept serving).
    pub fn reload_errors(&self) -> u64 {
        self.reload_errors.load(Ordering::Relaxed)
    }

    /// Resolves `name`, hot-reloading first when the backing file
    /// changed. Returns `None` for unknown names.
    ///
    /// Settled entries pay one `stat`; racy entries (see [`Entry::racy`])
    /// additionally hash the file so a same-length same-second rewrite is
    /// still caught.
    pub fn get(&self, name: &str) -> Option<ModelHandle> {
        // Cheap pass under the read lock: stat-only compare, plus the
        // stale handle every keep-serving path returns.
        let (stale, check) = {
            let entries = self.read_entries();
            let e = entries.get(name)?;
            let stale = ModelHandle {
                name: name.to_string(),
                model: Arc::clone(&e.model),
                generation: e.generation,
            };
            let check = match stat_fingerprint(&e.path) {
                // The file vanished: keep serving what we have — models
                // are immutable once loaded.
                None => None,
                Some(meta) => {
                    let moved = meta != (e.fp.mtime, e.fp.len);
                    if moved || e.racy {
                        Some((e.path.clone(), e.fp, meta, moved))
                    } else {
                        None
                    }
                }
            };
            (stale, check)
        };
        let Some((path, known, meta, moved)) = check else {
            return Some(stale);
        };

        // Outside any lock: the content hash decides what the stat
        // could not.
        let fnv = match hash_file(&path) {
            Some(fnv) => fnv,
            // Unreadable (mid-rename?): a moved stat still attempts the
            // reload below (load_model classifies the failure); a
            // racy-only probe keeps serving.
            None if moved => known.fnv,
            None => return Some(stale),
        };
        let new_fp = Fingerprint {
            mtime: meta.0,
            len: meta.1,
            fnv,
        };
        if !moved && fnv == known.fnv {
            // Racy probe, content unchanged. Once the mtime has aged out
            // of the window, settle the entry so lookups stop hashing.
            if !is_racy(known.mtime) {
                let mut entries = self.write_entries();
                if let Some(e) = entries.get_mut(name) {
                    if e.fp == known {
                        e.racy = false;
                    }
                }
            }
            return Some(stale);
        }

        // Changed on disk: reload outside any lock (loads can be slow),
        // then swap under the write lock.
        match load_model(&path) {
            Ok(model) => {
                let mut entries = self.write_entries();
                let e = entries.get_mut(name)?;
                // Another worker may have won the race; only bump once
                // per observed fingerprint.
                if e.fp != new_fp {
                    e.model = Arc::new(model);
                    e.fp = new_fp;
                    e.racy = is_racy(new_fp.mtime);
                    e.generation += 1;
                    self.reloads.fetch_add(1, Ordering::Relaxed);
                }
                Some(ModelHandle {
                    name: name.to_string(),
                    model: Arc::clone(&e.model),
                    generation: e.generation,
                })
            }
            Err(_) => {
                // Unreadable mid-write file: keep the old model.
                self.reload_errors.fetch_add(1, Ordering::Relaxed);
                Some(stale)
            }
        }
    }

    /// Per-model `(name, generation, languages, size_bytes)` rows for
    /// `/v1/models` and `/v1/stats`.
    pub fn describe(&self) -> Vec<(String, u64, usize, usize)> {
        let entries = self.read_entries();
        let mut rows: Vec<(String, u64, usize, usize)> = entries
            .iter()
            .map(|(name, e)| {
                (
                    name.clone(),
                    e.generation,
                    e.model.num_languages(),
                    e.model.size_bytes(),
                )
            })
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{tiny_model, tiny_model_one_language};
    use adt_core::save_model;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("adt_registry_tests").join(name);
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn open_requires_models() {
        let dir = tmp_dir("empty");
        let err = ModelRegistry::open(&dir).unwrap_err();
        assert!(err.to_string().contains("no model files"), "{err}");
    }

    #[test]
    fn loads_and_resolves_default() {
        let dir = tmp_dir("single");
        save_model(&tiny_model(), dir.join("prod.bin")).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        assert_eq!(reg.names(), vec!["prod"]);
        assert_eq!(reg.default_name().as_deref(), Some("prod"));
        let h = reg.get("prod").unwrap();
        assert_eq!(h.generation, 1);
        assert_eq!(h.model.num_languages(), 2);
        assert!(reg.get("nope").is_none());

        save_model(&tiny_model(), dir.join("default.bin")).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        assert_eq!(reg.default_name().as_deref(), Some("default"));
    }

    #[test]
    fn hot_reload_bumps_generation_and_keeps_old_arcs_alive() {
        let dir = tmp_dir("reload");
        let path = dir.join("m.bin");
        save_model(&tiny_model(), &path).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        let before = reg.get("m").unwrap();
        assert_eq!(before.model.num_languages(), 2);

        // Retrain: a distinguishable model, atomically swapped in.
        // (mtime granularity can be coarse; ensure the fingerprint moves
        // via the length too — the one-language model is smaller.)
        save_model(&tiny_model_one_language(), &path).unwrap();
        let after = reg.get("m").unwrap();
        assert_eq!(after.generation, 2);
        assert_eq!(after.model.num_languages(), 1);
        assert_eq!(reg.reloads(), 1);
        // The in-flight handle still sees the old model.
        assert_eq!(before.model.num_languages(), 2);
    }

    #[test]
    fn same_length_same_mtime_swap_still_reloads() {
        let dir = tmp_dir("racy_swap");
        let path = dir.join("m.bin");
        save_model(&tiny_model(), &path).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        let before = reg.get("m").unwrap();
        assert_eq!(before.generation, 1);
        let mtime = std::fs::metadata(&path).unwrap().modified().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();

        // Retrain to a model whose bytes differ only in an f64 — the file
        // keeps its exact length — then pin the mtime back so the
        // (mtime, len) stat is byte-for-byte identical to the original.
        // This is the learner's rapid-swap worst case; only the content
        // hash can see it.
        let mut swapped = tiny_model();
        swapped.languages[0].calibration.theta = Some(-0.25);
        save_model(&swapped, &path).unwrap();
        std::fs::File::options()
            .append(true)
            .open(&path)
            .unwrap()
            .set_modified(mtime)
            .unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len);
        assert_eq!(std::fs::metadata(&path).unwrap().modified().unwrap(), mtime);

        let after = reg.get("m").unwrap();
        assert_eq!(after.generation, 2, "content hash must catch the swap");
        assert_eq!(after.model.languages[0].calibration.theta, Some(-0.25));
        // The in-flight handle still sees the pre-swap model.
        assert_eq!(before.model.languages[0].calibration.theta, Some(-0.4));
    }

    #[test]
    fn racy_entry_settles_once_mtime_ages_out() {
        let dir = tmp_dir("racy_settle");
        let path = dir.join("m.bin");
        save_model(&tiny_model(), &path).unwrap();
        // Age the file past the racy window before the registry loads it.
        let old = SystemTime::now() - Duration::from_secs(10);
        std::fs::File::options()
            .append(true)
            .open(&path)
            .unwrap()
            .set_modified(old)
            .unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        assert!(
            !reg.read_entries().get("m").unwrap().racy,
            "old mtime must load settled"
        );

        // A racy load settles after one lookup past the window.
        save_model(&tiny_model(), &path).unwrap();
        assert_eq!(reg.get("m").unwrap().generation, 2);
        assert!(reg.read_entries().get("m").unwrap().racy);
        let aged = SystemTime::now() - Duration::from_secs(10);
        std::fs::File::options()
            .append(true)
            .open(&path)
            .unwrap()
            .set_modified(aged)
            .unwrap();
        let h = reg.get("m").unwrap(); // reload: mtime moved
        assert_eq!(h.generation, 3);
        let _ = reg.get("m").unwrap(); // settles: aged mtime, same hash
        assert!(!reg.read_entries().get("m").unwrap().racy);
    }

    #[test]
    fn failed_reload_keeps_serving_stale_model() {
        let dir = tmp_dir("reload_fail");
        let path = dir.join("m.bin");
        save_model(&tiny_model(), &path).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        assert_eq!(reg.get("m").unwrap().generation, 1);

        std::fs::write(&path, b"not a model at all").unwrap();
        let h = reg.get("m").unwrap();
        assert_eq!(h.generation, 1, "stale model must keep serving");
        assert_eq!(h.model.num_languages(), 2);
        assert!(reg.reload_errors() >= 1);
    }
}
