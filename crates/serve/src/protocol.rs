//! The wire protocol: JSON shapes shared by server and client, so the
//! two sides cannot drift apart.
//!
//! `POST /v1/scan` request:
//!
//! ```json
//! {"model": "prod",
//!  "columns": [{"header": "date", "values": ["2011-01-01", "2011/01/02"]}]}
//! ```
//!
//! Optional ensemble fields: `"detectors": ["autodetect", "fregex"]`
//! routes the scan through the multi-detector engine (an unknown name is
//! a 400 carrying the offending name), and `"merge": "vote:2"` picks the
//! merge policy (`union` when absent; `"merge"` without `"detectors"` is
//! a 400). Ensemble responses add an `"ensemble"` section with the merge
//! policy and per-detector lanes; their findings carry an empty
//! `witness` and a zero `score` (rank-pooled confidences have no single
//! witnessing pair).
//!
//! Response:
//!
//! ```json
//! {"model": "prod", "generation": 1, "batched_with": 0,
//!  "findings": [{"column": 0, "header": "date", "suspect": "2011/01/02",
//!                "witness": "2011-01-01", "confidence": 0.97, "score": -0.62}],
//!  "columns": [{"index": 0, "header": "date", "values_scored": 2, "findings": 1}]}
//! ```
//!
//! Errors are `{"error": "<message>"}` with a 4xx/5xx status.

use crate::json::Json;
use adt_core::{ColumnSummary, DetectorLane, TableFinding};
use adt_corpus::{Column, SourceTag};

/// A parsed scan request.
#[derive(Debug)]
pub struct ScanRequest {
    /// Requested model name; `None` selects the registry default.
    pub model: Option<String>,
    /// Columns to scan, in request order.
    pub columns: Vec<Column>,
    /// Detector set for an ensemble scan; `None` means the plain
    /// single-model path through the micro-batcher.
    pub detectors: Option<Vec<String>>,
    /// Merge policy spelling (`union`, `vote:k`, `calibrated`); only
    /// meaningful alongside `detectors`.
    pub merge: Option<String>,
    /// Opt-in learning tap: after the scan, the columns are also queued
    /// for the server's online learner. Requires a learn-enabled server.
    pub learn: bool,
}

/// One finding on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFinding {
    /// Column index within the request.
    pub column: usize,
    /// The request column's header, when given.
    pub header: Option<String>,
    /// The value predicted to be an error.
    pub suspect: String,
    /// The in-column value it clashes with.
    pub witness: String,
    /// Confidence `Q` of the witnessing pair.
    pub confidence: f64,
    /// Most negative firing NPMI score.
    pub score: f64,
}

/// Per-column outcome on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireColumn {
    /// Column index within the request.
    pub index: usize,
    /// Header echoed back.
    pub header: Option<String>,
    /// Distinct values scored.
    pub values_scored: u64,
    /// Finding count for the column.
    pub findings: usize,
}

/// One detector's instrumentation lane on the wire (ensemble scans).
#[derive(Debug, Clone, PartialEq)]
pub struct WireDetectorLane {
    /// Detector display name.
    pub name: String,
    /// Wall nanoseconds inside this detector's `detect_batch` calls.
    pub wall_nanos: u64,
    /// Predictions emitted before merging.
    pub predictions: u64,
    /// Columns scanned.
    pub columns: u64,
}

/// The ensemble section of a scan response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEnsemble {
    /// Merge policy spelling (`union`, `vote:2`, `calibrated`).
    pub merge: String,
    /// Per-detector lanes in configured order.
    pub detectors: Vec<WireDetectorLane>,
}

/// A parsed scan response.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResponse {
    /// Model that served the request.
    pub model: String,
    /// Registry generation of that model (bumps on hot-reload).
    pub generation: u64,
    /// How many *other* requests shared the engine dispatch with this one.
    pub batched_with: usize,
    /// Ranked findings (confidence descending).
    pub findings: Vec<WireFinding>,
    /// Per-column outcomes in request order.
    pub columns: Vec<WireColumn>,
    /// Present when the scan ran through the ensemble engine.
    pub ensemble: Option<WireEnsemble>,
}

/// Protocol-level failure: the payload was JSON but not a valid message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid message: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn bad(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// Decodes the `"columns"` member shared by scan and learn requests.
fn parse_columns(v: &Json) -> Result<Vec<Column>, ProtocolError> {
    let cols = v
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("\"columns\" must be an array"))?;
    let mut columns = Vec::with_capacity(cols.len());
    for (i, col) in cols.iter().enumerate() {
        let values = col
            .get("values")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad(format!("columns[{i}].values must be an array")))?;
        let mut out = Vec::with_capacity(values.len());
        for val in values {
            out.push(
                val.as_str()
                    .ok_or_else(|| bad(format!("columns[{i}] has a non-string value")))?
                    .to_string(),
            );
        }
        let mut column = Column::new(out, SourceTag::Local);
        column.header = match col.get("header") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(bad(format!("columns[{i}].header must be a string"))),
        };
        columns.push(column);
    }
    Ok(columns)
}

/// Encodes columns as the `"columns"` member both request shapes share.
fn columns_to_json(columns: &[Column]) -> Json {
    Json::Arr(
        columns
            .iter()
            .map(|c| {
                let mut members = Vec::new();
                if let Some(h) = &c.header {
                    members.push(("header", Json::str(h.clone())));
                }
                members.push((
                    "values",
                    Json::Arr(c.values.iter().map(|v| Json::str(v.clone())).collect()),
                ));
                Json::obj(members)
            })
            .collect(),
    )
}

/// Decodes a scan request body.
pub fn parse_scan_request(v: &Json) -> Result<ScanRequest, ProtocolError> {
    let model = match v.get("model") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err(bad("\"model\" must be a string")),
    };
    let columns = parse_columns(v)?;
    let detectors = match v.get("detectors") {
        None | Some(Json::Null) => None,
        Some(Json::Arr(items)) => {
            let mut names = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                names.push(
                    item.as_str()
                        .ok_or_else(|| bad(format!("detectors[{i}] must be a string")))?
                        .to_string(),
                );
            }
            Some(names)
        }
        Some(_) => return Err(bad("\"detectors\" must be an array of strings")),
    };
    let merge = match v.get("merge") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err(bad("\"merge\" must be a string")),
    };
    if merge.is_some() && detectors.is_none() {
        return Err(bad("\"merge\" requires \"detectors\""));
    }
    let learn = match v.get("learn") {
        None | Some(Json::Null) => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(bad("\"learn\" must be a boolean")),
    };
    Ok(ScanRequest {
        model,
        columns,
        detectors,
        merge,
        learn,
    })
}

/// Encodes a scan request body.
pub fn scan_request_to_json(model: Option<&str>, columns: &[Column]) -> Json {
    scan_request_to_json_full(model, columns, None, None, false)
}

/// Encodes a scan request body with the optional ensemble fields and
/// the learning tap.
pub fn scan_request_to_json_full(
    model: Option<&str>,
    columns: &[Column],
    detectors: Option<&[String]>,
    merge: Option<&str>,
    learn: bool,
) -> Json {
    let mut members = Vec::new();
    if let Some(m) = model {
        members.push(("model", Json::str(m)));
    }
    members.push(("columns", columns_to_json(columns)));
    if let Some(names) = detectors {
        members.push((
            "detectors",
            Json::Arr(names.iter().map(|n| Json::str(n.clone())).collect()),
        ));
    }
    if let Some(m) = merge {
        members.push(("merge", Json::str(m)));
    }
    if learn {
        members.push(("learn", Json::Bool(true)));
    }
    Json::obj(members)
}

/// Decodes a `POST /v1/learn` request body: just columns.
pub fn parse_learn_request(v: &Json) -> Result<Vec<Column>, ProtocolError> {
    parse_columns(v)
}

/// Encodes a `POST /v1/learn` request body.
pub fn learn_request_to_json(columns: &[Column]) -> Json {
    Json::obj(vec![("columns", columns_to_json(columns))])
}

/// Encodes the `202` learn response: how many columns were queued.
pub fn learn_response_to_json(accepted: u64) -> Json {
    Json::obj(vec![
        ("status", Json::str("queued")),
        ("accepted", Json::num(accepted as f64)),
    ])
}

/// Decodes the learn response (the client side); returns the accepted
/// column count.
pub fn parse_learn_response(v: &Json) -> Result<u64, ProtocolError> {
    if v.get("status").and_then(Json::as_str) != Some("queued") {
        return Err(bad("\"status\" must be \"queued\""));
    }
    v.get("accepted")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("\"accepted\" must be an integer"))
}

fn opt_str(v: Option<&Json>) -> Option<String> {
    v.and_then(Json::as_str).map(str::to_string)
}

/// Encodes a scan response from engine output.
pub fn scan_response_to_json(
    model: &str,
    generation: u64,
    batched_with: usize,
    findings: &[TableFinding],
    columns: &[ColumnSummary],
) -> Json {
    scan_response_to_json_full(model, generation, batched_with, findings, columns, None)
}

/// Encodes a scan response, optionally with the ensemble section
/// (merge-policy spelling plus the engine's per-detector lanes).
pub fn scan_response_to_json_full(
    model: &str,
    generation: u64,
    batched_with: usize,
    findings: &[TableFinding],
    columns: &[ColumnSummary],
    ensemble: Option<(&str, &[DetectorLane])>,
) -> Json {
    let findings = findings
        .iter()
        .map(|f| {
            Json::obj(vec![
                ("column", Json::num(f.column_index as f64)),
                (
                    "header",
                    f.column_header
                        .as_ref()
                        .map_or(Json::Null, |h| Json::str(h.clone())),
                ),
                ("suspect", Json::str(f.finding.suspect.clone())),
                ("witness", Json::str(f.finding.witness.clone())),
                ("confidence", Json::num(f.finding.confidence)),
                ("score", Json::num(f.finding.score)),
            ])
        })
        .collect();
    let columns = columns
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("index", Json::num(c.index as f64)),
                (
                    "header",
                    c.header
                        .as_ref()
                        .map_or(Json::Null, |h| Json::str(h.clone())),
                ),
                ("values_scored", Json::num(c.values_scored as f64)),
                ("findings", Json::num(c.num_findings as f64)),
            ])
        })
        .collect();
    let mut members = vec![
        ("model", Json::str(model)),
        ("generation", Json::num(generation as f64)),
        ("batched_with", Json::num(batched_with as f64)),
        ("findings", Json::Arr(findings)),
        ("columns", Json::Arr(columns)),
    ];
    if let Some((merge, lanes)) = ensemble {
        let lanes = lanes
            .iter()
            .map(|l| {
                Json::obj(vec![
                    ("name", Json::str(l.name.clone())),
                    ("wall_nanos", Json::num(l.wall_nanos as f64)),
                    ("predictions", Json::num(l.predictions as f64)),
                    ("columns", Json::num(l.columns as f64)),
                ])
            })
            .collect();
        members.push((
            "ensemble",
            Json::obj(vec![
                ("merge", Json::str(merge)),
                ("detectors", Json::Arr(lanes)),
            ]),
        ));
    }
    Json::obj(members)
}

/// Decodes a scan response (the client side).
pub fn parse_scan_response(v: &Json) -> Result<ScanResponse, ProtocolError> {
    let model = v
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("\"model\" must be a string"))?
        .to_string();
    let generation = v.get("generation").and_then(Json::as_u64).unwrap_or(0);
    let batched_with = v.get("batched_with").and_then(Json::as_u64).unwrap_or(0) as usize;
    let mut findings = Vec::new();
    for f in v
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("\"findings\" must be an array"))?
    {
        findings.push(WireFinding {
            column: f
                .get("column")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("finding.column must be an integer"))?
                as usize,
            header: opt_str(f.get("header")),
            suspect: opt_str(f.get("suspect")).ok_or_else(|| bad("finding.suspect missing"))?,
            witness: opt_str(f.get("witness")).ok_or_else(|| bad("finding.witness missing"))?,
            confidence: f
                .get("confidence")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("finding.confidence missing"))?,
            score: f
                .get("score")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("finding.score missing"))?,
        });
    }
    let mut columns = Vec::new();
    for c in v
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("\"columns\" must be an array"))?
    {
        columns.push(WireColumn {
            index: c
                .get("index")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("column.index must be an integer"))? as usize,
            header: opt_str(c.get("header")),
            values_scored: c.get("values_scored").and_then(Json::as_u64).unwrap_or(0),
            findings: c.get("findings").and_then(Json::as_u64).unwrap_or(0) as usize,
        });
    }
    let ensemble = match v.get("ensemble") {
        None | Some(Json::Null) => None,
        Some(e) => {
            let merge = e
                .get("merge")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("ensemble.merge must be a string"))?
                .to_string();
            let mut lanes = Vec::new();
            for l in e
                .get("detectors")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("ensemble.detectors must be an array"))?
            {
                lanes.push(WireDetectorLane {
                    name: opt_str(l.get("name"))
                        .ok_or_else(|| bad("ensemble detector lane is missing a name"))?,
                    wall_nanos: l.get("wall_nanos").and_then(Json::as_u64).unwrap_or(0),
                    predictions: l.get("predictions").and_then(Json::as_u64).unwrap_or(0),
                    columns: l.get("columns").and_then(Json::as_u64).unwrap_or(0),
                });
            }
            Some(WireEnsemble {
                merge,
                detectors: lanes,
            })
        }
    };
    Ok(ScanResponse {
        model,
        generation,
        batched_with,
        findings,
        columns,
        ensemble,
    })
}

/// Encodes an error body.
pub fn error_to_json(message: &str) -> Json {
    Json::obj(vec![("error", Json::str(message))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use adt_core::ColumnFinding;

    #[test]
    fn scan_request_roundtrip() {
        let mut col = Column::from_strs(&["a", "b"], SourceTag::Local);
        col.header = Some("h".into());
        let noheader = Column::from_strs(&["c"], SourceTag::Local);
        let json = scan_request_to_json(Some("m"), &[col.clone(), noheader.clone()]);
        let back = parse_scan_request(&parse(&json.to_text()).unwrap()).unwrap();
        assert_eq!(back.model.as_deref(), Some("m"));
        assert_eq!(back.columns, vec![col, noheader]);
    }

    #[test]
    fn scan_request_validation() {
        for bad in [
            r#"{"columns": "nope"}"#,
            r#"{"columns": [{"values": [1]}]}"#,
            r#"{"columns": [{"values": "x"}]}"#,
            r#"{"model": 3, "columns": []}"#,
            r#"{"columns": [{"header": [], "values": []}]}"#,
            r#"{"columns": [], "detectors": "autodetect"}"#,
            r#"{"columns": [], "detectors": [1]}"#,
            r#"{"columns": [], "merge": 2, "detectors": ["autodetect"]}"#,
            r#"{"columns": [], "merge": "vote:2"}"#,
            r#"{"columns": [], "learn": "yes"}"#,
            r#"{"columns": [], "learn": 1}"#,
        ] {
            let v = parse(bad).unwrap();
            assert!(parse_scan_request(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn ensemble_request_roundtrip() {
        let col = Column::from_strs(&["a", "b"], SourceTag::Local);
        let detectors = vec!["autodetect".to_string(), "fregex".to_string()];
        let json =
            scan_request_to_json_full(Some("m"), &[col], Some(&detectors), Some("vote:2"), false);
        let back = parse_scan_request(&parse(&json.to_text()).unwrap()).unwrap();
        assert_eq!(back.detectors.as_deref(), Some(&detectors[..]));
        assert_eq!(back.merge.as_deref(), Some("vote:2"));
        assert!(!back.learn);
    }

    #[test]
    fn learn_tap_flag_roundtrip() {
        let col = Column::from_strs(&["a", "b"], SourceTag::Local);
        let json =
            scan_request_to_json_full(Some("m"), std::slice::from_ref(&col), None, None, true);
        let back = parse_scan_request(&parse(&json.to_text()).unwrap()).unwrap();
        assert!(back.learn);
        // The tap is opt-in: plain encoders never emit the member.
        let plain = scan_request_to_json(Some("m"), &[col]).to_text();
        assert!(!plain.contains("learn"), "{plain}");
    }

    #[test]
    fn learn_request_and_response_roundtrip() {
        let mut col = Column::from_strs(&["1", "2"], SourceTag::Local);
        col.header = Some("n".into());
        let json = learn_request_to_json(&[col.clone()]);
        let back = parse_learn_request(&parse(&json.to_text()).unwrap()).unwrap();
        assert_eq!(back, vec![col]);

        let resp = learn_response_to_json(17);
        let accepted = parse_learn_response(&parse(&resp.to_text()).unwrap()).unwrap();
        assert_eq!(accepted, 17);
        for bad in [
            r#"{"status": "nope", "accepted": 1}"#,
            r#"{"status": "queued"}"#,
        ] {
            assert!(parse_learn_response(&parse(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn scan_response_roundtrip() {
        let findings = vec![TableFinding {
            column_index: 0,
            column_header: Some("h".into()),
            finding: ColumnFinding {
                suspect: "2011/01/02".into(),
                witness: "2011-01-01".into(),
                confidence: 0.97,
                score: -0.62,
            },
        }];
        let columns = vec![ColumnSummary {
            index: 0,
            header: Some("h".into()),
            values_scored: 2,
            num_findings: 1,
        }];
        let json = scan_response_to_json("m", 3, 2, &findings, &columns);
        let back = parse_scan_response(&parse(&json.to_text()).unwrap()).unwrap();
        assert_eq!(back.model, "m");
        assert_eq!(back.generation, 3);
        assert_eq!(back.batched_with, 2);
        assert_eq!(back.findings[0].suspect, "2011/01/02");
        assert_eq!(back.findings[0].confidence, 0.97);
        assert_eq!(back.columns[0].values_scored, 2);
        assert_eq!(back.ensemble, None);
    }

    #[test]
    fn ensemble_response_roundtrip() {
        let lanes = vec![
            DetectorLane {
                name: "Auto-Detect".into(),
                wall_nanos: 1200,
                predictions: 3,
                columns: 2,
            },
            DetectorLane {
                name: "F-Regex".into(),
                wall_nanos: 80,
                predictions: 1,
                columns: 2,
            },
        ];
        let json = scan_response_to_json_full("m", 1, 0, &[], &[], Some(("vote:2", &lanes)));
        let back = parse_scan_response(&parse(&json.to_text()).unwrap()).unwrap();
        let ens = back.ensemble.expect("ensemble section missing");
        assert_eq!(ens.merge, "vote:2");
        assert_eq!(ens.detectors.len(), 2);
        assert_eq!(ens.detectors[0].name, "Auto-Detect");
        assert_eq!(ens.detectors[0].wall_nanos, 1200);
        assert_eq!(ens.detectors[1].predictions, 1);
    }
}
