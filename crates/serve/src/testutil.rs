//! Hand-built miniature models for tests, benches, and smoke runs.
//!
//! Mirrors `adt-core`'s internal test kit (which is `pub(crate)` and
//! compiled only under `cfg(test)`) using the public API, so the serve
//! crate's integration tests and benches can stand up a server without
//! paying for a real training run. Not a stable API.
#![doc(hidden)]

use adt_core::{AutoDetect, Calibration};
use adt_corpus::{Column, Corpus, SourceTag};
use adt_patterns::Language;
use adt_stats::{LanguageStats, NpmiParams, StatsConfig};

fn date_mix_corpus() -> Corpus {
    let mut cols = Vec::new();
    for i in 0..40 {
        cols.push(Column::new(
            vec![
                format!("{}", 1900 + i),
                format!("{},000", i + 1),
                format!("{}", i * 7),
            ],
            SourceTag::Web,
        ));
        cols.push(Column::new(
            vec![
                format!("20{:02}-01-01", i % 30),
                format!("20{:02}-02-02", (i + 1) % 30),
            ],
            SourceTag::Web,
        ));
        cols.push(Column::new(
            vec![
                format!("20{:02}/01/01", i % 30),
                format!("20{:02}/02/02", (i + 1) % 30),
            ],
            SourceTag::Web,
        ));
    }
    Corpus::from_columns(cols)
}

fn crude_language() -> (LanguageStats, Calibration) {
    let stats = LanguageStats::build(
        adt_patterns::crude::crude_language(),
        &date_mix_corpus(),
        &StatsConfig::default(),
    );
    let calibration = Calibration {
        theta: Some(-0.4),
        precision_at_theta: 1.0,
        covered_negatives: vec![],
        covered_positives: 0,
        curve: vec![(-1.0, 0.99), (-0.4, 0.9), (0.0, 0.5), (1.0, 0.01)],
    };
    (stats, calibration)
}

/// A two-language model that flags ISO-vs-slash date mixes but accepts
/// int / comma-int mixes — same shape as `adt-core`'s `tiny_model`.
pub fn tiny_model() -> AutoDetect {
    let (stats, calibration) = crude_language();
    let stats_l1 = {
        let mut cols = Vec::new();
        for i in 0..40 {
            cols.push(Column::new(
                vec![format!("{}-{:02}", 2000 + i, i % 12 + 1)],
                SourceTag::Web,
            ));
        }
        LanguageStats::build(
            Language::paper_l1(),
            &Corpus::from_columns(cols),
            &StatsConfig::default(),
        )
    };
    let cal_l1 = Calibration {
        theta: Some(-0.5),
        precision_at_theta: 0.97,
        covered_negatives: vec![],
        covered_positives: 0,
        curve: vec![(-1.0, 0.97), (-0.5, 0.8), (1.0, 0.0)],
    };
    AutoDetect {
        languages: vec![
            adt_core::detector::SelectedLanguage { stats, calibration },
            adt_core::detector::SelectedLanguage {
                stats: stats_l1,
                calibration: cal_l1,
            },
        ],
        npmi: NpmiParams { smoothing: 0.1 },
        precision_target: 0.9,
        max_distinct_values: 50,
    }
}

/// A one-language variant, distinguishable from [`tiny_model`] by
/// `num_languages` (and by file size) — used to observe hot-reloads.
pub fn tiny_model_one_language() -> AutoDetect {
    let (stats, calibration) = crude_language();
    AutoDetect {
        languages: vec![adt_core::detector::SelectedLanguage { stats, calibration }],
        npmi: NpmiParams { smoothing: 0.1 },
        precision_target: 0.9,
        max_distinct_values: 50,
    }
}
