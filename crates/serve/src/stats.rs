//! Cumulative server counters: request/scan totals, latency quantiles,
//! and per-model hit counts — the `ScanReport`-style observability layer
//! behind `GET /v1/stats`.
//!
//! Counters are lock-free atomics; latency is a fixed power-of-two
//! histogram over microseconds (64 buckets cover ~18 minutes), so p50/p99
//! are bucket-resolution estimates (≤2× error), never a sorted-vector
//! scan on the hot path. Per-model hits take a short mutex — one map
//! bump per request, negligible next to a scan.

use crate::json::Json;
use adt_core::DetectorLane;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const BUCKETS: usize = 64;

/// A power-of-two latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().min(u64::MAX as u128) as u64;
        // Bucket i holds durations in [2^(i-1), 2^i) µs; bucket 0 is <1µs.
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.5` = p50) as the upper bound of the bucket
    /// the quantile falls in, in microseconds; `None` when empty.
    pub fn quantile_micros(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(if i == 0 { 1 } else { 1u64 << i });
            }
        }
        Some(1u64 << (BUCKETS - 1))
    }
}

/// Cumulative counters for one server lifetime.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    /// Every request that reached the router.
    pub requests: AtomicU64,
    /// Successful `POST /v1/scan` requests.
    pub scans_ok: AtomicU64,
    /// Requests answered with a 4xx.
    pub client_errors: AtomicU64,
    /// Requests answered with a 5xx.
    pub server_errors: AtomicU64,
    /// Connections rejected `503` because the accept queue was full.
    pub rejected_busy: AtomicU64,
    /// Distinct values scored across all scans.
    pub values_scored: AtomicU64,
    /// Columns scanned across all scans.
    pub columns_scanned: AtomicU64,
    /// Findings returned across all scans.
    pub findings: AtomicU64,
    /// Engine dispatches (micro-batches); `scans_ok / batches` ≥ 1 is the
    /// amortization factor.
    pub batches: AtomicU64,
    /// NPMI scores computed from count probes across all scans.
    pub npmi_probes: AtomicU64,
    /// NPMI scores answered from the batcher's long-lived score memo;
    /// `npmi_memo_hits / (npmi_probes + npmi_memo_hits)` is the memo hit
    /// rate steady traffic converges to.
    pub npmi_memo_hits: AtomicU64,
    /// Columns the adaptive scan dispatcher scored through the group
    /// (d' ≪ d) kernel.
    pub kernel_group_columns: AtomicU64,
    /// Columns the adaptive scan dispatcher scored through the direct
    /// (near-all-distinct) kernel.
    pub kernel_direct_columns: AtomicU64,
    /// Successful ensemble scans (requests that passed `detectors`).
    pub ensemble_scans: AtomicU64,
    /// `POST /v1/learn` requests accepted (answered `202`).
    pub learn_requests: AtomicU64,
    /// Columns queued for the learner (endpoint + scan tap).
    pub learn_ingested_columns: AtomicU64,
    /// Columns dropped because the learn queue was full or closed.
    pub learn_dropped_columns: AtomicU64,
    /// Batches the learner absorbed into its accumulators.
    pub learn_absorbs: AtomicU64,
    /// Incremental retrains completed.
    pub learn_retrains: AtomicU64,
    /// Retrained models swapped into the live registry.
    pub learn_swaps: AtomicU64,
    /// Retrains skipped because the model selected zero languages.
    pub learn_skipped: AtomicU64,
    /// Learner failures (absorb, retrain, or persist); the previous
    /// generation keeps serving through every one of them.
    pub learn_errors: AtomicU64,
    /// Gauge: columns absorbed but not yet retrained on.
    pub learn_pending_columns: AtomicU64,
    /// Gauge: wall milliseconds of the most recent retrain.
    pub learn_last_retrain_ms: AtomicU64,
    /// End-to-end scan-request latency.
    pub latency: LatencyHistogram,
    per_model: Mutex<HashMap<String, u64>>,
    /// Cumulative per-detector lanes from ensemble scans:
    /// name → (wall_nanos, predictions, columns).
    per_detector: Mutex<HashMap<String, (u64, u64, u64)>>,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            scans_ok: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            values_scored: AtomicU64::new(0),
            columns_scanned: AtomicU64::new(0),
            findings: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            npmi_probes: AtomicU64::new(0),
            npmi_memo_hits: AtomicU64::new(0),
            kernel_group_columns: AtomicU64::new(0),
            kernel_direct_columns: AtomicU64::new(0),
            ensemble_scans: AtomicU64::new(0),
            learn_requests: AtomicU64::new(0),
            learn_ingested_columns: AtomicU64::new(0),
            learn_dropped_columns: AtomicU64::new(0),
            learn_absorbs: AtomicU64::new(0),
            learn_retrains: AtomicU64::new(0),
            learn_swaps: AtomicU64::new(0),
            learn_skipped: AtomicU64::new(0),
            learn_errors: AtomicU64::new(0),
            learn_pending_columns: AtomicU64::new(0),
            learn_last_retrain_ms: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            per_model: Mutex::new(HashMap::new()),
            per_detector: Mutex::new(HashMap::new()),
        }
    }
}

impl ServerStats {
    /// Counts one served scan against `model`.
    pub fn record_model_hit(&self, model: &str) {
        // Counters stay valid under poison (increments are atomic with
        // respect to the guard), so recover instead of panicking the
        // worker that merely wanted to bump a stat.
        let mut map = self
            .per_model
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *map.entry(model.to_string()).or_insert(0) += 1;
    }

    /// Accumulates one ensemble scan's per-detector lanes.
    pub fn record_detector_lanes(&self, lanes: &[DetectorLane]) {
        let mut map = self
            .per_detector
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for lane in lanes {
            let entry = map.entry(lane.name.clone()).or_insert((0, 0, 0));
            entry.0 += lane.wall_nanos;
            entry.1 += lane.predictions;
            entry.2 += lane.columns;
        }
    }

    /// Sorted cumulative `(name, wall_nanos, predictions, columns)` rows.
    pub fn detector_lanes(&self) -> Vec<(String, u64, u64, u64)> {
        let map = self
            .per_detector
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut rows: Vec<(String, u64, u64, u64)> = map
            .iter()
            .map(|(k, (w, p, c))| (k.clone(), *w, *p, *c))
            .collect();
        rows.sort();
        rows
    }

    /// Sorted `(model, hits)` pairs.
    pub fn model_hits(&self) -> Vec<(String, u64)> {
        let map = self
            .per_model
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut hits: Vec<(String, u64)> = map.iter().map(|(k, v)| (k.clone(), *v)).collect();
        hits.sort();
        hits
    }

    /// Snapshot as the `/v1/stats` JSON body.
    pub fn to_json(&self) -> Json {
        let get = |a: &AtomicU64| Json::num(a.load(Ordering::Relaxed) as f64);
        let quant = |q: f64| {
            self.latency
                .quantile_micros(q)
                .map_or(Json::Null, |v| Json::num(v as f64))
        };
        let per_model = self
            .model_hits()
            .into_iter()
            .map(|(name, hits)| (name, Json::num(hits as f64)))
            .collect();
        Json::obj(vec![
            (
                "uptime_ms",
                Json::num(self.started.elapsed().as_millis() as f64),
            ),
            ("requests", get(&self.requests)),
            ("scans_ok", get(&self.scans_ok)),
            ("client_errors", get(&self.client_errors)),
            ("server_errors", get(&self.server_errors)),
            ("rejected_busy", get(&self.rejected_busy)),
            ("values_scored", get(&self.values_scored)),
            ("columns_scanned", get(&self.columns_scanned)),
            ("findings", get(&self.findings)),
            ("batches", get(&self.batches)),
            ("npmi_probes", get(&self.npmi_probes)),
            ("npmi_memo_hits", get(&self.npmi_memo_hits)),
            (
                "kernel_choices",
                Json::obj(vec![
                    ("group", get(&self.kernel_group_columns)),
                    ("direct", get(&self.kernel_direct_columns)),
                ]),
            ),
            ("ensemble_scans", get(&self.ensemble_scans)),
            (
                "learn",
                Json::obj(vec![
                    ("requests", get(&self.learn_requests)),
                    ("ingested_columns", get(&self.learn_ingested_columns)),
                    ("dropped_columns", get(&self.learn_dropped_columns)),
                    ("absorbs", get(&self.learn_absorbs)),
                    ("retrains", get(&self.learn_retrains)),
                    ("swaps", get(&self.learn_swaps)),
                    ("skipped", get(&self.learn_skipped)),
                    ("errors", get(&self.learn_errors)),
                    ("pending_columns", get(&self.learn_pending_columns)),
                    ("last_retrain_ms", get(&self.learn_last_retrain_ms)),
                ]),
            ),
            ("scan_latency_p50_us", quant(0.5)),
            ("scan_latency_p99_us", quant(0.99)),
            ("model_hits", Json::Obj(per_model)),
            (
                "detectors",
                Json::Obj(
                    self.detector_lanes()
                        .into_iter()
                        .map(|(name, wall, preds, cols)| {
                            (
                                name,
                                Json::obj(vec![
                                    ("wall_nanos", Json::num(wall as f64)),
                                    ("predictions", Json::num(preds as f64)),
                                    ("columns", Json::num(cols as f64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_micros(0.5), None);
        for micros in [10u64, 20, 40, 80, 5000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_micros(0.5).unwrap();
        assert!((32..=64).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_micros(0.99).unwrap();
        assert!(p99 >= 4096, "p99 {p99}");
        // Quantiles never undershoot by more than a bucket: the p0+ε
        // bucket bound is ≥ the smallest sample.
        assert!(h.quantile_micros(0.01).unwrap() >= 10);
    }

    #[test]
    fn stats_json_has_all_counters() {
        let s = ServerStats::default();
        s.requests.fetch_add(3, Ordering::Relaxed);
        s.record_model_hit("prod");
        s.record_model_hit("prod");
        s.latency.record(Duration::from_micros(100));
        let v = s.to_json();
        assert_eq!(v.get("requests").unwrap().as_u64(), Some(3));
        assert_eq!(
            v.get("model_hits").unwrap().get("prod").unwrap().as_u64(),
            Some(2)
        );
        assert!(v.get("scan_latency_p50_us").unwrap().as_u64().is_some());
        assert!(v.get("uptime_ms").is_some());
    }

    #[test]
    fn kernel_choices_surface_as_a_nested_object() {
        let s = ServerStats::default();
        s.kernel_group_columns.fetch_add(5, Ordering::Relaxed);
        s.kernel_direct_columns.fetch_add(7, Ordering::Relaxed);
        let v = s.to_json();
        let kernels = v.get("kernel_choices").expect("kernel_choices missing");
        assert_eq!(kernels.get("group").and_then(Json::as_u64), Some(5));
        assert_eq!(kernels.get("direct").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn learn_counters_surface_as_a_nested_object() {
        let s = ServerStats::default();
        s.learn_ingested_columns.fetch_add(40, Ordering::Relaxed);
        s.learn_retrains.fetch_add(2, Ordering::Relaxed);
        s.learn_swaps.fetch_add(1, Ordering::Relaxed);
        s.learn_pending_columns.store(8, Ordering::Relaxed);
        let v = s.to_json();
        let learn = v.get("learn").expect("learn object missing");
        assert_eq!(
            learn.get("ingested_columns").and_then(Json::as_u64),
            Some(40)
        );
        assert_eq!(learn.get("retrains").and_then(Json::as_u64), Some(2));
        assert_eq!(learn.get("swaps").and_then(Json::as_u64), Some(1));
        assert_eq!(learn.get("pending_columns").and_then(Json::as_u64), Some(8));
        for key in [
            "requests",
            "dropped_columns",
            "absorbs",
            "skipped",
            "errors",
            "last_retrain_ms",
        ] {
            assert!(learn.get(key).is_some(), "missing learn.{key}");
        }
    }

    #[test]
    fn detector_lanes_accumulate_by_name() {
        let s = ServerStats::default();
        let lane = |name: &str, wall, preds, cols| DetectorLane {
            name: name.into(),
            wall_nanos: wall,
            predictions: preds,
            columns: cols,
        };
        s.record_detector_lanes(&[lane("Auto-Detect", 100, 2, 1), lane("F-Regex", 10, 1, 1)]);
        s.record_detector_lanes(&[lane("Auto-Detect", 50, 1, 1)]);
        let rows = s.detector_lanes();
        assert_eq!(
            rows,
            vec![
                ("Auto-Detect".to_string(), 150, 3, 2),
                ("F-Regex".to_string(), 10, 1, 1),
            ]
        );
        let v = s.to_json();
        let det = v.get("detectors").unwrap();
        assert_eq!(
            det.get("Auto-Detect")
                .unwrap()
                .get("wall_nanos")
                .unwrap()
                .as_u64(),
            Some(150)
        );
        assert!(v.get("ensemble_scans").is_some());
    }
}
