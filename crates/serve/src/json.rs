//! Minimal JSON value model, parser, and writer.
//!
//! The serving layer speaks JSON on the wire but must run in air-gapped
//! containers where the workspace's `serde_json` is a panicking stub, so
//! the protocol layer carries its own dependency-free implementation:
//! a recursive-descent parser with depth and size limits (the server
//! parses untrusted bodies) and a writer that round-trips every value the
//! protocol emits.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`]; deeper input is rejected
/// rather than risking stack exhaustion on adversarial bodies.
const MAX_DEPTH: usize = 64;

/// A JSON value. Objects preserve insertion order (deterministic wire
/// output matters for tests and for diffable logs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Serializes to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a number: integral values print without a fractional part, and
/// non-finite values (which JSON cannot carry) degrade to `null`.
fn write_num(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's f64 Display is the shortest round-trip representation.
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it came from a &str) and the
                // run stops at an ASCII boundary, so the slice is valid;
                // still, fail as a parse error rather than a panic.
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect \uXXXX low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.eat(b'u', "expected low surrogate escape")?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        let v = Json::obj(vec![
            ("name", Json::str("dátē \"x\"\n")),
            ("n", Json::num(3.5)),
            ("k", Json::num(42.0)),
            ("ok", Json::Bool(true)),
            ("nil", Json::Null),
            ("arr", Json::Arr(vec![Json::num(1.0), Json::str("two")])),
        ]);
        let text = v.to_text();
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.contains("\"k\":42,"), "{text}");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "a\u0041\n\t\\\" \ud83d\ude00", "n": -1.5e2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "aA\n\t\\\" 😀");
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), -150.0);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"x",
            "\"\\q\"",
            "\"\\ud800\"",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, 2], "b": "x", "c": 7}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
