//! `adt-serve` — the long-running detection service.
//!
//! The paper ships Auto-Detect as an interactive backend (Excel and
//! PowerBI features answering per-column queries online), not a one-shot
//! batch scan. This crate is that serving layer for the reproduction: a
//! dependency-free HTTP/1.1 server (`std::net` + threads, so it runs in
//! the same air-gapped containers as the rest of the workspace) wrapping
//! the parallel [`adt_core::ScanEngine`].
//!
//! Architecture, one request's journey:
//!
//! ```text
//! accept loop ──► bounded queue ──► worker pool ──► micro-batcher ──► ScanEngine
//!   (503 when       (backpressure)   (HTTP parse,     (one engine       (parallel
//!    queue full)                      route, panic     dispatch per      per-column
//!                                     isolation)       drain & model)    scan)
//! ```
//!
//! - [`registry::ModelRegistry`] — named models from a directory, shared
//!   as `Arc<AutoDetect>`, hot-reloaded on file change without dropping
//!   in-flight requests;
//! - [`server::Server`] — accept loop, bounded queue, worker pool,
//!   per-request timeouts and panic isolation, graceful shutdown that
//!   drains in-flight work;
//! - [`batch`] — micro-batching of concurrent requests into single
//!   engine dispatches, byte-identical to unbatched scans;
//! - [`learn`] — the online learning loop: a background learner absorbs
//!   uploaded/tapped columns through a bounded queue, retrains
//!   incrementally, and swaps the new model into the registry
//!   atomically (`POST /v1/learn`, `"learn": true` on scans);
//! - [`protocol`] / [`json`] / [`http`] — the wire: `POST /v1/scan`,
//!   `POST /v1/learn`, `GET /v1/healthz`, `GET /v1/stats`,
//!   `GET /v1/models`, `POST /v1/shutdown`;
//! - [`stats::ServerStats`] — cumulative counters with p50/p99 latency
//!   and per-model hit counts;
//! - [`client::Client`] — the blocking client behind `autodetect query`.
//!
//! ```no_run
//! use adt_serve::{Client, ModelRegistry, ServeConfig, Server};
//!
//! let registry = ModelRegistry::open("models/")?;
//! let server = Server::bind(ServeConfig::default(), registry)?;
//! let (addr, handle, join) = server.spawn();
//!
//! let client = Client::new(&addr.to_string())?;
//! let columns = vec![adt_corpus::Column::from_strs(
//!     &["2011-01-01", "2011/01/02"],
//!     adt_corpus::SourceTag::Local,
//! )];
//! let response = client.scan(None, &columns)?;
//! println!("{} findings", response.findings.len());
//!
//! handle.shutdown();
//! join.join().unwrap()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod batch;
pub mod client;
pub mod http;
pub mod json;
pub mod learn;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod stats;
pub mod testutil;

pub use client::{Client, ClientError, Connection};
pub use json::Json;
pub use learn::LearnConfig;
pub use protocol::{ScanRequest, ScanResponse, WireColumn, WireFinding};
pub use registry::{ModelHandle, ModelRegistry};
pub use server::{ServeConfig, Server, ServerHandle};
pub use stats::ServerStats;
