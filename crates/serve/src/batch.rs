//! Micro-batching: concurrent small scan requests are drained from one
//! queue and dispatched through a single [`ScanEngine::scan_columns`]
//! call per model, amortizing thread-pool spin-up and letting one
//! worker's `PatternCache` serve every request in the batch (values
//! repeat heavily across real requests).
//!
//! Splitting a batch back into per-request results is exact, not
//! approximate: per-column findings are a pure function of the column,
//! and the engine's global ranking restricted to one request's column
//! range is the same total order that request would get scanned alone —
//! so batched responses are byte-identical to unbatched ones (the
//! concurrency test in `tests/serve.rs` asserts this).

use crate::registry::ModelHandle;
use adt_core::{CachePool, ColumnSummary, ScanEngine, TableFinding};
use adt_corpus::Column;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// One request's scan, queued for the batcher.
pub struct ScanJob {
    /// The model resolved for this request.
    pub handle: ModelHandle,
    /// The request's columns.
    pub columns: Vec<Column>,
    /// Where the result goes; the worker blocks on the paired receiver.
    /// The error side is a display string — `AdtError` is not `Clone`,
    /// and every job of a failed dispatch gets the same message.
    pub reply: Sender<Result<JobResult, String>>,
}

/// A per-request slice of a batch scan.
#[derive(Debug)]
pub struct JobResult {
    /// Findings for this request's columns, reindexed to request-local
    /// column indices, in engine ranking order.
    pub findings: Vec<TableFinding>,
    /// Per-column outcomes, request-local indices.
    pub columns: Vec<ColumnSummary>,
    /// How many other requests shared the dispatch.
    pub batched_with: usize,
}

/// Outcome counters from one drain, for the stats layer.
#[derive(Debug, Default, Clone, Copy)]
pub struct DrainStats {
    /// Engine dispatches performed (one per distinct model in the drain).
    pub dispatches: u64,
    /// Jobs answered.
    pub jobs: u64,
    /// NPMI scores computed from count probes across the drain's scans.
    pub npmi_probes: u64,
    /// NPMI scores answered from the batcher's long-lived cache pool.
    pub npmi_memo_hits: u64,
    /// Columns scored through the group (d' ≪ d) kernel.
    pub kernel_group: u64,
    /// Columns scored through the direct (near-all-distinct) kernel.
    pub kernel_direct: u64,
}

/// Runs the batch loop until every job sender is dropped. `max_jobs`
/// bounds one drain so a burst cannot grow an unbounded dispatch;
/// `engine_threads` is passed through to the scan engine. The batcher
/// owns one [`CachePool`] for its whole life, so worker pattern caches
/// and memoized NPMI pair scores persist across dispatches — steady
/// traffic over similar schemas converges to near-zero probes per scan.
pub fn run_batcher(
    rx: Receiver<ScanJob>,
    engine_threads: usize,
    max_jobs: usize,
    mut on_drain: impl FnMut(DrainStats),
) {
    let pool = CachePool::new();
    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        // Opportunistic drain: take whatever queued while the previous
        // dispatch ran. No linger — an idle server adds zero latency.
        while jobs.len() < max_jobs.max(1) {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        let stats = dispatch(jobs, engine_threads, &pool);
        on_drain(stats);
    }
}

/// Groups `jobs` by model identity (same `Arc`, not just same name, so a
/// hot-reload mid-drain never mixes generations), scans each group with
/// one engine call, and replies to every job.
fn dispatch(jobs: Vec<ScanJob>, engine_threads: usize, pool: &Arc<CachePool>) -> DrainStats {
    let mut stats = DrainStats {
        dispatches: 0,
        jobs: jobs.len() as u64,
        npmi_probes: 0,
        npmi_memo_hits: 0,
        kernel_group: 0,
        kernel_direct: 0,
    };
    // Group in arrival order, keyed by Arc identity.
    let mut groups: Vec<(usize, Vec<ScanJob>)> = Vec::new();
    for job in jobs {
        let key = Arc::as_ptr(&job.handle.model) as usize;
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, group)) => group.push(job),
            None => groups.push((key, vec![job])),
        }
    }
    for (_, group) in groups {
        stats.dispatches += 1;
        let (probes, memo_hits, kernel_group, kernel_direct) =
            scan_group(group, engine_threads, pool);
        stats.npmi_probes += probes;
        stats.npmi_memo_hits += memo_hits;
        stats.kernel_group += kernel_group;
        stats.kernel_direct += kernel_direct;
    }
    stats
}

/// Scans one model group; returns the scan's `(npmi_probes,
/// npmi_memo_hits, kernel_group, kernel_direct)` (zeros when the
/// dispatch failed).
fn scan_group(
    group: Vec<ScanJob>,
    engine_threads: usize,
    pool: &Arc<CachePool>,
) -> (u64, u64, u64, u64) {
    let batched_with = group.len() - 1;
    let mut all_columns: Vec<Column> = Vec::new();
    let mut offsets = Vec::with_capacity(group.len());
    for job in &group {
        offsets.push((all_columns.len(), job.columns.len()));
        all_columns.extend(job.columns.iter().cloned());
    }
    let engine = ScanEngine::new(Arc::clone(&group[0].handle.model))
        .with_threads(engine_threads)
        .with_cache_pool(Arc::clone(pool));
    let report = match engine.scan_columns(&all_columns) {
        Ok(r) => r,
        Err(e) => {
            // A worker panic fails the whole dispatch; every job hears
            // about it (the server turns this into a 500 per request).
            let msg = e.to_string();
            for job in group {
                // adt-allow(error-path): a dropped reply receiver means that request's worker already gave up; nothing to notify
                let _ = job.reply.send(Err(msg.clone()));
            }
            return (0, 0, 0, 0);
        }
    };
    for (job, (offset, len)) in group.into_iter().zip(offsets) {
        let findings = report
            .findings
            .iter()
            .filter(|f| f.column_index >= offset && f.column_index < offset + len)
            .map(|f| TableFinding {
                column_index: f.column_index - offset,
                column_header: f.column_header.clone(),
                finding: f.finding.clone(),
            })
            .collect();
        let columns = report
            .columns
            .iter()
            .skip(offset)
            .take(len)
            .map(|c| ColumnSummary {
                index: c.index - offset,
                header: c.header.clone(),
                values_scored: c.values_scored,
                num_findings: c.num_findings,
            })
            .collect();
        // adt-allow(error-path): a dropped reply receiver means that request's worker already gave up; nothing to notify
        let _ = job.reply.send(Ok(JobResult {
            findings,
            columns,
            batched_with,
        }));
    }
    (
        report.stats.npmi_probes,
        report.stats.npmi_memo_hits,
        report.stats.kernel_choices.group,
        report.stats.kernel_choices.direct,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_model;
    use adt_corpus::SourceTag;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn handle() -> ModelHandle {
        ModelHandle {
            name: "test".into(),
            model: Arc::new(tiny_model()),
            generation: 1,
        }
    }

    fn dirty_column() -> Column {
        Column::from_strs(
            &["2011-01-01", "2012-02-02", "2013-03-03", "2014/04/04"],
            SourceTag::Local,
        )
    }

    fn repr(findings: &[TableFinding]) -> Vec<String> {
        findings
            .iter()
            .map(|f| {
                format!(
                    "{}|{}|{}|{}",
                    f.column_index, f.finding.suspect, f.finding.witness, f.finding.confidence
                )
            })
            .collect()
    }

    #[test]
    fn batched_results_match_solo_scans() {
        let h = handle();
        let solo = ScanEngine::new(Arc::clone(&h.model))
            .with_threads(1)
            .scan_columns(&[dirty_column()])
            .unwrap();

        // Three identical jobs dispatched as one batch.
        let mut receivers = Vec::new();
        let jobs: Vec<ScanJob> = (0..3)
            .map(|_| {
                let (tx, rx) = mpsc::channel();
                receivers.push(rx);
                ScanJob {
                    handle: h.clone(),
                    columns: vec![dirty_column()],
                    reply: tx,
                }
            })
            .collect();
        let stats = dispatch(jobs, 1, &CachePool::new());
        assert_eq!(stats.dispatches, 1, "same model must share one dispatch");
        assert_eq!(stats.jobs, 3);
        for rx in receivers {
            let result = rx.recv().unwrap().unwrap();
            assert_eq!(result.batched_with, 2);
            assert_eq!(repr(&result.findings), repr(&solo.findings));
            assert_eq!(result.columns.len(), 1);
            assert_eq!(result.columns[0].index, 0);
            assert_eq!(
                result.columns[0].values_scored,
                solo.columns[0].values_scored
            );
        }
    }

    #[test]
    fn different_models_get_separate_dispatches() {
        let h1 = handle();
        let h2 = handle(); // distinct Arc → distinct identity
        let (tx1, rx1) = mpsc::channel();
        let (tx2, rx2) = mpsc::channel();
        let stats = dispatch(
            vec![
                ScanJob {
                    handle: h1,
                    columns: vec![dirty_column()],
                    reply: tx1,
                },
                ScanJob {
                    handle: h2,
                    columns: vec![dirty_column()],
                    reply: tx2,
                },
            ],
            1,
            &CachePool::new(),
        );
        assert_eq!(stats.dispatches, 2);
        assert_eq!(rx1.recv().unwrap().unwrap().batched_with, 0);
        assert_eq!(rx2.recv().unwrap().unwrap().batched_with, 0);
    }

    #[test]
    fn shared_pool_amortizes_probes_across_dispatches() {
        let h = handle();
        let pool = CachePool::new();
        let run = |pool: &Arc<CachePool>| {
            let (tx, rx) = mpsc::channel();
            let stats = dispatch(
                vec![ScanJob {
                    handle: h.clone(),
                    columns: vec![dirty_column()],
                    reply: tx,
                }],
                1,
                pool,
            );
            rx.recv().unwrap().unwrap();
            stats
        };
        let cold = run(&pool);
        assert!(cold.npmi_probes > 0);
        // Exactly one column scanned, so exactly one kernel decision.
        assert_eq!(cold.kernel_group + cold.kernel_direct, 1);
        // A later dispatch through the same pool reuses the memoized
        // scores, as the long-lived batcher does across drains.
        let warm = run(&pool);
        assert_eq!(warm.npmi_probes, 0, "second dispatch recomputed scores");
        assert_eq!(warm.npmi_memo_hits, cold.npmi_probes + cold.npmi_memo_hits);
    }

    #[test]
    fn batcher_loop_drains_and_exits() {
        let (tx, rx) = mpsc::channel::<ScanJob>();
        let h = handle();
        let mut replies = Vec::new();
        for _ in 0..5 {
            let (rtx, rrx) = mpsc::channel();
            tx.send(ScanJob {
                handle: h.clone(),
                columns: vec![dirty_column()],
                reply: rtx,
            })
            .unwrap();
            replies.push(rrx);
        }
        drop(tx);
        let mut drains = 0u64;
        run_batcher(rx, 1, 4, |d| drains += d.dispatches);
        assert!(drains >= 1);
        for rrx in replies {
            assert!(rrx.recv().unwrap().is_ok());
        }
    }
}
