//! The online learning loop: a background learner thread that absorbs
//! scanned/uploaded columns into an [`adt_core::OnlineLearner`] and
//! periodically retrains, swapping the new model into the live
//! [`crate::registry::ModelRegistry`] atomically.
//!
//! Data path:
//!
//! ```text
//! POST /v1/learn ──┐
//!                  ├─► bounded queue ──► adt-learner thread
//! /v1/scan tap ────┘      (503 /             │ absorb per batch
//!  ("learn": true)         best-effort)      │ retrain on threshold
//!                                            ▼
//!                              save_model (temp + rename)
//!                                            │
//!                              registry hot-reload (generation + 1)
//! ```
//!
//! Invariants:
//!
//! - **Bounded ingest.** The queue is a `sync_channel`; when it is full,
//!   `/v1/learn` answers `503` and the scan tap drops the batch (counted
//!   as `learn.dropped_columns`) — ingest never grows unbounded and
//!   never blocks a request worker.
//! - **Atomic swap.** The retrained model is written with
//!   [`adt_core::save_model`]'s temp-file + rename persistence to the
//!   target model's own backing file, then the registry's fingerprint
//!   reload installs it. Requests already holding the old `Arc` finish
//!   on it; no response ever mixes generations mid-flight.
//! - **Failure isolation.** An absorb, retrain, or save failure counts
//!   `learn.errors` and the loop continues serving the previous
//!   generation; a retrain that selects zero languages (too little data
//!   yet) counts `learn.skipped` and is not swapped in.
//! - **Shutdown.** The loop exits when the server drops the last sender
//!   (worker drain) or the shutdown flag flips; it never blocks
//!   shutdown for longer than one queue tick plus an in-flight retrain.

use crate::registry::ModelRegistry;
use crate::server::ServerHandle;
use crate::stats::ServerStats;
use adt_core::{save_model, AutoDetectConfig, OnlineLearner};
use adt_corpus::{Column, Corpus};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one server's learn loop.
#[derive(Debug, Clone)]
pub struct LearnConfig {
    /// Registry model the retrains overwrite; `None` targets the
    /// registry default (resolved and validated at
    /// [`crate::server::Server::bind`]).
    pub model: Option<String>,
    /// Retrain once this many columns arrived since the last retrain.
    pub absorb_columns: u64,
    /// Retrain once a pending column has waited this long.
    pub absorb_interval: Duration,
    /// Bounded ingest queue depth, in batches (one `/v1/learn` request
    /// or one tapped scan = one batch).
    pub queue_capacity: usize,
    /// Training configuration for the incremental retrains.
    pub train: AutoDetectConfig,
    /// Columns the learner starts from — typically the corpus the
    /// serving model was trained on, so the first retrain is an
    /// incremental step rather than a cold start. Seed columns never
    /// trigger a retrain by themselves.
    pub seed_corpus: Option<Corpus>,
}

impl LearnConfig {
    /// A learn configuration for `train`, absorb thresholds taken from
    /// the config's `online_absorb_columns` / `online_interval_secs`
    /// knobs.
    pub fn new(train: AutoDetectConfig) -> LearnConfig {
        LearnConfig {
            model: None,
            absorb_columns: train.online_absorb_columns as u64,
            absorb_interval: Duration::from_secs(train.online_interval_secs),
            queue_capacity: 64,
            train,
            seed_corpus: None,
        }
    }
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig::new(AutoDetectConfig::default())
    }
}

/// The learner thread body: drain the ingest queue, absorb, retrain on
/// threshold, swap. Runs until the last sender drops or shutdown.
pub(crate) fn run_learner(
    rx: Receiver<Vec<Column>>,
    config: LearnConfig,
    target: String,
    registry: Arc<ModelRegistry>,
    stats: Arc<ServerStats>,
    handle: ServerHandle,
) {
    let mut learner = match OnlineLearner::new(config.train.clone()) {
        Ok(l) => l,
        Err(_) => {
            // Unreachable after bind-time validation, but a learner that
            // cannot start must not take the server down with it.
            stats.learn_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    if let Some(seed) = &config.seed_corpus {
        if learner.absorb_columns(seed.columns().to_vec()).is_err() {
            stats.learn_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    // Wake at least this often so shutdown and the interval threshold
    // are both checked promptly even on an idle queue.
    let tick = config
        .absorb_interval
        .min(Duration::from_millis(200))
        .max(Duration::from_millis(10));
    // adt-allow(determinism): learner scheduling only; absorbed results are wall-clock independent
    let mut oldest_pending = Instant::now();
    // Columns ingested since the last retrain. Tracked here rather than
    // via the learner so the seed corpus does not count toward the
    // threshold.
    let mut pending = 0u64;
    loop {
        let mut disconnected = false;
        match rx.recv_timeout(tick) {
            Ok(batch) => {
                let n = batch.len() as u64;
                if pending == 0 {
                    // adt-allow(determinism): learner scheduling only; absorbed results are wall-clock independent
                    oldest_pending = Instant::now();
                }
                match learner.absorb_columns(batch) {
                    Ok(()) => {
                        pending += n;
                        stats.learn_absorbs.fetch_add(1, Ordering::Relaxed);
                        stats
                            .learn_pending_columns
                            .store(pending, Ordering::Relaxed);
                    }
                    Err(_) => {
                        stats.learn_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => disconnected = true,
        }
        if handle.is_shutting_down() {
            break;
        }
        let due = pending >= config.absorb_columns
            || (pending > 0 && oldest_pending.elapsed() >= config.absorb_interval);
        if due {
            retrain_and_swap(&mut learner, &target, &registry, &stats);
            pending = 0;
            stats.learn_pending_columns.store(0, Ordering::Relaxed);
        }
        if disconnected {
            break;
        }
    }
}

/// One retrain: emit the model, persist it atomically over the target's
/// backing file, and nudge the registry so the generation bump is live
/// before the next scan asks.
fn retrain_and_swap(
    learner: &mut OnlineLearner,
    target: &str,
    registry: &ModelRegistry,
    stats: &ServerStats,
) {
    // adt-allow(determinism): wall-clock feeds the learn.last_retrain_ms gauge only
    let start = Instant::now();
    let model = match learner.retrain() {
        Ok((model, _report)) => model,
        Err(_) => {
            stats.learn_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    stats.learn_retrains.fetch_add(1, Ordering::Relaxed);
    stats
        .learn_last_retrain_ms
        .store(start.elapsed().as_millis() as u64, Ordering::Relaxed);
    if model.num_languages() == 0 {
        // Too little absorbed data to select anything: swapping this in
        // would blind the server. Keep serving the current generation.
        stats.learn_skipped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // Write to the entry's own path (it may be .bin or .json; the codec
    // follows the extension) so the fingerprint watch sees the change.
    let Some(path) = registry.path_of(target) else {
        stats.learn_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    if save_model(&model, &path).is_err() {
        stats.learn_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // save_model's rename is the atomic swap; this lookup hot-reloads
    // immediately instead of waiting for the next scan to notice.
    if registry.get(target).is_some() {
        stats.learn_swaps.fetch_add(1, Ordering::Relaxed);
    } else {
        stats.learn_errors.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learn_config_inherits_online_knobs() {
        let train = AutoDetectConfig::builder()
            .online_absorb_columns(32)
            .online_interval_secs(5)
            .build()
            .unwrap();
        let lc = LearnConfig::new(train);
        assert_eq!(lc.absorb_columns, 32);
        assert_eq!(lc.absorb_interval, Duration::from_secs(5));
        assert!(lc.model.is_none());
        assert!(lc.seed_corpus.is_none());
        assert!(lc.queue_capacity > 0);
        let d = LearnConfig::default();
        assert_eq!(d.absorb_columns, 256);
        assert_eq!(d.absorb_interval, Duration::from_secs(60));
    }
}
