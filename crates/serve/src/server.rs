//! The detection server: a `TcpListener` accept loop feeding a bounded
//! queue of connections into a pool of worker threads, which parse HTTP,
//! route, and push scan work through the shared micro-batcher.
//!
//! Operational properties:
//!
//! - **Backpressure.** The accept queue is bounded; when it is full the
//!   acceptor answers `503` inline and drops the connection instead of
//!   queueing unbounded work.
//! - **Panic isolation.** Each request is routed under `catch_unwind`;
//!   a panicking handler costs that request a `500`, never the process.
//!   (Engine worker panics are already converted to errors upstream.)
//! - **Timeouts.** Sockets carry read/write timeouts, so a stalled or
//!   malicious peer cannot pin a worker forever.
//! - **Graceful shutdown.** `POST /v1/shutdown` (or
//!   [`ServerHandle::shutdown`], which the CLI can wire to a signal flag)
//!   flips an atomic checked between accepts and wakes the acceptor with
//!   a self-connection. The acceptor stops, queued connections drain,
//!   in-flight requests complete and are answered, then workers and the
//!   batcher exit and [`Server::run`] returns.

use crate::batch::{run_batcher, ScanJob};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::json::{self, Json};
use crate::learn::{self, LearnConfig};
use crate::protocol;
use crate::registry::{ModelHandle, ModelRegistry};
use crate::stats::ServerStats;
use adt_core::ensemble::{EnsembleEngine, MergePolicy};
use adt_core::{AdtError, ColumnFinding, ColumnSummary, DetectorSpec, TableFinding};
use adt_corpus::Column;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` for an ephemeral port).
    pub addr: String,
    /// HTTP worker threads (0 = available cores).
    pub workers: usize,
    /// Scan-engine threads per batch dispatch (0 = available cores).
    pub engine_threads: usize,
    /// Bounded accept queue depth; beyond it connections get `503`.
    pub queue_capacity: usize,
    /// Hard request-body limit (enforced before the body is read).
    pub max_body_bytes: usize,
    /// Socket read/write timeout — bounds how long a stalled peer can
    /// hold a worker (and how long shutdown waits on idle keep-alives).
    pub io_timeout: Duration,
    /// Most requests merged into one micro-batch dispatch.
    pub max_batch_jobs: usize,
    /// Online learning loop; `None` disables `POST /v1/learn` and the
    /// scan tap.
    pub learn: Option<LearnConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            engine_threads: 0,
            queue_capacity: 128,
            max_body_bytes: 8 << 20,
            io_timeout: Duration::from_secs(10),
            max_batch_jobs: 32,
            learn: None,
        }
    }
}

/// Remote control for a running server: trigger shutdown from another
/// thread (tests, a CLI signal flag, the shutdown endpoint).
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the acceptor. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway self-connection.
        // adt-allow(error-path): the wake-up connection is best-effort; the acceptor also exits on its own accept timeout
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A bound-but-not-yet-running detection server.
#[derive(Debug)]
pub struct Server {
    config: ServeConfig,
    registry: Arc<ModelRegistry>,
    stats: Arc<ServerStats>,
    listener: TcpListener,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Registry model the learn loop retrains, resolved and validated
    /// at bind time; `None` when learning is disabled.
    learn_target: Option<String>,
}

impl Server {
    /// Binds the listener. The server starts serving on [`Server::run`].
    ///
    /// A learn-enabled configuration is validated here: the training
    /// knobs must pass [`adt_core::AutoDetectConfig::validate`] and the
    /// target model must resolve to a loaded registry entry — a learner
    /// that could never swap is a deployment error worth failing fast on.
    pub fn bind(config: ServeConfig, registry: ModelRegistry) -> Result<Server, AdtError> {
        let learn_target = match &config.learn {
            None => None,
            Some(learn) => {
                learn.train.validate()?;
                let name = learn
                    .model
                    .clone()
                    .or_else(|| registry.default_name())
                    .ok_or_else(|| {
                        AdtError::Config(
                            "learn target is ambiguous: multiple models are loaded and none \
                             is named \"default\"; set LearnConfig::model"
                                .into(),
                        )
                    })?;
                if registry.path_of(&name).is_none() {
                    return Err(AdtError::Config(format!(
                        "learn target {name:?} is not a loaded model (have {:?})",
                        registry.names()
                    )));
                }
                Some(name)
            }
        };
        let addrs: Vec<SocketAddr> = config
            .addr
            .to_socket_addrs()
            .map_err(|e| AdtError::Config(format!("bad address {:?}: {e}", config.addr)))?
            .collect();
        let listener = TcpListener::bind(&addrs[..])?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            config,
            registry: Arc::new(registry),
            stats: Arc::new(ServerStats::default()),
            listener,
            local_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            learn_target,
        })
    }

    /// The actually-bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.local_addr,
        }
    }

    /// The shared stats (also served at `GET /v1/stats`).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Runs the server on a background thread; returns the bound address,
    /// the control handle, and the join handle. Convenience for tests,
    /// benches, and embedding.
    #[allow(clippy::type_complexity)]
    pub fn spawn(
        self,
    ) -> (
        SocketAddr,
        ServerHandle,
        thread::JoinHandle<Result<(), AdtError>>,
    ) {
        let addr = self.local_addr();
        let handle = self.handle();
        let join = thread::spawn(move || self.run());
        (addr, handle, join)
    }

    /// Serves until shutdown is requested, then drains and returns.
    pub fn run(self) -> Result<(), AdtError> {
        let workers = adt_core::resolve_threads(self.config.workers).max(1);
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(self.config.queue_capacity.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let (job_tx, job_rx) = mpsc::channel::<ScanJob>();

        let batcher = {
            let stats = Arc::clone(&self.stats);
            let engine_threads = self.config.engine_threads;
            let max_jobs = self.config.max_batch_jobs;
            thread::Builder::new()
                .name("adt-batcher".into())
                .spawn(move || {
                    run_batcher(job_rx, engine_threads, max_jobs, |d| {
                        stats.batches.fetch_add(d.dispatches, Ordering::Relaxed);
                        stats
                            .npmi_probes
                            .fetch_add(d.npmi_probes, Ordering::Relaxed);
                        stats
                            .npmi_memo_hits
                            .fetch_add(d.npmi_memo_hits, Ordering::Relaxed);
                        stats
                            .kernel_group_columns
                            .fetch_add(d.kernel_group, Ordering::Relaxed);
                        stats
                            .kernel_direct_columns
                            .fetch_add(d.kernel_direct, Ordering::Relaxed);
                    })
                })
                .map_err(AdtError::Io)?
        };

        // The learn loop: a bounded ingest queue feeding one background
        // learner thread. Workers hold the only senders after spawn, so
        // worker drain disconnects the learner too.
        let (learn_tx, learner) = match (&self.config.learn, &self.learn_target) {
            (Some(cfg), Some(target)) => {
                let (tx, rx) = mpsc::sync_channel::<Vec<Column>>(cfg.queue_capacity.max(1));
                let cfg = cfg.clone();
                let target = target.clone();
                let registry = Arc::clone(&self.registry);
                let stats = Arc::clone(&self.stats);
                let handle = self.handle();
                let join = thread::Builder::new()
                    .name("adt-learner".into())
                    .spawn(move || learn::run_learner(rx, cfg, target, registry, stats, handle))
                    .map_err(AdtError::Io)?;
                (Some(tx), Some(join))
            }
            _ => (None, None),
        };

        let mut worker_joins = Vec::with_capacity(workers);
        for i in 0..workers {
            let ctx = WorkerCtx {
                conn_rx: Arc::clone(&conn_rx),
                registry: Arc::clone(&self.registry),
                stats: Arc::clone(&self.stats),
                job_tx: job_tx.clone(),
                learn_tx: learn_tx.clone(),
                handle: self.handle(),
                max_body: self.config.max_body_bytes,
                engine_threads: self.config.engine_threads,
            };
            worker_joins.push(
                thread::Builder::new()
                    .name(format!("adt-worker-{i}"))
                    .spawn(move || worker_loop(ctx))
                    .map_err(AdtError::Io)?,
            );
        }
        // Workers own the only remaining job senders; when the last
        // worker exits, the batcher's receiver disconnects and it stops.
        // Same for the learn senders and the learner.
        drop(job_tx);
        drop(learn_tx);

        // Accept loop: runs on the calling thread until shutdown.
        loop {
            let (stream, _peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if self.shutdown.load(Ordering::SeqCst) => break,
                Err(_) => continue,
            };
            if self.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection (or a late client) is dropped
            }
            // adt-allow(error-path): socket-option failures only cost the options themselves; the worker's request parsing still bounds the connection
            let _ = stream.set_read_timeout(Some(self.config.io_timeout));
            // adt-allow(error-path): same — a stream without a write timeout still ends with the response
            let _ = stream.set_write_timeout(Some(self.config.io_timeout));
            // adt-allow(error-path): nodelay is a latency hint; losing it is harmless
            let _ = stream.set_nodelay(true);
            match conn_tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    // Backpressure: answer 503 inline and shed the load.
                    self.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                    let body = protocol::error_to_json("server busy, try again").to_text();
                    // adt-allow(error-path): a client that vanished before its 503 needs no 503
                    let _ = write_response(&mut stream, 503, &body, false);
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }

        // Drain: closing the connection channel lets workers finish the
        // queued and in-flight connections, then exit.
        drop(conn_tx);
        for join in worker_joins {
            // adt-allow(error-path): a worker that panicked already failed its own requests; drain just waits it out
            let _ = join.join();
        }
        if let Some(join) = learner {
            // adt-allow(error-path): learner failures are isolated into `learn.errors` while it runs; at drain only the join matters
            let _ = join.join();
        }
        // adt-allow(error-path): batcher panics surface as failed dispatches per request; drain just waits
        let _ = batcher.join();
        Ok(())
    }
}

struct WorkerCtx {
    conn_rx: Arc<Mutex<Receiver<TcpStream>>>,
    registry: Arc<ModelRegistry>,
    stats: Arc<ServerStats>,
    job_tx: mpsc::Sender<ScanJob>,
    /// Present on learn-enabled servers: the bounded ingest queue.
    learn_tx: Option<mpsc::SyncSender<Vec<Column>>>,
    handle: ServerHandle,
    max_body: usize,
    engine_threads: usize,
}

fn worker_loop(ctx: WorkerCtx) {
    loop {
        // Disconnection means the acceptor is done.
        let stream = match next_conn(&ctx) {
            Ok(s) => s,
            Err(_) => break,
        };
        serve_connection(&ctx, stream);
    }
}

/// Takes the next queued connection off the shared receiver — the
/// standard shared-receiver pattern: the lock exists only to serialize
/// `recv` calls. Poison can only mean a sibling worker panicked between
/// lock and recv, which leaves the receiver itself intact, so the guard
/// is recovered rather than cascading the panic.
fn next_conn(ctx: &WorkerCtx) -> Result<TcpStream, mpsc::RecvError> {
    let rx = ctx.conn_rx.lock().unwrap_or_else(PoisonError::into_inner);
    // adt-allow(lock-discipline): intentional shared-receiver recv; the guard exists only for this recv
    rx.recv()
}

fn serve_connection(ctx: &WorkerCtx, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader, ctx.max_body) {
            Ok(Some(req)) => req,
            Ok(None) => return, // peer closed cleanly
            Err(e) => {
                let (status, msg) = match &e {
                    HttpError::Malformed(m) => (400, m.clone()),
                    HttpError::BodyTooLarge { declared, limit } => (
                        413,
                        format!("request body of {declared} bytes exceeds limit of {limit}"),
                    ),
                    HttpError::LengthRequired => {
                        (411, "requests must use Content-Length framing".into())
                    }
                    HttpError::Io(_) => return, // timeout / reset: just close
                };
                ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
                ctx.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                let body = protocol::error_to_json(&msg).to_text();
                // adt-allow(error-path): the error response is best-effort; a gone client cannot receive its 4xx
                let _ = write_response(&mut writer, status, &body, false);
                return;
            }
        };
        let keep_alive = req.keep_alive() && !ctx.handle.is_shutting_down();
        // Panic isolation: a handler bug costs this request a 500.
        let (status, body) = match catch_unwind(AssertUnwindSafe(|| route(ctx, &req))) {
            Ok(outcome) => outcome,
            Err(_) => {
                ctx.stats.server_errors.fetch_add(1, Ordering::Relaxed);
                (500, protocol::error_to_json("internal error"))
            }
        };
        if write_response(&mut writer, status, &body.to_text(), keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Routes one request; returns `(status, body)`.
fn route(ctx: &WorkerCtx, req: &Request) -> (u16, Json) {
    ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
    let outcome = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => (
            200,
            Json::obj(vec![
                ("status", Json::str("ok")),
                (
                    "models",
                    Json::Arr(ctx.registry.names().into_iter().map(Json::Str).collect()),
                ),
            ]),
        ),
        ("GET", "/v1/stats") => {
            let mut v = ctx.stats.to_json();
            if let Json::Obj(members) = &mut v {
                members.push((
                    "model_reloads".into(),
                    Json::num(ctx.registry.reloads() as f64),
                ));
                members.push((
                    "model_reload_errors".into(),
                    Json::num(ctx.registry.reload_errors() as f64),
                ));
            }
            (200, v)
        }
        ("GET", "/v1/models") => {
            let rows = ctx
                .registry
                .describe()
                .into_iter()
                .map(|(name, generation, languages, bytes)| {
                    Json::obj(vec![
                        ("name", Json::str(name)),
                        ("generation", Json::num(generation as f64)),
                        ("languages", Json::num(languages as f64)),
                        ("size_bytes", Json::num(bytes as f64)),
                    ])
                })
                .collect();
            (200, Json::obj(vec![("models", Json::Arr(rows))]))
        }
        ("POST", "/v1/scan") => handle_scan(ctx, req),
        ("POST", "/v1/learn") => handle_learn(ctx, req),
        ("POST", "/v1/shutdown") => {
            ctx.handle.shutdown();
            (200, Json::obj(vec![("status", Json::str("shutting down"))]))
        }
        (
            _,
            "/v1/healthz" | "/v1/stats" | "/v1/models" | "/v1/scan" | "/v1/learn" | "/v1/shutdown",
        ) => (
            405,
            protocol::error_to_json(&format!("method {} not allowed here", req.method)),
        ),
        (_, path) => (
            404,
            protocol::error_to_json(&format!("no such route {path}")),
        ),
    };
    match outcome.0 {
        400..=499 => {
            ctx.stats.client_errors.fetch_add(1, Ordering::Relaxed);
        }
        500..=599 => {
            ctx.stats.server_errors.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    outcome
}

fn handle_scan(ctx: &WorkerCtx, req: &Request) -> (u16, Json) {
    // adt-allow(determinism): wall-clock feeds the latency histogram only, never scan results
    let start = Instant::now();
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return (400, protocol::error_to_json("body is not UTF-8")),
    };
    let value = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return (400, protocol::error_to_json(&format!("invalid JSON: {e}"))),
    };
    let scan = match protocol::parse_scan_request(&value) {
        Ok(s) => s,
        Err(e) => return (400, protocol::error_to_json(&e.to_string())),
    };
    let name = match scan.model.or_else(|| ctx.registry.default_name()) {
        Some(n) => n,
        None => {
            return (
                400,
                protocol::error_to_json(
                    "multiple models are loaded and none is named \"default\"; \
                     pass \"model\" in the request",
                ),
            )
        }
    };
    let handle = match ctx.registry.get(&name) {
        Some(h) => h,
        None => {
            return (
                404,
                protocol::error_to_json(&format!("unknown model {name:?}")),
            )
        }
    };
    if scan.learn {
        // Opt-in tap: queue a copy of the columns for the learner. The
        // tap is best-effort — a full queue sheds the batch (counted)
        // rather than failing or slowing the scan.
        let Some(tx) = &ctx.learn_tx else {
            return (
                400,
                protocol::error_to_json(
                    "\"learn\": true requires a server started with online learning enabled",
                ),
            );
        };
        let tapped = scan.columns.len() as u64;
        match tx.try_send(scan.columns.clone()) {
            Ok(()) => {
                ctx.stats
                    .learn_ingested_columns
                    .fetch_add(tapped, Ordering::Relaxed);
            }
            Err(_) => {
                ctx.stats
                    .learn_dropped_columns
                    .fetch_add(tapped, Ordering::Relaxed);
            }
        }
    }
    if let Some(detectors) = &scan.detectors {
        return handle_ensemble_scan(
            ctx,
            &handle,
            detectors,
            scan.merge.as_deref(),
            &scan.columns,
            start,
        );
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = ScanJob {
        handle: handle.clone(),
        columns: scan.columns,
        reply: reply_tx,
    };
    if ctx.job_tx.send(job).is_err() {
        return (500, protocol::error_to_json("scan queue is closed"));
    }
    let result = match reply_rx.recv() {
        Ok(Ok(r)) => r,
        Ok(Err(msg)) => return (500, protocol::error_to_json(&format!("scan failed: {msg}"))),
        Err(_) => return (500, protocol::error_to_json("scan worker disappeared")),
    };
    ctx.stats.scans_ok.fetch_add(1, Ordering::Relaxed);
    ctx.stats
        .findings
        .fetch_add(result.findings.len() as u64, Ordering::Relaxed);
    ctx.stats
        .columns_scanned
        .fetch_add(result.columns.len() as u64, Ordering::Relaxed);
    ctx.stats.values_scored.fetch_add(
        result.columns.iter().map(|c| c.values_scored).sum::<u64>(),
        Ordering::Relaxed,
    );
    ctx.stats.record_model_hit(&handle.name);
    ctx.stats.latency.record(start.elapsed());
    (
        200,
        protocol::scan_response_to_json(
            &handle.name,
            handle.generation,
            result.batched_with,
            &result.findings,
            &result.columns,
        ),
    )
}

/// `POST /v1/learn`: queue uploaded columns for the background learner.
/// `202` with the accepted count on success; `503` when the bounded
/// ingest queue is full (backpressure, mirroring the accept queue);
/// `409` when the server runs without a learn loop.
fn handle_learn(ctx: &WorkerCtx, req: &Request) -> (u16, Json) {
    let Some(tx) = &ctx.learn_tx else {
        return (
            409,
            protocol::error_to_json(
                "online learning is disabled; start the server with learning enabled \
                 (autodetect serve --learn)",
            ),
        );
    };
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return (400, protocol::error_to_json("body is not UTF-8")),
    };
    let value = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return (400, protocol::error_to_json(&format!("invalid JSON: {e}"))),
    };
    let columns = match protocol::parse_learn_request(&value) {
        Ok(c) => c,
        Err(e) => return (400, protocol::error_to_json(&e.to_string())),
    };
    if columns.is_empty() {
        return (
            400,
            protocol::error_to_json("\"columns\" must name at least one column"),
        );
    }
    let accepted = columns.len() as u64;
    match tx.try_send(columns) {
        Ok(()) => {
            ctx.stats.learn_requests.fetch_add(1, Ordering::Relaxed);
            ctx.stats
                .learn_ingested_columns
                .fetch_add(accepted, Ordering::Relaxed);
            (202, protocol::learn_response_to_json(accepted))
        }
        Err(TrySendError::Full(_)) => {
            ctx.stats
                .learn_dropped_columns
                .fetch_add(accepted, Ordering::Relaxed);
            (
                503,
                protocol::error_to_json("learn queue is full, try again"),
            )
        }
        Err(TrySendError::Disconnected(_)) => (500, protocol::error_to_json("learner stopped")),
    }
}

/// The ensemble path of `POST /v1/scan`: builds the requested detector
/// set around the resolved model, runs the [`EnsembleEngine`] inline
/// (bypassing the micro-batcher — member detectors are constructed per
/// request and share no cache pool), and encodes merged predictions
/// with the per-detector lanes. Unknown detector names, duplicates, and
/// malformed merge policies are 400s carrying the offending input.
fn handle_ensemble_scan(
    ctx: &WorkerCtx,
    handle: &ModelHandle,
    detectors: &[String],
    merge: Option<&str>,
    columns: &[Column],
    start: Instant,
) -> (u16, Json) {
    if detectors.is_empty() {
        return (
            400,
            protocol::error_to_json("\"detectors\" must name at least one detector"),
        );
    }
    let mut specs = Vec::with_capacity(detectors.len());
    for name in detectors {
        match DetectorSpec::parse(name) {
            // The Config error text names the offender and the valid
            // choices — exactly what a 400 should carry.
            Err(e) => return (400, protocol::error_to_json(&e.to_string())),
            Ok(spec) => {
                if specs.contains(&spec) {
                    return (
                        400,
                        protocol::error_to_json(&format!("duplicate detector '{}'", spec.name())),
                    );
                }
                specs.push(spec);
            }
        }
    }
    let merge = match MergePolicy::parse(merge.unwrap_or("union")) {
        Ok(m) => m,
        Err(e) => return (400, protocol::error_to_json(&e.to_string())),
    };
    if let MergePolicy::Vote(k) = merge {
        if k > specs.len() {
            return (
                400,
                protocol::error_to_json(&format!(
                    "vote merge threshold {k} exceeds the {} requested detector(s)",
                    specs.len()
                )),
            );
        }
    }
    let registry = adt_baselines::standard_registry(Arc::clone(&handle.model));
    let members = match registry.build_set(&specs) {
        Ok(m) => m,
        Err(e) => return (400, protocol::error_to_json(&e.to_string())),
    };
    let merge_label = merge.label();
    let engine = EnsembleEngine::new(members)
        .with_merge(merge)
        .with_threads(ctx.engine_threads);
    let report = match engine.run(columns) {
        Ok(r) => r,
        Err(e) => {
            return (
                500,
                protocol::error_to_json(&format!("ensemble scan failed: {e}")),
            )
        }
    };

    let mut findings: Vec<TableFinding> = Vec::new();
    let mut summaries: Vec<ColumnSummary> = Vec::with_capacity(columns.len());
    for (i, (col, preds)) in columns.iter().zip(&report.predictions).enumerate() {
        summaries.push(ColumnSummary {
            index: i,
            header: col.header.clone(),
            values_scored: adt_core::api::value_counts(col).len() as u64,
            num_findings: preds.len(),
        });
        for p in preds {
            findings.push(TableFinding {
                column_index: i,
                column_header: col.header.clone(),
                finding: ColumnFinding {
                    suspect: p.value.clone(),
                    // Rank-pooled confidences have no single witnessing
                    // pair or NPMI score; the wire shape documents this.
                    witness: String::new(),
                    confidence: p.confidence,
                    score: 0.0,
                },
            });
        }
    }
    // Same global order the single-model engine reports: confidence
    // descending, then column, then suspect.
    findings.sort_by(|a, b| {
        b.finding
            .confidence
            .total_cmp(&a.finding.confidence)
            .then_with(|| a.column_index.cmp(&b.column_index))
            .then_with(|| a.finding.suspect.cmp(&b.finding.suspect))
    });

    ctx.stats.scans_ok.fetch_add(1, Ordering::Relaxed);
    ctx.stats.ensemble_scans.fetch_add(1, Ordering::Relaxed);
    ctx.stats
        .findings
        .fetch_add(findings.len() as u64, Ordering::Relaxed);
    ctx.stats
        .columns_scanned
        .fetch_add(columns.len() as u64, Ordering::Relaxed);
    ctx.stats.values_scored.fetch_add(
        summaries.iter().map(|c| c.values_scored).sum::<u64>(),
        Ordering::Relaxed,
    );
    ctx.stats.record_detector_lanes(&report.stats.detectors);
    ctx.stats.record_model_hit(&handle.name);
    ctx.stats.latency.record(start.elapsed());
    (
        200,
        protocol::scan_response_to_json_full(
            &handle.name,
            handle.generation,
            0,
            &findings,
            &summaries,
            Some((&merge_label, &report.stats.detectors)),
        ),
    )
}
