//! Property tests for the evaluation metrics.

use adt_baselines::Prediction;
use adt_corpus::{Column, SourceTag};
use adt_eval::metrics::{pooled_predictions, precision_at_k, precision_series};
use adt_eval::TestCase;
use proptest::prelude::*;

fn arb_cases_and_preds() -> impl Strategy<Value = (Vec<TestCase>, Vec<Vec<Prediction>>)> {
    proptest::collection::vec(
        (
            proptest::collection::vec("[a-e]{1,3}", 1..6), // column values
            proptest::collection::vec(("[a-e]{1,3}", 0.0f64..1.0), 0..4), // predictions
            any::<bool>(),                                 // first value is an error?
        ),
        1..12,
    )
    .prop_map(|specs| {
        let mut cases = Vec::new();
        let mut preds = Vec::new();
        for (values, ps, dirty) in specs {
            let errors = if dirty {
                vec![values[0].clone()]
            } else {
                Vec::new()
            };
            let refs: Vec<&str> = values.iter().map(|s| s.as_str()).collect();
            cases.push(TestCase {
                column: Column::from_strs(&refs, SourceTag::Csv),
                errors,
            });
            preds.push(
                ps.into_iter()
                    .map(|(value, confidence)| Prediction { value, confidence })
                    .collect(),
            );
        }
        (cases, preds)
    })
}

proptest! {
    #[test]
    fn pooled_ranking_is_confidence_sorted((cases, preds) in arb_cases_and_preds()) {
        let pooled = pooled_predictions(&cases, &preds, 8);
        for w in pooled.windows(2) {
            prop_assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn precision_bounded_and_consistent((cases, preds) in arb_cases_and_preds()) {
        let pooled = pooled_predictions(&cases, &preds, 8);
        for k in [1usize, 2, 5, 100] {
            let p = precision_at_k(&pooled, k);
            prop_assert!((0.0..=1.0).contains(&p));
        }
        // precision_at_k(len) equals overall fraction of correct.
        if !pooled.is_empty() {
            let overall = pooled.iter().filter(|p| p.correct).count() as f64
                / pooled.len() as f64;
            prop_assert!((precision_at_k(&pooled, pooled.len()) - overall).abs() < 1e-12);
        }
    }

    #[test]
    fn per_column_cap_never_exceeded((cases, preds) in arb_cases_and_preds()) {
        for cap in [1usize, 2, 3] {
            let pooled = pooled_predictions(&cases, &preds, cap);
            for (i, _) in cases.iter().enumerate() {
                let from_case = pooled.iter().filter(|p| p.case == i).count();
                prop_assert!(from_case <= cap);
            }
        }
    }

    #[test]
    fn correctness_labels_match_ground_truth((cases, preds) in arb_cases_and_preds()) {
        let pooled = pooled_predictions(&cases, &preds, 8);
        for p in &pooled {
            prop_assert_eq!(p.correct, cases[p.case].is_error(&p.value));
        }
    }

    #[test]
    fn series_matches_pointwise((cases, preds) in arb_cases_and_preds()) {
        let pooled = pooled_predictions(&cases, &preds, 8);
        let ks = [1usize, 3, 7];
        let series = precision_series(&pooled, &ks);
        for (i, &k) in ks.iter().enumerate() {
            prop_assert_eq!(series[i], (k, precision_at_k(&pooled, k)));
        }
    }
}
