//! Experiment result structures and rendering.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One method's precision@k series (one line of a paper figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Method / configuration label.
    pub label: String,
    /// `(k, precision)` points.
    pub points: Vec<(usize, f64)>,
}

/// A full figure: several series over the same k grid.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Figure {
    /// Figure identifier, e.g. "fig5-1:10".
    pub id: String,
    /// Axis/metadata notes.
    pub note: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// New empty figure.
    pub fn new(id: &str, note: &str) -> Self {
        Figure {
            id: id.to_string(),
            note: note.to_string(),
            series: Vec::new(),
        }
    }

    /// Adds one series.
    pub fn push(&mut self, label: &str, points: Vec<(usize, f64)>) {
        self.series.push(Series {
            label: label.to_string(),
            points,
        });
    }

    /// Renders the figure as an aligned text table (methods × k).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.note);
        let ks: Vec<usize> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(k, _)| k).collect())
            .unwrap_or_default();
        let _ = write!(out, "{:<16}", "method");
        for k in &ks {
            let _ = write!(out, " p@{k:<7}");
        }
        let _ = writeln!(out);
        for s in &self.series {
            let _ = write!(out, "{:<16}", s.label);
            for &(_, p) in &s.points {
                let _ = write!(out, " {p:<9.3}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Saves as JSON (consumed by EXPERIMENTS.md tooling).
    pub fn save_json<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        serde_json::to_writer_pretty(std::io::BufWriter::new(f), self)
            .map_err(std::io::Error::other)
    }
}

/// Empirical CDF of a sample: `(x, F(x))` at each distinct value,
/// downsampled to at most `points` entries (Figure 17(b)).
pub fn empirical_cdf(samples: &mut [f64], points: usize) -> Vec<(f64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    let take = points.max(2).min(n);
    (0..take)
        .map(|i| {
            let idx = if take == 1 {
                0
            } else {
                i * (n - 1) / (take - 1)
            };
            (samples[idx], (idx + 1) as f64 / n as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_contains_labels_and_values() {
        let mut fig = Figure::new("test", "note");
        fig.push("MethodA", vec![(10, 0.95), (100, 0.80)]);
        fig.push("MethodB", vec![(10, 0.50), (100, 0.40)]);
        let t = fig.to_table();
        assert!(t.contains("MethodA"));
        assert!(t.contains("0.950"));
        assert!(t.contains("p@10"));
        assert!(t.contains("p@100"));
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let mut xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 37) % 100) as f64 / 50.0 - 1.0)
            .collect();
        let cdf = empirical_cdf(&mut xs, 64);
        assert!(cdf.len() <= 64);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_empty() {
        let mut xs: Vec<f64> = Vec::new();
        assert!(empirical_cdf(&mut xs, 10).is_empty());
    }

    #[test]
    fn json_roundtrip() {
        // The offline harness stubs serde_json with panicking bodies.
        let json_available =
            std::panic::catch_unwind(|| serde_json::to_string(&0u8).is_ok()).unwrap_or(false);
        if !json_available {
            eprintln!("skipping: JSON codec unavailable (stub serde_json)");
            return;
        }
        let mut fig = Figure::new("rt", "x");
        fig.push("m", vec![(1, 0.5)]);
        let dir = std::env::temp_dir().join("adt_eval_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig.json");
        fig.save_json(&path).unwrap();
        let back: Figure = serde_json::from_reader(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(back.id, "rt");
        assert_eq!(back.series[0].points, vec![(1, 0.5)]);
        std::fs::remove_file(path).ok();
    }
}
