//! Pooled precision@k over ranked predictions.

use crate::testcases::TestCase;
use adt_baselines::Prediction;
use serde::{Deserialize, Serialize};

/// One prediction pooled across test cases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PooledPrediction {
    /// Index of the test case.
    pub case: usize,
    /// The predicted error value.
    pub value: String,
    /// Method confidence (comparable within one method).
    pub confidence: f64,
    /// Ground truth: true when the prediction hits a labeled error.
    pub correct: bool,
}

/// Pools per-case ranked predictions into one global ranking by
/// confidence (the paper's precision@k setup: predictions from 100K
/// columns ranked together).
///
/// `per_column_cap` limits how many predictions one column may
/// contribute; the paper inspects the most incompatible finding(s) per
/// column, so 1–3 is typical.
pub fn pooled_predictions(
    cases: &[TestCase],
    predictions: &[Vec<Prediction>],
    per_column_cap: usize,
) -> Vec<PooledPrediction> {
    assert_eq!(cases.len(), predictions.len());
    let mut pooled: Vec<PooledPrediction> = Vec::new();
    for (i, (case, preds)) in cases.iter().zip(predictions).enumerate() {
        for p in preds.iter().take(per_column_cap) {
            pooled.push(PooledPrediction {
                case: i,
                value: p.value.clone(),
                confidence: p.confidence,
                correct: case.is_error(&p.value),
            });
        }
    }
    pooled.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then_with(|| a.case.cmp(&b.case))
            .then_with(|| a.value.cmp(&b.value))
    });
    pooled
}

/// Precision@k over a pooled ranking: fraction of the top `k` that are
/// correct. When fewer than `k` predictions exist, the available prefix
/// is scored (matching how the paper reports small methods at large k).
pub fn precision_at_k(pooled: &[PooledPrediction], k: usize) -> f64 {
    let top = &pooled[..k.min(pooled.len())];
    if top.is_empty() {
        return 0.0;
    }
    top.iter().filter(|p| p.correct).count() as f64 / top.len() as f64
}

/// Precision@k for each requested k, as `(k, precision)` rows.
pub fn precision_series(pooled: &[PooledPrediction], ks: &[usize]) -> Vec<(usize, f64)> {
    ks.iter().map(|&k| (k, precision_at_k(pooled, k))).collect()
}

/// Recall@k: fraction of all labeled errors recovered within the top `k`
/// pooled predictions. The paper reports "relative recall" on the
/// auto-eval sets, where every dirty case carries exactly one planted
/// error, making precision@k(=n_dirty) and recall coincide; this function
/// is the general form for multi-error cases.
pub fn recall_at_k(cases: &[TestCase], pooled: &[PooledPrediction], k: usize) -> f64 {
    let total_errors: usize = cases.iter().map(|c| c.errors.len()).sum();
    if total_errors == 0 {
        return 0.0;
    }
    // Count distinct (case, value) hits in the top k.
    let mut seen = std::collections::HashSet::new();
    let mut hits = 0usize;
    for p in pooled.iter().take(k) {
        if p.correct && seen.insert((p.case, p.value.clone())) {
            hits += 1;
        }
    }
    hits as f64 / total_errors as f64
}

/// Recall@k for each requested k.
pub fn recall_series(
    cases: &[TestCase],
    pooled: &[PooledPrediction],
    ks: &[usize],
) -> Vec<(usize, f64)> {
    ks.iter()
        .map(|&k| (k, recall_at_k(cases, pooled, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::{Column, SourceTag};

    fn case(values: &[&str], errors: &[&str]) -> TestCase {
        TestCase {
            column: Column::from_strs(values, SourceTag::Csv),
            errors: errors.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn pred(value: &str, confidence: f64) -> Prediction {
        Prediction {
            value: value.to_string(),
            confidence,
        }
    }

    #[test]
    fn pooling_ranks_globally_by_confidence() {
        let cases = vec![case(&["a", "b"], &["b"]), case(&["c", "d"], &["d"])];
        let preds = vec![vec![pred("b", 0.5), pred("a", 0.4)], vec![pred("d", 0.9)]];
        let pooled = pooled_predictions(&cases, &preds, 10);
        assert_eq!(pooled.len(), 3);
        assert_eq!(pooled[0].value, "d");
        assert!(pooled[0].correct);
        assert_eq!(pooled[1].value, "b");
        assert!(pooled[1].correct);
        assert!(!pooled[2].correct);
    }

    #[test]
    fn per_column_cap_applies() {
        let cases = vec![case(&["a", "b", "c"], &[])];
        let preds = vec![vec![pred("a", 0.9), pred("b", 0.8), pred("c", 0.7)]];
        let pooled = pooled_predictions(&cases, &preds, 1);
        assert_eq!(pooled.len(), 1);
        assert_eq!(pooled[0].value, "a");
    }

    #[test]
    fn precision_at_k_values() {
        let cases = vec![case(&["a", "b"], &["b"]), case(&["c", "d"], &["d"])];
        let preds = vec![
            vec![pred("b", 0.9)],
            vec![pred("c", 0.8)], // wrong
        ];
        let pooled = pooled_predictions(&cases, &preds, 10);
        assert_eq!(precision_at_k(&pooled, 1), 1.0);
        assert_eq!(precision_at_k(&pooled, 2), 0.5);
        // k beyond the pool scores the available prefix.
        assert_eq!(precision_at_k(&pooled, 100), 0.5);
    }

    #[test]
    fn empty_pool_is_zero() {
        assert_eq!(precision_at_k(&[], 10), 0.0);
    }

    #[test]
    fn recall_counts_distinct_hits() {
        let cases = vec![
            case(&["a", "b"], &["b"]),
            case(&["c", "d"], &["d"]),
            case(&["e", "f"], &["f"]),
        ];
        let preds = vec![
            vec![pred("b", 0.9)],
            vec![pred("c", 0.8)], // wrong
            vec![],               // missed
        ];
        let pooled = pooled_predictions(&cases, &preds, 10);
        assert!((recall_at_k(&cases, &pooled, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((recall_at_k(&cases, &pooled, 10) - 1.0 / 3.0).abs() < 1e-12);
        let series = recall_series(&cases, &pooled, &[1, 10]);
        assert_eq!(series.len(), 2);
    }

    #[test]
    fn recall_zero_when_no_errors_exist() {
        let cases = vec![case(&["a"], &[])];
        let preds = vec![vec![pred("a", 0.9)]];
        let pooled = pooled_predictions(&cases, &preds, 10);
        assert_eq!(recall_at_k(&cases, &pooled, 10), 0.0);
    }

    #[test]
    fn series_shape() {
        let cases = vec![case(&["a"], &["a"])];
        let preds = vec![vec![pred("a", 1.0)]];
        let pooled = pooled_predictions(&cases, &preds, 5);
        let series = precision_series(&pooled, &[1, 5, 10]);
        assert_eq!(series, vec![(1, 1.0), (5, 1.0), (10, 1.0)]);
    }
}
