//! Test-case construction for both evaluation regimes.

use adt_corpus::{Column, Corpus, LabeledColumn};
use adt_patterns::crude::crude_language;
use adt_stats::{LanguageStats, NpmiParams, StatsConfig};
use rand::prelude::IndexedRandom;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One evaluation column with its ground-truth error values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestCase {
    /// The column under test.
    pub column: Column,
    /// Values that are true errors; empty for clean columns.
    pub errors: Vec<String>,
}

impl TestCase {
    /// True when the case carries at least one error.
    pub fn is_dirty(&self) -> bool {
        !self.errors.is_empty()
    }

    /// True when `value` is one of this case's labeled errors.
    pub fn is_error(&self, value: &str) -> bool {
        self.errors.iter().any(|e| e == value)
    }
}

/// Converts generator-labeled columns into test cases (the stand-in for
/// the paper's manually judged WIKI / CSV sets, §4.3).
pub fn cases_from_labeled(labeled: &[LabeledColumn]) -> Vec<TestCase> {
    labeled
        .iter()
        .map(|l| {
            let errors: Vec<String> = l
                .column
                .distinct_values()
                .into_iter()
                .filter(|v| l.is_error_value(v))
                .map(|v| v.to_string())
                .collect();
            TestCase {
                column: l.column.clone(),
                errors,
            }
        })
        .collect()
}

/// Automatic evaluation cases (§4.4): `n_dirty` columns built by mixing a
/// value `v_d` from one compatible column into another compatible column
/// `C₂` (with the same crude-NPMI pruning as Appendix F, guaranteeing
/// `v_d` is genuinely inconsistent with `C₂`), plus `n_clean` untouched
/// compatible columns. The dirty:clean ratio is the paper's 1:1 / 1:5 /
/// 1:10 knob.
pub fn auto_eval_cases(
    source: &Corpus,
    crude: &LanguageStats,
    npmi: NpmiParams,
    n_dirty: usize,
    n_clean: usize,
    seed: u64,
) -> Vec<TestCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Compatible columns (all sampled pairs crude-compatible).
    let mut compatible: Vec<usize> = Vec::new();
    for (i, col) in source.columns().iter().enumerate() {
        let distinct: Vec<&str> = col
            .distinct_values()
            .into_iter()
            .filter(|v| !v.is_empty())
            .collect();
        if distinct.len() < 2 {
            continue;
        }
        let n = distinct.len().min(10);
        let mut ok = true;
        'outer: for a in 0..n {
            for b in (a + 1)..n {
                if crude.score_values(distinct[a], distinct[b], npmi) <= 0.0 {
                    ok = false;
                    break 'outer;
                }
            }
        }
        if ok {
            compatible.push(i);
        }
    }
    let mut cases = Vec::with_capacity(n_dirty + n_clean);
    if compatible.len() < 2 {
        return cases;
    }

    // Dirty cases.
    let mut guard = 0usize;
    while cases.len() < n_dirty && guard < n_dirty * 50 {
        guard += 1;
        let &c1 = compatible.choose(&mut rng).expect("non-empty");
        let &c2 = compatible.choose(&mut rng).expect("non-empty");
        if c1 == c2 {
            continue;
        }
        let col1 = &source.columns()[c1];
        let col2 = &source.columns()[c2];
        let vd = match col1.non_empty_values().collect::<Vec<_>>().choose(&mut rng) {
            Some(&v) => v.to_string(),
            None => continue,
        };
        // vd must be incompatible with every value of C2 (manually tuned
        // compatibility score of §4.4 = crude NPMI with the Appendix F
        // threshold).
        let incompatible = col2
            .distinct_values()
            .iter()
            .take(10)
            .all(|v| crude.score_values(&vd, v, npmi) < -0.3);
        if !incompatible || col2.values.iter().any(|v| v == &vd) {
            continue;
        }
        let mut values = col2.values.clone();
        let pos = rng.random_range(0..=values.len());
        values.insert(pos, vd.clone());
        cases.push(TestCase {
            column: Column::new(values, col2.source),
            errors: vec![vd],
        });
    }

    // Clean cases: untouched compatible columns.
    let mut clean_added = 0usize;
    let mut idx: Vec<usize> = compatible.clone();
    // Shuffle deterministically.
    for i in (1..idx.len()).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    for &ci in &idx {
        if clean_added >= n_clean {
            break;
        }
        cases.push(TestCase {
            column: source.columns()[ci].clone(),
            errors: Vec::new(),
        });
        clean_added += 1;
    }
    cases
}

/// Builds crude statistics for auto-eval over a training corpus.
pub fn crude_stats(corpus: &Corpus, config: &StatsConfig) -> LanguageStats {
    LanguageStats::build(crude_language(), corpus, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::{generate_corpus, CorpusProfile, SourceTag};

    fn setup() -> (Corpus, LanguageStats) {
        let mut p = CorpusProfile::web(600);
        p.dirty_rate = 0.0;
        let corpus = generate_corpus(&p);
        let crude = crude_stats(&corpus, &StatsConfig::default());
        (corpus, crude)
    }

    #[test]
    fn auto_eval_respects_ratio() {
        let (corpus, crude) = setup();
        let cases = auto_eval_cases(&corpus, &crude, NpmiParams::default(), 50, 250, 7);
        let dirty = cases.iter().filter(|c| c.is_dirty()).count();
        let clean = cases.len() - dirty;
        assert_eq!(dirty, 50);
        assert_eq!(clean, 250);
    }

    #[test]
    fn dirty_cases_contain_the_planted_value() {
        let (corpus, crude) = setup();
        let cases = auto_eval_cases(&corpus, &crude, NpmiParams::default(), 30, 0, 7);
        for c in &cases {
            assert_eq!(c.errors.len(), 1);
            let vd = &c.errors[0];
            assert!(c.column.values.iter().any(|v| v == vd));
            assert!(c.is_error(vd));
            // The planted value appears exactly once.
            assert_eq!(c.column.values.iter().filter(|v| *v == vd).count(), 1);
        }
    }

    #[test]
    fn planted_values_are_crude_incompatible() {
        let (corpus, crude) = setup();
        let cases = auto_eval_cases(&corpus, &crude, NpmiParams::default(), 30, 0, 7);
        for c in &cases {
            let vd = &c.errors[0];
            for v in c.column.distinct_values().iter().take(10) {
                if v == vd {
                    continue;
                }
                let s = crude.score_values(vd, v, NpmiParams::default());
                assert!(s < 0.0, "{vd} vs {v} scored {s}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (corpus, crude) = setup();
        let a = auto_eval_cases(&corpus, &crude, NpmiParams::default(), 20, 20, 9);
        let b = auto_eval_cases(&corpus, &crude, NpmiParams::default(), 20, 20, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.column.values, y.column.values);
            assert_eq!(x.errors, y.errors);
        }
    }

    #[test]
    fn labeled_conversion_keeps_error_values() {
        let labeled = vec![LabeledColumn {
            column: Column::from_strs(&["1", "2", "2x"], SourceTag::Wiki),
            error_rows: vec![2],
            error_note: None,
        }];
        let cases = cases_from_labeled(&labeled);
        assert_eq!(cases[0].errors, vec!["2x".to_string()]);
    }
}
