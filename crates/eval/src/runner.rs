//! Uniform method driver.

use crate::testcases::TestCase;
use adt_baselines::{Detector, Prediction};
use adt_core::{Aggregator, AutoDetect};

/// A method under evaluation.
pub enum Method<'a> {
    /// One of the §4.2 baselines (or Union).
    Baseline(Box<dyn Detector>),
    /// Auto-Detect with its native aggregation.
    AutoDetect(&'a AutoDetect),
    /// Auto-Detect scored through an alternative aggregator (Figure 8(b)).
    AutoDetectWith(&'a AutoDetect, Aggregator, &'static str),
}

impl Method<'_> {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            Method::Baseline(d) => d.name(),
            Method::AutoDetect(_) => "Auto-Detect",
            Method::AutoDetectWith(_, _, name) => name,
        }
    }

    /// Ranked predictions for one column.
    pub fn detect(&self, column: &adt_corpus::Column) -> Vec<Prediction> {
        match self {
            Method::Baseline(d) => d.detect(column),
            Method::AutoDetect(m) => findings_to_predictions(m.detect_column(column)),
            Method::AutoDetectWith(m, agg, _) => {
                findings_to_predictions(m.detect_column_with(column, *agg))
            }
        }
    }
}

fn findings_to_predictions(findings: Vec<adt_core::ColumnFinding>) -> Vec<Prediction> {
    findings
        .into_iter()
        .map(|f| Prediction {
            value: f.suspect,
            confidence: f.confidence,
        })
        .collect()
}

/// Runs a method over all test cases; `predictions[i]` are the ranked
/// predictions for `cases[i]`.
pub fn run_method(method: &Method<'_>, cases: &[TestCase]) -> Vec<Vec<Prediction>> {
    cases.iter().map(|c| method.detect(&c.column)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_baselines::FRegexDetector;
    use adt_corpus::{Column, SourceTag};

    #[test]
    fn baseline_method_runs() {
        let cases = vec![TestCase {
            column: Column::from_strs(&["1", "2", "3", "x"], SourceTag::Csv),
            errors: vec!["x".to_string()],
        }];
        let m = Method::Baseline(Box::new(FRegexDetector::default()));
        assert_eq!(m.name(), "F-Regex");
        let preds = run_method(&m, &cases);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0][0].value, "x");
    }
}
