//! Uniform method driver.
//!
//! Every method under evaluation — the §4.2 baselines and Auto-Detect
//! itself — is one [`Detector`] trait object. [`Method`] only adds the
//! borrow plumbing (Auto-Detect variants borrow a trained model owned by
//! the caller), and [`run_method`] fans the test cases over worker
//! threads via the core scan engine's `parallel_map`.

use crate::testcases::TestCase;
use adt_baselines::{Detector, Prediction};
use adt_core::api::AggregatedAutoDetect;
use adt_core::{parallel_map, Aggregator, AutoDetect};

/// A method under evaluation: any [`Detector`], possibly borrowing a
/// trained model.
pub struct Method<'a> {
    detector: Box<dyn Detector + 'a>,
}

impl<'a> Method<'a> {
    /// Wraps any detector (the §4.2 baselines and Union).
    pub fn baseline(detector: Box<dyn Detector>) -> Self {
        Method { detector }
    }

    /// Auto-Detect with its native ST aggregation.
    pub fn auto_detect(model: &'a AutoDetect) -> Self {
        Method {
            detector: Box::new(model),
        }
    }

    /// Auto-Detect scored through an alternative aggregator
    /// (Figure 8(b)), displayed under `name`.
    pub fn auto_detect_with(
        model: &'a AutoDetect,
        aggregator: Aggregator,
        name: &'static str,
    ) -> Self {
        Method {
            detector: Box::new(AggregatedAutoDetect {
                model,
                aggregator,
                name,
            }),
        }
    }

    /// Any detector with a non-static borrow (escape hatch for custom
    /// methods).
    pub fn from_detector(detector: Box<dyn Detector + 'a>) -> Self {
        Method { detector }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        self.detector.name()
    }

    /// Ranked predictions for one column.
    pub fn detect(&self, column: &adt_corpus::Column) -> Vec<Prediction> {
        self.detector.detect(column)
    }
}

/// Runs a method over all test cases in parallel (all cores);
/// `predictions[i]` are the ranked predictions for `cases[i]`, identical
/// to a serial run.
pub fn run_method(method: &Method<'_>, cases: &[TestCase]) -> Vec<Vec<Prediction>> {
    run_method_threads(method, cases, 0)
}

/// [`run_method`] with an explicit worker thread count (0 = all cores).
pub fn run_method_threads(
    method: &Method<'_>,
    cases: &[TestCase],
    threads: usize,
) -> Vec<Vec<Prediction>> {
    parallel_map(cases, threads, "run_method", |_, c| {
        method.detect(&c.column)
    })
    .expect("evaluation worker panicked")
}

/// Re-exported for callers that convert findings themselves.
pub use adt_core::api::findings_to_predictions as convert_findings;

#[cfg(test)]
mod tests {
    use super::*;
    use adt_baselines::FRegexDetector;
    use adt_corpus::{Column, SourceTag};

    #[test]
    fn baseline_method_runs() {
        let cases = vec![TestCase {
            column: Column::from_strs(&["1", "2", "3", "x"], SourceTag::Csv),
            errors: vec!["x".to_string()],
        }];
        let m = Method::baseline(Box::new(FRegexDetector::default()));
        assert_eq!(m.name(), "F-Regex");
        let preds = run_method(&m, &cases);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0][0].value, "x");
    }

    #[test]
    fn parallel_run_matches_serial() {
        let cases: Vec<TestCase> = (0..32)
            .map(|i| TestCase {
                column: Column::from_strs(&["1", "2", "3", &format!("x{i}")], SourceTag::Csv),
                errors: vec![format!("x{i}")],
            })
            .collect();
        let m = Method::baseline(Box::new(FRegexDetector::default()));
        let serial = run_method_threads(&m, &cases, 1);
        let parallel = run_method_threads(&m, &cases, 8);
        assert_eq!(serial, parallel);
    }
}
