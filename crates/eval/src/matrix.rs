//! Detector × error-class evaluation matrix.
//!
//! The scenario runner behind `matrix_report` / `BENCH_matrix.json`: for
//! each error class in the corpus generator's taxonomy it builds a
//! scenario of columns carrying exactly that error (plus untouched clean
//! columns), runs every requested detector over each scenario, and
//! scores pooled precision@k per (detector, class) cell. The
//! per-detector precision micro-averaged across all classes doubles as
//! the measured precision prior the `calibrated` merge policy consumes.

use crate::metrics::{pooled_predictions, precision_at_k};
use crate::runner::{run_method_threads, Method};
use crate::testcases::TestCase;
use adt_core::{AdtError, DetectorRegistry, DetectorSpec};
use adt_corpus::{corrupt_value, Column, CorpusGenerator, CorpusProfile, ErrorKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One evaluation scenario: every dirty case carries one error of the
/// same class.
pub struct Scenario {
    /// The injected error class.
    pub kind: ErrorKind,
    /// Dirty cases first, then clean cases.
    pub cases: Vec<TestCase>,
}

impl Scenario {
    /// Number of dirty cases (the per-cell `k`).
    pub fn n_dirty(&self) -> usize {
        self.cases.iter().filter(|c| c.is_dirty()).count()
    }
}

/// Builds one scenario per error class in [`ErrorKind::ALL`], with
/// per-class derived seeds so scenarios are independent but the whole
/// matrix is deterministic for a given `seed`.
pub fn build_scenarios(
    profile: &CorpusProfile,
    n_dirty: usize,
    n_clean: usize,
    seed: u64,
) -> Vec<Scenario> {
    ErrorKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| Scenario {
            kind,
            cases: class_cases(
                profile,
                kind,
                n_dirty,
                n_clean,
                seed ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
        })
        .collect()
}

/// Cases for one error class: clean generator columns with one value
/// corrupted by `kind` (rows the kind cannot apply to are re-sampled),
/// plus `n_clean` untouched columns. Some classes do not apply to every
/// domain, so fewer than `n_dirty` dirty cases may come back; callers
/// score against [`Scenario::n_dirty`], not the request.
pub fn class_cases(
    profile: &CorpusProfile,
    kind: ErrorKind,
    n_dirty: usize,
    n_clean: usize,
    seed: u64,
) -> Vec<TestCase> {
    let generator = CorpusGenerator::new(profile.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cases = Vec::with_capacity(n_dirty + n_clean);
    let mut guard = 0usize;
    while cases.len() < n_dirty && guard < n_dirty * 200 {
        guard += 1;
        let gid = generator.sample_group(&mut rng);
        let len = generator.sample_len(&mut rng);
        let col = generator.clean_column(gid, len, &mut rng);
        if col.is_empty() {
            continue;
        }
        let domain = generator.groups()[gid].dominant_domain();
        let row = rng.random_range(0..col.len());
        let bad = match corrupt_value(&col.values[row], domain, kind, &mut rng) {
            Some(v) => v,
            None => continue,
        };
        // A "corrupted" value that legitimately appears elsewhere in the
        // column would be an unfair label.
        if col.values.iter().any(|v| v == &bad) {
            continue;
        }
        let mut values = col.values.clone();
        values[row] = bad.clone();
        cases.push(TestCase {
            column: Column::new(values, col.source),
            errors: vec![bad],
        });
    }
    for _ in 0..n_clean {
        let gid = generator.sample_group(&mut rng);
        let len = generator.sample_len(&mut rng);
        cases.push(TestCase {
            column: generator.clean_column(gid, len, &mut rng),
            errors: Vec::new(),
        });
    }
    cases
}

/// One (detector, error class) cell.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Canonical configuration name (`fregex`).
    pub detector: String,
    /// Display name (`F-Regex`).
    pub display: String,
    /// Error-class name (`format_swap`).
    pub class: &'static str,
    /// k used for precision@k (= the scenario's dirty-case count).
    pub k: usize,
    /// Pooled precision@k.
    pub precision: f64,
    /// Correct predictions within the top k.
    pub hits: usize,
    /// Total pooled predictions for the scenario.
    pub predictions: usize,
    /// Wall time for the scenario's detection pass.
    pub wall_nanos: u64,
}

/// The full matrix plus derived calibration priors.
#[derive(Debug)]
pub struct MatrixReport {
    /// Cells in (detector, class) order — detectors as requested,
    /// classes in [`ErrorKind::ALL`] order.
    pub cells: Vec<MatrixCell>,
    /// Per-detector precision micro-averaged over all classes
    /// (`Σ hits / Σ k`), floored at 0.05 so the result is always a valid
    /// `calibrated` merge-policy weight.
    pub priors: Vec<(String, f64)>,
}

impl MatrixReport {
    /// Cells for one detector, in class order.
    pub fn row(&self, detector: &str) -> Vec<&MatrixCell> {
        self.cells
            .iter()
            .filter(|c| c.detector == detector)
            .collect()
    }
}

/// Runs every `spec` over every scenario. Detection within a scenario
/// fans over `threads` workers (0 = all cores) via the core engine's
/// `parallel_map`, so cells are identical at any thread count.
pub fn run_matrix(
    registry: &DetectorRegistry,
    specs: &[DetectorSpec],
    scenarios: &[Scenario],
    threads: usize,
) -> Result<MatrixReport, AdtError> {
    let mut cells = Vec::with_capacity(specs.len() * scenarios.len());
    let mut priors = Vec::with_capacity(specs.len());
    for spec in specs {
        let detector = registry.build(spec)?;
        let display = detector.name().to_string();
        let method = Method::from_detector(detector);
        let mut hits_total = 0usize;
        let mut k_total = 0usize;
        for scenario in scenarios {
            // adt-allow(determinism): wall-clock feeds MatrixCell timing fields only, never detection results
            let t0 = Instant::now();
            let predictions = run_method_threads(&method, &scenario.cases, threads);
            let wall_nanos = t0.elapsed().as_nanos() as u64;
            let pooled = pooled_predictions(&scenario.cases, &predictions, 1);
            let k = scenario.n_dirty();
            let hits = pooled.iter().take(k).filter(|p| p.correct).count();
            hits_total += hits;
            k_total += k;
            cells.push(MatrixCell {
                detector: spec.name().to_string(),
                display: display.clone(),
                class: scenario.kind.name(),
                k,
                precision: precision_at_k(&pooled, k),
                hits,
                predictions: pooled.len(),
                wall_nanos,
            });
        }
        let prior = if k_total == 0 {
            0.05
        } else {
            (hits_total as f64 / k_total as f64).max(0.05)
        };
        priors.push((spec.name().to_string(), prior));
    }
    Ok(MatrixReport { cells, priors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_baselines::register_baselines;

    fn specs(names: &[&str]) -> Vec<DetectorSpec> {
        names
            .iter()
            .map(|n| DetectorSpec::parse(n).unwrap())
            .collect()
    }

    #[test]
    fn class_cases_label_the_target_kind() {
        let mut profile = CorpusProfile::web(1);
        profile.dirty_rate = 0.0;
        let cases = class_cases(&profile, ErrorKind::TrailingDot, 10, 5, 42);
        let dirty: Vec<&TestCase> = cases.iter().filter(|c| c.is_dirty()).collect();
        assert!(!dirty.is_empty());
        for c in &dirty {
            assert_eq!(c.errors.len(), 1);
            assert!(c.errors[0].ends_with('.'), "{:?}", c.errors[0]);
            assert!(c.column.values.iter().any(|v| v == &c.errors[0]));
        }
        assert_eq!(cases.iter().filter(|c| !c.is_dirty()).count(), 5);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let mut profile = CorpusProfile::web(1);
        profile.dirty_rate = 0.0;
        let a = build_scenarios(&profile, 4, 4, 7);
        let b = build_scenarios(&profile, 4, 4, 7);
        assert_eq!(a.len(), ErrorKind::ALL.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.cases.len(), y.cases.len());
            for (cx, cy) in x.cases.iter().zip(&y.cases) {
                assert_eq!(cx.column.values, cy.column.values);
                assert_eq!(cx.errors, cy.errors);
            }
        }
    }

    #[test]
    fn matrix_covers_every_detector_class_pair() {
        let mut profile = CorpusProfile::web(1);
        profile.dirty_rate = 0.0;
        let scenarios = build_scenarios(&profile, 3, 3, 11);
        let mut registry = DetectorRegistry::new();
        register_baselines(&mut registry);
        let specs = specs(&["fregex", "dboost"]);
        let report = run_matrix(&registry, &specs, &scenarios, 1).unwrap();
        assert_eq!(report.cells.len(), 2 * ErrorKind::ALL.len());
        assert_eq!(report.row("fregex").len(), ErrorKind::ALL.len());
        for cell in &report.cells {
            assert!(cell.precision >= 0.0 && cell.precision <= 1.0);
            assert!(cell.hits <= cell.k);
        }
        assert_eq!(report.priors.len(), 2);
        for (name, prior) in &report.priors {
            assert!(specs.iter().any(|s| s.name() == name));
            assert!(*prior >= 0.05 && *prior <= 1.0, "{name}: {prior}");
        }
    }

    #[test]
    fn matrix_is_thread_invariant() {
        let mut profile = CorpusProfile::web(1);
        profile.dirty_rate = 0.0;
        let scenarios = build_scenarios(&profile, 3, 3, 13);
        let mut registry = DetectorRegistry::new();
        register_baselines(&mut registry);
        let specs = specs(&["fregex"]);
        let serial = run_matrix(&registry, &specs, &scenarios, 1).unwrap();
        let parallel = run_matrix(&registry, &specs, &scenarios, 4).unwrap();
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.precision.to_bits(), b.precision.to_bits());
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.predictions, b.predictions);
        }
    }

    #[test]
    fn unknown_detector_is_a_config_error() {
        let registry = DetectorRegistry::new();
        let specs = specs(&["fregex"]);
        let err = run_matrix(&registry, &specs, &[], 1).unwrap_err();
        assert!(matches!(err, AdtError::Config(_)), "{err}");
    }
}
