//! Evaluation harness: test-case generation, ranked-prediction pooling,
//! precision@k, and experiment reporting.
//!
//! * [`testcases`] — the paper's two evaluation regimes: labeled columns
//!   with injected errors (standing in for the human-judged sets of §4.3)
//!   and the automatic evaluation of §4.4 (mix a dirty value from one
//!   compatible column into another, at dirty:clean ratios 1:1/1:5/1:10);
//! * [`runner`] — uniform driver over Auto-Detect, its aggregation
//!   variants, and every baseline;
//! * [`metrics`] — pooled precision@k over ranked predictions;
//! * [`matrix`] — detector × error-class scenario matrix (the runner
//!   behind `matrix_report` / `BENCH_matrix.json`), whose per-detector
//!   precision rows double as `calibrated` merge-policy priors;
//! * [`report`] — experiment result structures, CDFs, and table printing.

pub mod matrix;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod testcases;

pub use matrix::{build_scenarios, run_matrix, MatrixCell, MatrixReport, Scenario};
pub use metrics::{pooled_predictions, precision_at_k, PooledPrediction};
pub use runner::{run_method, Method};
pub use testcases::{auto_eval_cases, cases_from_labeled, TestCase};
