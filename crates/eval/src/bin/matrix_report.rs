//! Machine-readable detector × error-class precision matrix.
//!
//! Trains a small coarse-space model on a clean synthetic web corpus,
//! builds one scenario per injected error class, runs each requested
//! detector over every scenario, and writes `BENCH_matrix.json` with
//! per-cell pooled precision@k plus the per-detector micro-averaged
//! priors the `calibrated` merge policy consumes. JSON is hand-rolled:
//! the report must also work in the offline CI harness, whose
//! `serde_json` stub cannot serialize.
//!
//!   matrix_report [--quick] [--threads N] [--out PATH]
//!
//! `--quick` shrinks the training corpus, the scenario sizes, and the
//! detector set to four methods — the CI smoke configuration
//! (`scripts/matrix_report.sh quick`). Quick-mode precision numbers are
//! noisy; use the full run for real calibration priors.

use adt_core::config::LanguageSpace;
use adt_core::{train, AutoDetectConfig, DetectorSpec};
use adt_corpus::{generate_corpus, CorpusProfile, ErrorKind};
use adt_eval::matrix::{build_scenarios, run_matrix};
use std::sync::Arc;

const SEED: u64 = 0xAD7_0001;

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut threads = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next(),
            "--threads" => {
                threads = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads expects a number");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "usage: matrix_report [--quick] [--threads N] [--out PATH] (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    let (corpus_columns, examples, n_dirty, n_clean) = if quick {
        (800, 2_000, 6, 12)
    } else {
        (4_000, 10_000, 40, 80)
    };
    let detector_list = if quick {
        "autodetect,fregex,dboost,cdm"
    } else {
        "autodetect,fregex,pwheel,dboost,linear,linearp,cdm,lsa,svdd,dbod,lof,union"
    };
    let specs = DetectorSpec::parse_list(detector_list).expect("static detector list is valid");

    eprintln!("[matrix_report] training {corpus_columns}-column coarse model…");
    let mut train_profile = CorpusProfile::web(corpus_columns);
    train_profile.dirty_rate = 0.0;
    let corpus = generate_corpus(&train_profile);
    let config = AutoDetectConfig::builder()
        .training_examples(examples)
        .space(LanguageSpace::Coarse36)
        .build()
        .expect("static config is valid");
    let (model, _) = train(&corpus, &config).unwrap_or_else(|e| {
        eprintln!("FAIL: training: {e}");
        std::process::exit(1);
    });
    let registry = adt_baselines::standard_registry(Arc::new(model));

    let mut eval_profile = CorpusProfile::web(1);
    eval_profile.dirty_rate = 0.0;
    let scenarios = build_scenarios(&eval_profile, n_dirty, n_clean, SEED);
    eprintln!(
        "[matrix_report] {} detector(s) × {} error class(es), {} case(s) per scenario…",
        specs.len(),
        scenarios.len(),
        scenarios.first().map_or(0, |s| s.cases.len())
    );
    let report = run_matrix(&registry, &specs, &scenarios, threads).unwrap_or_else(|e| {
        eprintln!("FAIL: matrix run: {e}");
        std::process::exit(1);
    });

    // Console table: one row per detector, one column per class, prior
    // at the end.
    print!("{:<12}", "detector");
    for kind in ErrorKind::ALL {
        let name = kind.name();
        print!(" {:>5}", &name[..name.len().min(5)]);
    }
    println!(" {:>6}", "prior");
    for (spec, (_, prior)) in specs.iter().zip(&report.priors) {
        print!("{:<12}", spec.name());
        for cell in report.row(spec.name()) {
            print!(" {:>5.2}", cell.precision);
        }
        println!(" {prior:>6.2}");
    }

    let json = json_report(mode, &specs, &report);
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("FAIL: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("[matrix_report] wrote {path}");
        }
        None => print!("{json}"),
    }
}

fn json_report(mode: &str, specs: &[DetectorSpec], report: &adt_eval::MatrixReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"detector_matrix\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"profile\": \"{}\",\n",
        if cfg!(debug_assertions) {
            "dev"
        } else {
            "release"
        }
    ));
    let classes: Vec<String> = ErrorKind::ALL
        .iter()
        .map(|k| format!("\"{}\"", k.name()))
        .collect();
    s.push_str(&format!("  \"classes\": [{}],\n", classes.join(", ")));
    let detectors: Vec<String> = specs.iter().map(|d| format!("\"{}\"", d.name())).collect();
    s.push_str(&format!("  \"detectors\": [{}],\n", detectors.join(", ")));
    s.push_str("  \"cells\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"detector\": \"{}\", \"class\": \"{}\", \"k\": {}, \
             \"precision\": {:.4}, \"hits\": {}, \"predictions\": {}, \
             \"wall_ms\": {:.3}}}{}\n",
            c.detector,
            c.class,
            c.k,
            c.precision,
            c.hits,
            c.predictions,
            c.wall_nanos as f64 / 1e6,
            if i + 1 < report.cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let priors: Vec<String> = report
        .priors
        .iter()
        .map(|(name, p)| format!("\"{name}\": {p:.4}"))
        .collect();
    s.push_str(&format!("  \"priors\": {{{}}}\n", priors.join(", ")));
    s.push_str("}\n");
    s
}
