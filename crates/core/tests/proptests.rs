//! Property tests for calibration, selection, and DT aggregation.

use adt_core::{
    calibrate_language, dt_optimize, greedy_select, selection::bruteforce_select, CandidateSummary,
    DtProblem, Example, Label, TrainingSet,
};
use proptest::prelude::*;

fn training_and_scores(n: usize) -> impl Strategy<Value = (TrainingSet, Vec<f64>)> {
    (
        proptest::collection::vec(any::<bool>(), n..=n),
        proptest::collection::vec(-1.0f64..1.0, n..=n),
    )
        .prop_map(|(neg, scores)| {
            let examples = neg
                .iter()
                .enumerate()
                .map(|(i, &is_neg)| Example {
                    u: format!("u{i}"),
                    v: format!("v{i}"),
                    label: if is_neg {
                        Label::Incompatible
                    } else {
                        Label::Compatible
                    },
                })
                .collect();
            (TrainingSet { examples }, scores)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equation 7: the calibrated threshold always meets the precision
    /// target, and every covered negative really scores <= theta.
    #[test]
    fn calibration_meets_precision_target(
        (set, scores) in training_and_scores(60),
        target in 0.5f64..1.0,
    ) {
        let cal = calibrate_language(&set, &scores, target, 64);
        if let Some(theta) = cal.theta {
            prop_assert!(theta < 0.0, "thresholds range over negative scores");
            prop_assert!(cal.precision_at_theta >= target);
            for &idx in &cal.covered_negatives {
                prop_assert!(scores[idx as usize] <= theta);
                prop_assert_eq!(set.examples[idx as usize].label, Label::Incompatible);
            }
            // Exhaustive recount of the precision at theta.
            let flagged: Vec<usize> = (0..scores.len())
                .filter(|&i| scores[i] <= theta)
                .collect();
            let neg = flagged
                .iter()
                .filter(|&&i| set.examples[i].label == Label::Incompatible)
                .count();
            let precision = neg as f64 / flagged.len().max(1) as f64;
            prop_assert!((precision - cal.precision_at_theta).abs() < 1e-9);
        }
    }

    /// Coverage maximality: no other negative cutoff meeting the target
    /// covers more negatives than the calibrated theta.
    #[test]
    fn calibration_is_coverage_maximal(
        (set, scores) in training_and_scores(40),
        target in 0.5f64..1.0,
    ) {
        let cal = calibrate_language(&set, &scores, target, 256);
        let best = cal.coverage();
        let mut cutoffs: Vec<f64> = scores.iter().copied().filter(|&s| s < 0.0).collect();
        cutoffs.sort_by(f64::total_cmp);
        cutoffs.dedup();
        for t in cutoffs {
            let flagged: Vec<usize> = (0..scores.len()).filter(|&i| scores[i] <= t).collect();
            let neg = flagged
                .iter()
                .filter(|&&i| set.examples[i].label == Label::Incompatible)
                .count();
            let precision = neg as f64 / flagged.len().max(1) as f64;
            if precision >= target {
                prop_assert!(neg <= best, "cutoff {t} covers {neg} > calibrated {best}");
            }
        }
    }

    /// Greedy selection respects the budget and meets the 1/2(1-1/e)
    /// approximation bound against brute force.
    #[test]
    fn greedy_meets_bound(
        sizes in proptest::collection::vec(1usize..40, 2..8),
        seeds in proptest::collection::vec(0u32..12, 2..8),
        budget in 10usize..120,
    ) {
        let n = sizes.len().min(seeds.len());
        let candidates: Vec<CandidateSummary> = (0..n)
            .map(|i| CandidateSummary {
                index: i,
                size_bytes: sizes[i],
                covered_negatives: (0..10u32)
                    .filter(|x| (x + seeds[i]) % 5 < 2)
                    .collect(),
            })
            .collect();
        let greedy = greedy_select(&candidates, budget);
        prop_assert!(greedy.total_bytes <= budget);
        let opt = bruteforce_select(&candidates, budget);
        let bound = 0.5 * (1.0 - (-1.0f64).exp()) * opt.union_coverage as f64;
        prop_assert!(greedy.union_coverage as f64 >= bound);
    }

    /// DT aggregation never reports a solution violating precision or
    /// budget, and dominates any of its languages calibrated alone.
    #[test]
    fn dt_solution_is_sound(
        (set, scores_a) in training_and_scores(40),
        scores_b in proptest::collection::vec(-1.0f64..1.0, 40..=40),
        target in 0.6f64..0.95,
    ) {
        let problem = DtProblem::new(&set, vec![scores_a.clone(), scores_b], vec![10, 10]);
        let sol = dt_optimize(&problem, target, 100, 3);
        prop_assert!(sol.total_bytes <= 100);
        if !sol.selected.is_empty() {
            prop_assert!(sol.precision >= target);
        }
        // Against single-language ST on language 0.
        let cal = calibrate_language(&set, &scores_a, target, 64);
        prop_assert!(sol.coverage >= cal.coverage());
    }
}
