//! Multi-detector orchestration: run a configurable detector set over a
//! column batch in parallel and merge their rankings.
//!
//! The paper evaluates Auto-Detect against a bench of baseline detectors
//! whose union is itself a meta-detector (§4.2). [`EnsembleEngine`]
//! turns that evaluation harness into an orchestration feature:
//!
//! * every member implements the canonical [`Detector`] trait and is
//!   driven through `detect_batch`, so setup cost (Auto-Detect's pattern
//!   cache) is amortized per chunk rather than per column;
//! * work is fanned over [`parallel_map`] as (detector × column-chunk)
//!   items whose chunk width is a pure function of the **column count**
//!   (never the thread count), so the work decomposition — and
//!   therefore every detector's output — is independent of the thread
//!   count; batches too small to amortize the fan-out run serially,
//!   which changes scheduling only, not decomposition;
//! * per-detector wall time and prediction counts are recorded as
//!   [`DetectorLane`]s in [`ScanStats`];
//! * rankings are merged by a pluggable [`MergePolicy`], deduping by
//!   (column, value) with the deterministic confidence-then-value
//!   ordering of [`finalize_predictions`].
//!
//! Determinism argument: chunk boundaries depend only on the column
//! count; the serial fallback depends only on detector and column
//! counts; `parallel_map` preserves item order regardless of which
//! worker ran which item; merging folds detectors in their configured
//! order with order-insensitive max/count pooling; and the final sort
//! breaks confidence ties lexicographically. Wall-clock readings feed
//! timing lanes only, never findings, so merged output is byte-identical
//! at any thread count.

use crate::api::{finalize_predictions, Detector, Prediction};
use crate::detector::{DetectorLane, ScanStats};
use crate::engine::parallel_map;
use crate::error::AdtError;
use adt_corpus::Column;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// How per-detector rankings are combined into one ranking per column.
///
/// All policies first rank-normalize each member's predictions — the
/// top prediction of any method scores 1, the last 1/n — because raw
/// confidences are incomparable across methods.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum MergePolicy {
    /// Max-pool the normalized ranks across members (the paper's §4.2
    /// Union baseline).
    #[default]
    Union,
    /// Keep only values predicted by at least `k` members; confidence is
    /// the best normalized rank among them.
    Vote(usize),
    /// Weight each member's normalized ranks by a per-detector precision
    /// prior (as measured by the `adt-eval` scenario matrix) before
    /// max-pooling. Detectors absent from the prior list weigh 1.0, so
    /// an empty list degenerates to `Union`.
    Calibrated(Vec<(String, f64)>),
}

impl MergePolicy {
    /// Parses the configuration syntax: `union`, `vote:k` (k ≥ 1), or
    /// `calibrated`. Anything else is a typed [`AdtError::Config`].
    pub fn parse(raw: &str) -> Result<Self, AdtError> {
        let s = raw.trim().to_ascii_lowercase();
        if s == "union" {
            return Ok(MergePolicy::Union);
        }
        if s == "calibrated" {
            return Ok(MergePolicy::Calibrated(Vec::new()));
        }
        if let Some(k) = s.strip_prefix("vote:") {
            return match k.parse::<usize>() {
                Ok(k) if k >= 1 => Ok(MergePolicy::Vote(k)),
                _ => Err(AdtError::Config(format!(
                    "malformed merge policy '{raw}': vote:k needs an integer k >= 1"
                ))),
            };
        }
        if s == "vote" {
            return Err(AdtError::Config(format!(
                "malformed merge policy '{raw}': vote needs a threshold, e.g. vote:2"
            )));
        }
        Err(AdtError::Config(format!(
            "unknown merge policy '{raw}' (known: union, vote:k, calibrated)"
        )))
    }

    /// The configuration spelling (`union`, `vote:2`, `calibrated`).
    pub fn label(&self) -> String {
        match self {
            MergePolicy::Union => "union".to_string(),
            MergePolicy::Vote(k) => format!("vote:{k}"),
            MergePolicy::Calibrated(_) => "calibrated".to_string(),
        }
    }
}

/// Normalizes a detector display name to its canonical configuration
/// form: `"Auto-Detect"` → `"autodetect"`, `"F-Regex"` → `"fregex"`.
fn canonical_name(display: &str) -> String {
    display
        .chars()
        .filter(|c| *c != '-' && *c != '_')
        .collect::<String>()
        .to_ascii_lowercase()
}

/// The merged result of one ensemble scan.
#[derive(Debug, Clone)]
pub struct EnsembleReport {
    /// Merged, ranked predictions per input column.
    pub predictions: Vec<Vec<Prediction>>,
    /// Scan counters with one [`DetectorLane`] per member.
    pub stats: ScanStats,
    /// Nanoseconds spent merging rankings (single-threaded tail).
    pub merge_nanos: u64,
    /// End-to-end wall nanoseconds for the whole run.
    pub elapsed_nanos: u64,
}

/// Below this many detector × column work units the fan-out runs
/// serially: worker spawn and cache-cold chunks cost more than they
/// save. Calibrated against BENCH_scan.json's ensemble section, where
/// the 3-detector × 48-column shape (144 units) ran at 0.83× under
/// parallel dispatch; the 3 × 192 shape (576 units) amortizes fine.
/// Scheduling only — the work decomposition is unchanged, so merged
/// output stays byte-identical.
const SERIAL_CUTOFF_UNITS: usize = 256;

/// Columns per work item: about 16 chunks per detector on large batches
/// so the worker queue never starves, clamped to [8, 32] so chunks keep
/// enough columns to amortize per-chunk detector setup. A pure function
/// of the column count — never the thread count — so the work
/// decomposition (and each detector's `detect_batch` grouping) is
/// identical at any parallelism.
fn chunk_width(columns: usize) -> usize {
    columns.div_ceil(16).clamp(8, 32)
}

/// Runs a detector set over column batches and merges their rankings.
///
/// The lifetime lets member detectors borrow (e.g. [`Detector`] is
/// implemented for `&T`, so a meta-detector can lend its members);
/// owning engines simply use `EnsembleEngine<'static>`.
pub struct EnsembleEngine<'a> {
    detectors: Vec<Box<dyn Detector + 'a>>,
    merge: MergePolicy,
    threads: usize,
    limit: usize,
}

impl<'a> EnsembleEngine<'a> {
    /// An engine over `detectors` with union merging, all cores, and the
    /// paper-parity per-column cap of 16 predictions.
    pub fn new(detectors: Vec<Box<dyn Detector + 'a>>) -> Self {
        EnsembleEngine {
            detectors,
            merge: MergePolicy::Union,
            threads: 0,
            limit: 16,
        }
    }

    /// Sets the merge policy.
    pub fn with_merge(mut self, merge: MergePolicy) -> Self {
        self.merge = merge;
        self
    }

    /// Sets the worker thread count (0 = all cores). Affects wall time
    /// only, never the merged output.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the per-column cap on merged predictions.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Member display names, in configured order.
    pub fn detector_names(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// The configured merge policy.
    pub fn merge_policy(&self) -> &MergePolicy {
        &self.merge
    }

    /// Scans `columns` with every member and merges the rankings.
    ///
    /// Work items are (detector, column-chunk) pairs over a fixed chunk
    /// width, pulled by [`parallel_map`] workers; a member's
    /// `detect_batch` sees each chunk whole, so batch-amortized
    /// detectors keep their warm caches. Returns [`AdtError::Worker`]
    /// if a detector panics, [`AdtError::Config`] if the engine has no
    /// members.
    pub fn run(&self, columns: &[Column]) -> Result<EnsembleReport, AdtError> {
        if self.detectors.is_empty() {
            return Err(AdtError::Config("ensemble has no detectors".into()));
        }
        // adt-allow(determinism): wall-clock feeds EnsembleReport timing fields only, never detection results
        let run_start = Instant::now();

        let chunks: Vec<&[Column]> = columns.chunks(chunk_width(columns.len())).collect();
        let mut items: Vec<(usize, usize)> =
            Vec::with_capacity(self.detectors.len() * chunks.len());
        for d in 0..self.detectors.len() {
            for c in 0..chunks.len() {
                items.push((d, c));
            }
        }

        let units = self.detectors.len() * columns.len();
        let threads = if units < SERIAL_CUTOFF_UNITS {
            1
        } else {
            self.threads
        };
        let outputs = parallel_map(&items, threads, "ensemble", |_, &(d, c)| {
            let det = &self.detectors[d];
            let chunk = chunks[c];
            // adt-allow(determinism): wall-clock feeds DetectorLane timing fields only, never detection results
            let start = Instant::now();
            let preds = det.detect_batch(chunk);
            (start.elapsed().as_nanos() as u64, preds)
        })?;

        // Reassemble: items were emitted detector-major and parallel_map
        // preserves item order, so per-detector outputs concatenate back
        // into column order.
        let mut per_detector: Vec<Vec<Vec<Prediction>>> = (0..self.detectors.len())
            .map(|_| Vec::with_capacity(columns.len()))
            .collect();
        let mut lanes: Vec<DetectorLane> = self
            .detectors
            .iter()
            .map(|det| DetectorLane {
                name: det.name().to_string(),
                ..DetectorLane::default()
            })
            .collect();
        for (&(d, _), (nanos, preds)) in items.iter().zip(outputs) {
            if let Some(lane) = lanes.get_mut(d) {
                lane.wall_nanos += nanos;
                lane.predictions += preds.iter().map(|p| p.len() as u64).sum::<u64>();
                lane.columns += preds.len() as u64;
            }
            if let Some(dest) = per_detector.get_mut(d) {
                dest.extend(preds);
            }
        }

        // adt-allow(determinism): wall-clock feeds EnsembleReport timing fields only, never detection results
        let merge_start = Instant::now();
        let names: Vec<&'static str> = self.detector_names();
        let mut merged: Vec<Vec<Prediction>> = Vec::with_capacity(columns.len());
        for col in 0..columns.len() {
            let mut ranked: Vec<(&str, &[Prediction])> = Vec::with_capacity(names.len());
            for (det_idx, name) in names.iter().enumerate() {
                let preds = per_detector
                    .get(det_idx)
                    .and_then(|cols| cols.get(col))
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                ranked.push((name, preds));
            }
            merged.push(merge_column(&ranked, &self.merge, self.limit));
        }
        let merge_nanos = merge_start.elapsed().as_nanos() as u64;

        let stats = ScanStats {
            detectors: lanes,
            ..ScanStats::default()
        };
        Ok(EnsembleReport {
            predictions: merged,
            stats,
            merge_nanos,
            elapsed_nanos: run_start.elapsed().as_nanos() as u64,
        })
    }
}

/// Merges one column's per-detector rankings under `policy`.
///
/// Every policy rank-normalizes first: within one detector, the
/// prediction at `rank` out of `n` scores `(n - rank) / n` ∈ (0, 1] —
/// exactly the historical `UnionDetector` pooling, which the `Union`
/// policy reproduces byte-for-byte. Pooling is max-based and detectors
/// are folded in configured order, but max and vote-counting are
/// order-insensitive, so the result is independent of scheduling.
fn merge_column(
    ranked: &[(&str, &[Prediction])],
    policy: &MergePolicy,
    limit: usize,
) -> Vec<Prediction> {
    let (threshold, priors): (usize, &[(String, f64)]) = match policy {
        MergePolicy::Union => (1, &[]),
        MergePolicy::Vote(k) => (*k, &[]),
        MergePolicy::Calibrated(p) => (1, p.as_slice()),
    };
    let mut pooled: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
    for (name, preds) in ranked {
        let canon = canonical_name(name);
        let weight = priors
            .iter()
            .find(|(n, _)| canonical_name(n) == canon)
            .map(|(_, w)| *w)
            .unwrap_or(1.0);
        let n = preds.len();
        for (rank, p) in preds.iter().enumerate() {
            let score = weight * ((n - rank) as f64 / n as f64);
            let entry = pooled.entry(p.value.as_str()).or_insert((0.0, 0));
            if score > entry.0 {
                entry.0 = score;
            }
            entry.1 += 1;
        }
    }
    let preds: Vec<Prediction> = pooled
        .into_iter()
        .filter(|(_, (_, votes))| *votes >= threshold)
        .map(|(value, (confidence, _))| Prediction {
            value: value.to_string(),
            confidence,
        })
        .collect();
    finalize_predictions(preds, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    struct Fixed {
        name: &'static str,
        preds: Vec<(&'static str, f64)>,
    }

    impl Detector for Fixed {
        fn name(&self) -> &'static str {
            self.name
        }
        fn detect(&self, _column: &Column) -> Vec<Prediction> {
            self.preds
                .iter()
                .map(|(v, c)| Prediction {
                    value: v.to_string(),
                    confidence: *c,
                })
                .collect()
        }
    }

    /// Flags every value whose byte length is below the column median —
    /// column-dependent, cheap, and deterministic.
    struct ShortValues;

    impl Detector for ShortValues {
        fn name(&self) -> &'static str {
            "Short"
        }
        fn detect(&self, column: &Column) -> Vec<Prediction> {
            let mut lens: Vec<usize> = column.non_empty_values().map(|v| v.len()).collect();
            lens.sort_unstable();
            let median = lens.get(lens.len() / 2).copied().unwrap_or(0);
            let preds = crate::api::value_counts(column)
                .into_iter()
                .filter(|(v, _)| v.len() < median)
                .map(|(value, _)| Prediction {
                    confidence: 1.0 / (value.len() + 1) as f64,
                    value,
                })
                .collect();
            finalize_predictions(preds, 16)
        }
    }

    fn cols(n: usize) -> Vec<Column> {
        (0..n)
            .map(|i| {
                let vals: Vec<String> = (0..12)
                    .map(|j| {
                        if j == 7 && i % 3 == 0 {
                            "x".to_string()
                        } else {
                            format!("value-{i}-{j}")
                        }
                    })
                    .collect();
                Column::new(vals, SourceTag::Csv)
            })
            .collect()
    }

    fn engine() -> EnsembleEngine<'static> {
        EnsembleEngine::new(vec![
            Box::new(ShortValues),
            Box::new(Fixed {
                name: "A",
                preds: vec![("x", 9.0), ("value-0-0", 3.0)],
            }),
        ])
    }

    #[test]
    fn merge_policy_parse_round_trips() {
        assert_eq!(MergePolicy::parse("union").unwrap(), MergePolicy::Union);
        assert_eq!(MergePolicy::parse("VOTE:2").unwrap(), MergePolicy::Vote(2));
        assert_eq!(
            MergePolicy::parse("calibrated").unwrap(),
            MergePolicy::Calibrated(Vec::new())
        );
        assert_eq!(MergePolicy::parse("vote:2").unwrap().label(), "vote:2");
        for bad in ["vote", "vote:0", "vote:x", "vote:", "intersect", ""] {
            let err = MergePolicy::parse(bad).unwrap_err();
            assert!(
                matches!(err, AdtError::Config(_)),
                "{bad:?} should be a Config error"
            );
        }
    }

    fn p(value: &str, confidence: f64) -> Prediction {
        Prediction {
            value: value.to_string(),
            confidence,
        }
    }

    #[test]
    fn union_matches_rank_pooling_reference() {
        let a = vec![p("x", 9.0), p("y", 5.0)];
        let b = vec![p("y", 0.1)];
        let ranked: Vec<(&str, &[Prediction])> = vec![("A", &a), ("B", &b)];
        let merged = merge_column(&ranked, &MergePolicy::Union, 16);
        // A: x → 2/2 = 1.0, y → 1/2 = 0.5; B: y → 1/1 = 1.0 (max pool).
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].value, "x"); // 1.0, tie broken by value
        assert_eq!(merged[1].value, "y"); // 1.0
        assert!((merged[0].confidence - 1.0).abs() < 1e-12);
        assert!((merged[1].confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vote_filters_by_member_count() {
        let a = vec![p("x", 9.0), p("y", 5.0)];
        let b = vec![p("y", 0.1)];
        let ranked: Vec<(&str, &[Prediction])> = vec![("A", &a), ("B", &b)];
        let merged = merge_column(&ranked, &MergePolicy::Vote(2), 16);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].value, "y");
    }

    #[test]
    fn calibrated_priors_reweight() {
        let a = vec![p("x", 9.0)];
        let b = vec![p("y", 9.0)];
        let ranked: Vec<(&str, &[Prediction])> = vec![("A", &a), ("B", &b)];
        let policy = MergePolicy::Calibrated(vec![("a".to_string(), 0.2)]);
        let merged = merge_column(&ranked, &policy, 16);
        assert_eq!(merged[0].value, "y"); // B keeps weight 1.0
        assert!((merged[0].confidence - 1.0).abs() < 1e-12);
        assert!((merged[1].confidence - 0.2).abs() < 1e-12);
    }

    #[test]
    fn chunk_width_is_bounded_and_column_driven() {
        assert_eq!(chunk_width(1), 8); // floor: tiny batches stay whole-ish
        assert_eq!(chunk_width(48), 8);
        assert_eq!(chunk_width(192), 12); // ~16 chunks per detector
        assert_eq!(chunk_width(10_000), 32); // ceiling: batch amortization
        for n in 1..2000 {
            let w = chunk_width(n);
            assert!((8..=32).contains(&w), "chunk_width({n}) = {w}");
        }
    }

    #[test]
    fn lanes_record_time_and_volume() {
        let columns = cols(67); // 9 chunks at width 8
        let report = engine().run(&columns).unwrap();
        assert_eq!(report.predictions.len(), columns.len());
        let lanes = &report.stats.detectors;
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0].name, "Short");
        assert_eq!(lanes[1].name, "A");
        for lane in lanes {
            assert_eq!(lane.columns, columns.len() as u64);
            assert!(lane.predictions > 0, "{} emitted nothing", lane.name);
        }
    }

    #[test]
    fn empty_engine_is_a_config_error() {
        let e = EnsembleEngine::new(Vec::new());
        assert!(matches!(e.run(&cols(1)), Err(AdtError::Config(_))));
    }

    #[test]
    fn merged_findings_identical_at_any_thread_count() {
        // 2 detectors × 200 columns = 400 units: above SERIAL_CUTOFF_UNITS,
        // so the multi-thread runs genuinely dispatch in parallel.
        let columns = cols(200);
        assert!(2 * columns.len() >= SERIAL_CUTOFF_UNITS);
        let reference = engine()
            .with_threads(1)
            .with_merge(MergePolicy::Vote(2))
            .run(&columns)
            .unwrap();
        for threads in [2, 4, 8] {
            let got = engine()
                .with_threads(threads)
                .with_merge(MergePolicy::Vote(2))
                .run(&columns)
                .unwrap();
            assert_eq!(
                got.predictions, reference.predictions,
                "ensemble output diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn small_batches_merge_identically_to_large_chunking() {
        // The serial fallback and auto chunk width must be invisible in
        // the merged output: running the same columns through a small
        // (serial, 1-chunk) batch and slicing them out of a large
        // (parallel) batch gives identical predictions.
        let columns = cols(260);
        let big = engine().with_threads(4).run(&columns).unwrap();
        for (i, col) in columns.iter().take(9).enumerate() {
            let small = engine().run(std::slice::from_ref(col)).unwrap();
            assert_eq!(
                small.predictions[0], big.predictions[i],
                "column {i} diverged between batch sizes"
            );
        }
    }
}
