//! The end-user detection API.
//!
//! A trained [`AutoDetect`] holds the selected generalization languages
//! with their corpus statistics and calibrations. Detection over a column
//! scores all distinct-value pairs; a pair is predicted incompatible when
//! any language fires (`s_k ≤ θ_k`, ST aggregation), ranked by the
//! max-confidence estimate `Q = max_k P_k(s_k)` (Appendix B).

use crate::aggregate::Aggregator;
use crate::calibrate::Calibration;
use adt_corpus::Column;
use adt_patterns::PatternHash;
use adt_stats::{LanguageStats, NpmiParams};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// One selected language with its statistics and calibration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectedLanguage {
    /// Corpus statistics under this language.
    pub stats: LanguageStats,
    /// Calibrated threshold and precision curve.
    pub calibration: Calibration,
}

/// A trained Auto-Detect model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoDetect {
    /// The selected ensemble, in greedy pick order.
    pub languages: Vec<SelectedLanguage>,
    /// NPMI parameters used at both training and detection time.
    pub npmi: NpmiParams,
    /// The precision target the ensemble was calibrated for.
    pub precision_target: f64,
    /// Cap on distinct values per column considered during detection.
    pub max_distinct_values: usize,
}

/// Verdict on a single value pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairVerdict {
    /// True when at least one language fires (ST union).
    pub incompatible: bool,
    /// Max-confidence rank score `Q = max_k P_k(s_k)`.
    pub confidence: f64,
    /// Per-language NPMI scores `s_k(u, v)`.
    pub scores: Vec<f64>,
    /// Index of the most confident language.
    pub best_language: usize,
}

/// One ranked finding within a column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnFinding {
    /// The value predicted to be an error.
    pub suspect: String,
    /// The in-column value it is most incompatible with.
    pub witness: String,
    /// Confidence `Q` of the witnessing pair.
    pub confidence: f64,
    /// The most negative firing NPMI score of the witnessing pair.
    pub score: f64,
}

/// Memoized per-value pattern hashes, one entry per selected language.
///
/// Generalizing a value is the per-value hot path of a scan (run-length
/// tokenization under every language). Values repeat heavily across the
/// columns of real tables, so workers keep one cache alive across the
/// columns they scan: each distinct value is generalized exactly once
/// under *all* languages, then shared for the rest of the worker's life.
/// A cache is tied to the model it was first used with.
#[derive(Debug, Default)]
pub struct PatternCache {
    map: HashMap<String, Vec<PatternHash>>,
}

impl PatternCache {
    /// An empty cache.
    pub fn new() -> Self {
        PatternCache::default()
    }

    /// Number of memoized values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Ensures `value` is memoized, generalizing it under every language
    /// of `model` on first sight.
    fn ensure(&mut self, model: &AutoDetect, value: &str) {
        if !self.map.contains_key(value) {
            let hashes = model
                .languages
                .iter()
                .map(|l| l.stats.pattern_of(value))
                .collect();
            self.map.insert(value.to_string(), hashes);
        }
    }

    fn get(&self, value: &str) -> &[PatternHash] {
        &self.map[value]
    }
}

/// Counters and per-stage timings accumulated by a column scan.
///
/// Merged across columns (and worker threads) into the totals a
/// [`crate::engine::ScanReport`] exposes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScanStats {
    /// Distinct values actually scored (after the distinct-value cap).
    pub values_scored: u64,
    /// Value pairs scored under the ensemble.
    pub pairs_scored: u64,
    /// Scored pairs flagged incompatible by the aggregator.
    pub pairs_flagged: u64,
    /// Pairs skipped by the distinct-value cap (rare tail values beyond
    /// `max_distinct_values` never enter the d×d matrices).
    pub pairs_pruned: u64,
    /// Surviving findings attributed to each language (index = position
    /// in [`AutoDetect::languages`]).
    pub findings_per_language: Vec<u64>,
    /// Nanoseconds spent generalizing values to pattern hashes.
    pub hash_nanos: u64,
    /// Nanoseconds spent scoring pairs and attributing suspects.
    pub score_nanos: u64,
}

impl ScanStats {
    /// A zeroed stats block sized for `num_languages`.
    pub fn for_languages(num_languages: usize) -> Self {
        ScanStats {
            findings_per_language: vec![0; num_languages],
            ..ScanStats::default()
        }
    }

    /// Accumulates `other` into `self` (element-wise sums).
    pub fn merge(&mut self, other: &ScanStats) {
        self.values_scored += other.values_scored;
        self.pairs_scored += other.pairs_scored;
        self.pairs_flagged += other.pairs_flagged;
        self.pairs_pruned += other.pairs_pruned;
        if self.findings_per_language.len() < other.findings_per_language.len() {
            self.findings_per_language
                .resize(other.findings_per_language.len(), 0);
        }
        for (a, b) in self
            .findings_per_language
            .iter_mut()
            .zip(&other.findings_per_language)
        {
            *a += b;
        }
        self.hash_nanos += other.hash_nanos;
        self.score_nanos += other.score_nanos;
    }
}

impl AutoDetect {
    /// Number of selected languages.
    pub fn num_languages(&self) -> usize {
        self.languages.len()
    }

    /// Total memory footprint of the ensemble in bytes.
    pub fn size_bytes(&self) -> usize {
        self.languages.iter().map(|l| l.stats.size_bytes()).sum()
    }

    /// Calibrations of the selected languages, in order.
    pub fn calibrations(&self) -> Vec<&Calibration> {
        self.languages.iter().map(|l| &l.calibration).collect()
    }

    /// Scores one value pair under every selected language.
    pub fn score_pair(&self, u: &str, v: &str) -> PairVerdict {
        let scores: Vec<f64> = self
            .languages
            .iter()
            .map(|l| l.stats.score_values(u, v, self.npmi))
            .collect();
        self.verdict_from_scores(scores)
    }

    fn verdict_from_scores(&self, scores: Vec<f64>) -> PairVerdict {
        let mut incompatible = false;
        let mut confidence = 0.0;
        let mut best_language = 0;
        for (k, (&s, lang)) in scores.iter().zip(&self.languages).enumerate() {
            if lang.calibration.fires(s) {
                incompatible = true;
            }
            let p = lang.calibration.precision_at(s);
            if p > confidence {
                confidence = p;
                best_language = k;
            }
        }
        PairVerdict {
            incompatible,
            confidence,
            scores,
            best_language,
        }
    }

    /// Distinct values of a column, most frequent first, capped. Returns
    /// the capped list plus the uncapped distinct count.
    fn distinct_capped<'a>(&self, column: &'a Column) -> (Vec<(&'a str, usize)>, usize) {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for v in column.non_empty_values() {
            *counts.entry(v).or_insert(0) += 1;
        }
        let total = counts.len();
        let mut out: Vec<(&str, usize)> = counts.into_iter().collect();
        // Most frequent first; lexicographic tie-break for determinism.
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out.truncate(self.max_distinct_values);
        (out, total)
    }

    /// Detects incompatible values in a column with the default
    /// (Auto-Detect) aggregation. Findings are deduplicated per suspect
    /// value and sorted by descending confidence.
    pub fn detect_column(&self, column: &Column) -> Vec<ColumnFinding> {
        self.detect_column_with(column, Aggregator::AutoDetect)
    }

    /// Detects incompatible values using an explicit aggregator
    /// (Figure 8(b) comparisons).
    pub fn detect_column_with(
        &self,
        column: &Column,
        aggregator: Aggregator,
    ) -> Vec<ColumnFinding> {
        let mut cache = PatternCache::new();
        self.scan_column(column, aggregator, &mut cache).0
    }

    /// The instrumented scan primitive behind every detection surface.
    ///
    /// Identical findings to [`AutoDetect::detect_column_with`], plus the
    /// scan's [`ScanStats`]. `cache` memoizes value generalization across
    /// calls; [`crate::engine::ScanEngine`] keeps one per worker thread.
    /// Findings depend only on the column's contents, never on the cache's
    /// prior state or the calling thread — this is what makes parallel
    /// scans byte-identical to serial ones.
    pub fn scan_column(
        &self,
        column: &Column,
        aggregator: Aggregator,
        cache: &mut PatternCache,
    ) -> (Vec<ColumnFinding>, ScanStats) {
        let (distinct, total_distinct) = self.distinct_capped(column);
        self.scan_pairs(&distinct, total_distinct, aggregator, cache)
    }

    /// Scans a column given its distinct-value counts — the streaming
    /// surface. `counts` must hold each distinct non-empty value exactly
    /// once with its multiplicity (any order); the same frequency cap and
    /// deterministic ordering as [`AutoDetect::scan_column`] are applied
    /// here, so a streamed column yields byte-identical findings to the
    /// materialized one.
    pub fn scan_value_counts(
        &self,
        counts: &[(String, usize)],
        aggregator: Aggregator,
        cache: &mut PatternCache,
    ) -> (Vec<ColumnFinding>, ScanStats) {
        let total_distinct = counts.len();
        let mut distinct: Vec<(&str, usize)> =
            counts.iter().map(|(v, c)| (v.as_str(), *c)).collect();
        distinct.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        distinct.truncate(self.max_distinct_values);
        self.scan_pairs(&distinct, total_distinct, aggregator, cache)
    }

    fn scan_pairs(
        &self,
        distinct: &[(&str, usize)],
        total_distinct: usize,
        aggregator: Aggregator,
        cache: &mut PatternCache,
    ) -> (Vec<ColumnFinding>, ScanStats) {
        let d = distinct.len();
        let mut stats = ScanStats::for_languages(self.languages.len());
        stats.values_scored = d as u64;
        stats.pairs_scored = (d * d.saturating_sub(1) / 2) as u64;
        stats.pairs_pruned =
            (total_distinct * total_distinct.saturating_sub(1) / 2) as u64 - stats.pairs_scored;
        if d < 2 {
            return (Vec::new(), stats);
        }
        // Generalize every distinct value once under all languages (cache
        // hits skip the work entirely), then view per-language.
        let hash_start = Instant::now();
        for (v, _) in distinct {
            cache.ensure(self, v);
        }
        let hashes: Vec<Vec<PatternHash>> = (0..self.languages.len())
            .map(|k| distinct.iter().map(|(v, _)| cache.get(v)[k]).collect())
            .collect();
        stats.hash_nanos = hash_start.elapsed().as_nanos() as u64;
        let score_start = Instant::now();
        let calibrations: Vec<&Calibration> = self.calibrations();

        // Full per-language NPMI matrices over distinct values (flattened
        // d×d, symmetric, diagonal 1.0). These drive both pair flagging
        // and suspect attribution.
        let matrices: Vec<Vec<f64>> = self
            .languages
            .iter()
            .enumerate()
            .map(|(k, l)| {
                let mut m = vec![1.0f64; d * d];
                for i in 0..d {
                    for j in (i + 1)..d {
                        let s = l.stats.npmi_patterns(hashes[k][i], hashes[k][j], self.npmi);
                        m[i * d + j] = s;
                        m[j * d + i] = s;
                    }
                }
                m
            })
            .collect();

        // Per-language, per-value compatibility with the rest of the
        // column: count-weighted mean NPMI against every other distinct
        // value. An intruder is incompatible with *most* of the column,
        // so the pair member with the lower compatibility is the suspect.
        let compat: Vec<Vec<f64>> = matrices
            .iter()
            .map(|m| {
                (0..d)
                    .map(|i| {
                        let mut sum = 0.0;
                        let mut w = 0.0;
                        for (j, &(_, cnt)) in distinct.iter().enumerate() {
                            if j != i {
                                sum += m[i * d + j] * cnt as f64;
                                w += cnt as f64;
                            }
                        }
                        if w > 0.0 {
                            sum / w
                        } else {
                            1.0
                        }
                    })
                    .collect()
            })
            .collect();

        // Pass 1: flag pairs and accumulate per-value flag degrees — the
        // count-weighted amount of the column each value clashes with. An
        // intruder clashes with most of the column; its witnesses clash
        // only with the intruder.
        let mut scores = vec![0.0f64; self.languages.len()];
        let mut flagged_pairs: Vec<(usize, usize, f64, usize)> = Vec::new(); // (i, j, confidence, k*)
        let mut degree = vec![0.0f64; d];
        for i in 0..d {
            for j in (i + 1)..d {
                for (k, m) in matrices.iter().enumerate() {
                    scores[k] = m[i * d + j];
                }
                if !aggregator.flags(&scores, &calibrations) {
                    continue;
                }
                let confidence = aggregator.suspicion(&scores, &calibrations);
                let k = scores
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(k, _)| k)
                    .unwrap_or(0);
                flagged_pairs.push((i, j, confidence, k));
                degree[i] += distinct[j].1 as f64;
                degree[j] += distinct[i].1 as f64;
            }
        }
        stats.pairs_flagged = flagged_pairs.len() as u64;

        // Pass 2: attribute each flagged pair. The suspect is the member
        // with the higher flag degree; degree ties fall back to the lower
        // rest-of-column compatibility under the pair's most negative
        // language, then to corpus occurrence (the globally rarer pattern
        // is the likelier intruder).
        let mut best: HashMap<usize, (ColumnFinding, usize)> = HashMap::new();
        for &(i, j, confidence, k) in &flagged_pairs {
            {
                let (suspect_idx, witness_idx) = if (degree[i] - degree[j]).abs() > 1e-9 {
                    if degree[i] > degree[j] {
                        (i, j)
                    } else {
                        (j, i)
                    }
                } else if (compat[k][i] - compat[k][j]).abs() > 1e-9 {
                    if compat[k][i] < compat[k][j] {
                        (i, j)
                    } else {
                        (j, i)
                    }
                } else {
                    let oi = self.languages[k].stats.occurrence(hashes[k][i]);
                    let oj = self.languages[k].stats.occurrence(hashes[k][j]);
                    if oi <= oj {
                        (i, j)
                    } else {
                        (j, i)
                    }
                };
                let pair_scores: Vec<f64> = matrices.iter().map(|m| m[i * d + j]).collect();
                let min_firing_score = pair_scores
                    .iter()
                    .zip(calibrations.iter().copied())
                    .filter(|(&s, c)| c.fires(s))
                    .map(|(&s, _)| s)
                    .fold(f64::INFINITY, f64::min);
                let score = if min_firing_score.is_finite() {
                    min_firing_score
                } else {
                    pair_scores.iter().copied().fold(f64::INFINITY, f64::min)
                };
                let finding = ColumnFinding {
                    suspect: distinct[suspect_idx].0.to_string(),
                    witness: distinct[witness_idx].0.to_string(),
                    confidence,
                    score,
                };
                match best.get(&suspect_idx) {
                    Some((prev, _)) if prev.confidence >= finding.confidence => {}
                    _ => {
                        best.insert(suspect_idx, (finding, k));
                    }
                }
            }
        }
        let mut findings: Vec<ColumnFinding> = Vec::with_capacity(best.len());
        for (finding, k) in best.into_values() {
            stats.findings_per_language[k] += 1;
            findings.push(finding);
        }
        findings.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then_with(|| a.score.total_cmp(&b.score))
                .then_with(|| a.suspect.cmp(&b.suspect))
        });
        stats.score_nanos = score_start.elapsed().as_nanos() as u64;
        (findings, stats)
    }

    /// The single most incompatible pair of a column, if any pair is
    /// flagged — the "just the most incompatible one for users to
    /// inspect" mode of §2.2.
    pub fn most_incompatible(&self, column: &Column) -> Option<ColumnFinding> {
        self.detect_column(column).into_iter().next()
    }

    /// Audits every column of a table; findings ranked by confidence
    /// across the whole table (the spreadsheet "spell-checker" surface).
    ///
    /// This is the serial reference path; [`crate::ScanEngine`] produces
    /// identical findings in parallel and adds per-scan reporting.
    pub fn detect_table(&self, table: &adt_corpus::Table) -> Vec<TableFinding> {
        let mut out = Vec::new();
        for (i, col) in table.columns.iter().enumerate() {
            for f in self.detect_column(col) {
                out.push(TableFinding {
                    column_index: i,
                    column_header: col.header.clone(),
                    finding: f,
                });
            }
        }
        out.sort_by(|a, b| {
            b.finding
                .confidence
                .total_cmp(&a.finding.confidence)
                .then_with(|| a.column_index.cmp(&b.column_index))
                .then_with(|| a.finding.suspect.cmp(&b.finding.suspect))
        });
        out
    }
}

/// A finding located within a table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableFinding {
    /// Zero-based column index.
    pub column_index: usize,
    /// The column's header, when present.
    pub column_header: Option<String>,
    /// The column-level finding.
    pub finding: ColumnFinding,
}

#[cfg(test)]
pub(crate) mod testkit {
    use super::*;
    use adt_corpus::{Column, Corpus, SourceTag};
    use adt_patterns::Language;
    use adt_stats::StatsConfig;

    /// Builds a tiny model by hand: crude language over a corpus where ISO
    /// dates never mix with slash dates but ints mix with comma-ints.
    pub(crate) fn tiny_model() -> AutoDetect {
        let mut cols = Vec::new();
        for i in 0..40 {
            cols.push(Column::new(
                vec![
                    format!("{}", 1900 + i),
                    format!("{},000", i + 1),
                    format!("{}", i * 7),
                ],
                SourceTag::Web,
            ));
            cols.push(Column::new(
                vec![
                    format!("20{:02}-01-01", i % 30),
                    format!("20{:02}-02-02", (i + 1) % 30),
                ],
                SourceTag::Web,
            ));
            cols.push(Column::new(
                vec![
                    format!("20{:02}/01/01", i % 30),
                    format!("20{:02}/02/02", (i + 1) % 30),
                ],
                SourceTag::Web,
            ));
        }
        let corpus = Corpus::from_columns(cols);
        let stats = LanguageStats::build(
            adt_patterns::crude::crude_language(),
            &corpus,
            &StatsConfig::default(),
        );
        let calibration = Calibration {
            theta: Some(-0.4),
            precision_at_theta: 1.0,
            covered_negatives: vec![],
            covered_positives: 0,
            curve: vec![(-1.0, 0.99), (-0.4, 0.9), (0.0, 0.5), (1.0, 0.01)],
        };
        // A second language that only looks at symbols (L1): catches
        // separator mixes but is blind to letter/digit swaps.
        let stats_l1 = {
            let mut cols2 = Vec::new();
            for i in 0..40 {
                cols2.push(Column::new(
                    vec![format!("{}-{:02}", 2000 + i, i % 12 + 1)],
                    SourceTag::Web,
                ));
            }
            let c2 = Corpus::from_columns(cols2);
            LanguageStats::build(Language::paper_l1(), &c2, &StatsConfig::default())
        };
        let cal_l1 = Calibration {
            theta: Some(-0.5),
            precision_at_theta: 0.97,
            covered_negatives: vec![],
            covered_positives: 0,
            curve: vec![(-1.0, 0.97), (-0.5, 0.8), (1.0, 0.0)],
        };
        AutoDetect {
            languages: vec![
                SelectedLanguage { stats, calibration },
                SelectedLanguage {
                    stats: stats_l1,
                    calibration: cal_l1,
                },
            ],
            npmi: NpmiParams { smoothing: 0.1 },
            precision_target: 0.9,
            max_distinct_values: 50,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testkit::tiny_model;
    use super::*;
    use adt_corpus::{Column, SourceTag};

    #[test]
    fn flags_mixed_date_formats() {
        let m = tiny_model();
        let verdict = m.score_pair("2011-01-01", "2011/02/02");
        assert!(verdict.incompatible);
        assert!(verdict.confidence > 0.5);
    }

    #[test]
    fn accepts_compatible_numbers() {
        let m = tiny_model();
        let verdict = m.score_pair("42", "7,000");
        assert!(!verdict.incompatible, "scores: {:?}", verdict.scores);
    }

    #[test]
    fn detect_column_finds_the_intruder() {
        let m = tiny_model();
        let col = Column::from_strs(
            &["2011-01-01", "2012-02-02", "2013-03-03", "2014/04/04"],
            SourceTag::Wiki,
        );
        let findings = m.detect_column(&col);
        assert!(!findings.is_empty());
        assert_eq!(findings[0].suspect, "2014/04/04");
        assert_ne!(findings[0].witness, "2014/04/04");
    }

    #[test]
    fn clean_column_yields_nothing() {
        let m = tiny_model();
        let col = Column::from_strs(&["2011-01-01", "2012-02-02", "2013-03-03"], SourceTag::Wiki);
        assert!(m.detect_column(&col).is_empty());
    }

    #[test]
    fn single_distinct_value_column_is_clean() {
        let m = tiny_model();
        let col = Column::from_strs(&["7", "7", "7"], SourceTag::Wiki);
        assert!(m.detect_column(&col).is_empty());
    }

    #[test]
    fn suspect_is_the_minority_value() {
        let m = tiny_model();
        let col = Column::from_strs(
            &[
                "2011-01-01",
                "2011-01-01",
                "2012-02-02",
                "2013-03-03",
                "2014/04/04",
            ],
            SourceTag::Wiki,
        );
        let findings = m.detect_column(&col);
        assert_eq!(findings[0].suspect, "2014/04/04");
    }

    #[test]
    fn most_incompatible_returns_top_finding() {
        let m = tiny_model();
        let col = Column::from_strs(&["2011-01-01", "2012-02-02", "2014/04/04"], SourceTag::Wiki);
        let top = m.most_incompatible(&col).unwrap();
        let all = m.detect_column(&col);
        assert_eq!(top.suspect, all[0].suspect);
        assert_eq!(top.confidence, all[0].confidence);
    }

    #[test]
    fn size_accounts_all_languages() {
        let m = tiny_model();
        let total = m.size_bytes();
        let sum: usize = m.languages.iter().map(|l| l.stats.size_bytes()).sum();
        assert_eq!(total, sum);
        assert!(total > 0);
        assert_eq!(m.num_languages(), 2);
    }

    #[test]
    fn detect_table_ranks_across_columns() {
        let m = tiny_model();
        let table = adt_corpus::Table::new(vec![
            Column::from_strs(
                &["2011-01-01", "2012-02-02", "2014/04/04"],
                SourceTag::Local,
            ),
            Column::from_strs(&["1", "2", "3"], SourceTag::Local),
        ]);
        let findings = m.detect_table(&table);
        assert!(!findings.is_empty());
        assert_eq!(findings[0].column_index, 0);
        assert_eq!(findings[0].finding.suspect, "2014/04/04");
        // The clean numeric column contributes nothing.
        assert!(findings.iter().all(|f| f.column_index == 0));
    }

    #[test]
    fn scan_column_counts_match_and_cache_reuse_is_transparent() {
        let m = tiny_model();
        let col = Column::from_strs(&["2011-01-01", "2012-02-02", "2014/04/04"], SourceTag::Wiki);
        let mut cache = PatternCache::new();
        let (findings, stats) = m.scan_column(&col, Aggregator::AutoDetect, &mut cache);
        assert_eq!(stats.values_scored, 3);
        assert_eq!(stats.pairs_scored, 3); // C(3, 2)
        assert_eq!(stats.pairs_pruned, 0);
        assert!(stats.pairs_flagged >= 1);
        assert_eq!(
            stats.findings_per_language.iter().sum::<u64>(),
            findings.len() as u64
        );
        assert_eq!(cache.len(), 3);
        // A warm cache must not change the findings, and detect_column
        // (fresh cache each call) must agree.
        let (again, _) = m.scan_column(&col, Aggregator::AutoDetect, &mut cache);
        assert_eq!(format!("{again:?}"), format!("{findings:?}"));
        assert_eq!(
            format!("{:?}", m.detect_column(&col)),
            format!("{findings:?}")
        );
    }

    #[test]
    fn scan_counts_pruned_pairs_beyond_distinct_cap() {
        let mut m = tiny_model();
        m.max_distinct_values = 3;
        let values: Vec<String> = (0..10).map(|i| format!("w{i}")).collect();
        let col = Column::new(values, SourceTag::Wiki);
        let mut cache = PatternCache::new();
        let (_, stats) = m.scan_column(&col, Aggregator::AutoDetect, &mut cache);
        assert_eq!(stats.values_scored, 3);
        assert_eq!(stats.pairs_scored, 3);
        assert_eq!(stats.pairs_pruned, 45 - 3); // C(10, 2) − C(3, 2)
        assert_eq!(cache.len(), 3); // capped-out values never generalized
    }

    #[test]
    fn scan_stats_merge_sums_counters() {
        let mut a = ScanStats {
            values_scored: 2,
            pairs_scored: 1,
            pairs_flagged: 1,
            pairs_pruned: 0,
            findings_per_language: vec![1, 0],
            hash_nanos: 10,
            score_nanos: 20,
        };
        let b = ScanStats {
            values_scored: 3,
            pairs_scored: 3,
            pairs_flagged: 0,
            pairs_pruned: 2,
            findings_per_language: vec![0, 2],
            hash_nanos: 5,
            score_nanos: 5,
        };
        a.merge(&b);
        assert_eq!(a.values_scored, 5);
        assert_eq!(a.pairs_scored, 4);
        assert_eq!(a.pairs_flagged, 1);
        assert_eq!(a.pairs_pruned, 2);
        assert_eq!(a.findings_per_language, vec![1, 2]);
        assert_eq!(a.hash_nanos, 15);
        assert_eq!(a.score_nanos, 25);
    }

    #[test]
    fn distinct_cap_respected() {
        let mut m = tiny_model();
        m.max_distinct_values = 3;
        let values: Vec<String> = (0..50).map(|i| format!("w{i}")).collect();
        let col = Column::new(values, SourceTag::Wiki);
        // Must not panic and must consider at most 3 distinct values.
        let findings = m.detect_column(&col);
        assert!(findings.len() <= 3);
    }
}
