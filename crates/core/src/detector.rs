//! The end-user detection API.
//!
//! A trained [`AutoDetect`] holds the selected generalization languages
//! with their corpus statistics and calibrations. Detection over a column
//! scores all distinct-value pairs; a pair is predicted incompatible when
//! any language fires (`s_k ≤ θ_k`, ST aggregation), ranked by the
//! max-confidence estimate `Q = max_k P_k(s_k)` (Appendix B).
//!
//! # The pattern-group kernel
//!
//! NPMI is a function of *patterns*, not values: every value pair whose
//! members generalize identically under a language scores identically.
//! Real columns are duplicate-heavy at the pattern level (a thousand
//! distinct integers are a handful of digit-run patterns), so the scan
//! collapses the `d` distinct values of a column to `d′ ≤ d` distinct
//! pattern groups per language, computes one `d′×d′` NPMI matrix over
//! groups, and evaluates all pair decisions group-wise:
//! `O(K·d′²)` count probes plus `O(K·d·d′)` arithmetic instead of the
//! naive `O(K·d²)` probes. Findings are byte-identical to the naive
//! value-pair scan (kept as the differential-test reference under
//! `cfg(test)` / the `reference-kernel` feature): matrix entries are
//! bit-equal (`npmi_patterns(p, p)` is exactly `1.0`, matching the group
//! diagonal), flag degrees are exact integer sums, and every tie-break
//! the naive path takes is replayed per-pair on the rare shapes where it
//! can trigger.

use crate::aggregate::Aggregator;
use crate::calibrate::Calibration;
use adt_corpus::Column;
use adt_patterns::PatternHash;
use adt_stats::memo::DEFAULT_MEMO_CAPACITY;
use adt_stats::{FxHashMap, FxHasher, LanguageStats, NpmiMatrix, NpmiMemo, NpmiParams};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// One selected language with its statistics and calibration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectedLanguage {
    /// Corpus statistics under this language.
    pub stats: LanguageStats,
    /// Calibrated threshold and precision curve.
    pub calibration: Calibration,
}

/// A trained Auto-Detect model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoDetect {
    /// The selected ensemble, in greedy pick order.
    pub languages: Vec<SelectedLanguage>,
    /// NPMI parameters used at both training and detection time.
    pub npmi: NpmiParams,
    /// The precision target the ensemble was calibrated for.
    pub precision_target: f64,
    /// Cap on distinct values per column considered during detection.
    pub max_distinct_values: usize,
}

/// Verdict on a single value pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairVerdict {
    /// True when at least one language fires (ST union).
    pub incompatible: bool,
    /// Max-confidence rank score `Q = max_k P_k(s_k)`.
    pub confidence: f64,
    /// Per-language NPMI scores `s_k(u, v)`.
    pub scores: Vec<f64>,
    /// Index of the most confident language.
    pub best_language: usize,
}

/// One ranked finding within a column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnFinding {
    /// The value predicted to be an error.
    pub suspect: String,
    /// The in-column value it is most incompatible with.
    pub witness: String,
    /// Confidence `Q` of the witnessing pair.
    pub confidence: f64,
    /// The most negative firing NPMI score of the witnessing pair.
    pub score: f64,
}

/// Default cap on memoized values per [`PatternCache`]. A cache entry is
/// the value string plus one hash per language; at the cap the map stays
/// in the tens of megabytes even for pathological value lengths.
pub const DEFAULT_VALUE_CAPACITY: usize = 65_536;

/// Per-worker scan memory: value → pattern hashes, plus one bounded
/// NPMI pair-score memo per selected language.
///
/// Generalizing a value is the per-value hot path of a scan (run-length
/// tokenization under every language). Values repeat heavily across the
/// columns of real tables, so workers keep one cache alive across the
/// columns they scan: each distinct value is generalized exactly once
/// under *all* languages, then shared for the rest of the worker's life.
/// The per-language memos let the group kernel skip recomputing NPMI for
/// pattern pairs it has already scored in earlier columns.
///
/// Both layers are bounded: at capacity they flush wholesale
/// (deterministic generational eviction), so unbounded distinct traffic
/// — a long-lived serve worker fed adversarial columns — costs
/// recomputation, never memory. Cached hashes and memoized scores are
/// meaningful only for the model that produced them, so the cache stamps
/// itself with the model's [`AutoDetect::fingerprint`] on first use and
/// silently resets (counted in [`PatternCache::rebinds`]) when handed a
/// different model.
#[derive(Debug)]
pub struct PatternCache {
    map: FxHashMap<String, Vec<PatternHash>>,
    memos: Vec<NpmiMemo>,
    fingerprint: Option<u64>,
    value_capacity: usize,
    memo_capacity: usize,
    value_flushes: u64,
    rebinds: u64,
}

impl Default for PatternCache {
    fn default() -> Self {
        PatternCache::with_capacity(DEFAULT_VALUE_CAPACITY, DEFAULT_MEMO_CAPACITY)
    }
}

impl PatternCache {
    /// An empty cache with default capacities.
    pub fn new() -> Self {
        PatternCache::default()
    }

    /// An empty cache holding at most `value_capacity` generalized values
    /// and `memo_capacity` pair scores per language (each min 1).
    pub fn with_capacity(value_capacity: usize, memo_capacity: usize) -> Self {
        PatternCache {
            map: FxHashMap::default(),
            memos: Vec::new(),
            fingerprint: None,
            value_capacity: value_capacity.max(1),
            memo_capacity: memo_capacity.max(1),
            value_flushes: 0,
            rebinds: 0,
        }
    }

    /// Number of memoized values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The cap on memoized values.
    pub fn value_capacity(&self) -> usize {
        self.value_capacity
    }

    /// Wholesale value-map evictions performed to stay under the cap.
    pub fn value_flushes(&self) -> u64 {
        self.value_flushes
    }

    /// Times the cache was handed a model other than the one it was
    /// stamped with (each reset the whole cache).
    pub fn rebinds(&self) -> u64 {
        self.rebinds
    }

    /// Fingerprint of the model this cache is bound to, if any.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Total memoized NPMI pair scores across languages.
    pub fn memo_len(&self) -> usize {
        self.memos.iter().map(|m| m.len()).sum()
    }

    /// Lifetime NPMI memo hits across languages.
    pub fn memo_hits(&self) -> u64 {
        self.memos.iter().map(|m| m.hits()).sum()
    }

    /// Lifetime NPMI memo misses (fresh probes) across languages.
    pub fn memo_misses(&self) -> u64 {
        self.memos.iter().map(|m| m.misses()).sum()
    }

    /// Stamps the cache with `model`, resetting it first when it was
    /// bound to a different model (hashes and scores don't transfer).
    fn bind(&mut self, model: &AutoDetect) {
        let fp = model.fingerprint();
        if self.fingerprint != Some(fp) {
            if self.fingerprint.is_some() {
                self.rebinds += 1;
                self.map.clear();
            }
            self.memos = (0..model.languages.len())
                .map(|_| NpmiMemo::with_capacity(self.memo_capacity))
                .collect();
            self.fingerprint = Some(fp);
        }
    }

    fn memo_mut(&mut self, k: usize) -> &mut NpmiMemo {
        &mut self.memos[k]
    }

    /// Appends `value`'s hash under every language of `model` to the
    /// per-language columns of `out`, generalizing on first sight.
    fn append_hashes(&mut self, model: &AutoDetect, value: &str, out: &mut [Vec<PatternHash>]) {
        if let Some(hs) = self.map.get(value) {
            for (k, &h) in hs.iter().enumerate() {
                out[k].push(h);
            }
            return;
        }
        let hs: Vec<PatternHash> = model
            .languages
            .iter()
            .map(|l| l.stats.pattern_of(value))
            .collect();
        for (k, &h) in hs.iter().enumerate() {
            out[k].push(h);
        }
        if self.map.len() >= self.value_capacity {
            self.map.clear();
            self.value_flushes += 1;
        }
        self.map.insert(value.to_string(), hs);
    }
}

/// Counters and per-stage timings accumulated by a column scan.
///
/// Merged across columns (and worker threads) into the totals a
/// [`crate::engine::ScanReport`] exposes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScanStats {
    /// Distinct values actually scored (after the distinct-value cap).
    pub values_scored: u64,
    /// Value pairs scored under the ensemble.
    pub pairs_scored: u64,
    /// Scored pairs flagged incompatible by the aggregator.
    pub pairs_flagged: u64,
    /// Pairs skipped by the distinct-value cap (rare tail values beyond
    /// `max_distinct_values` never enter the d×d matrices).
    pub pairs_pruned: u64,
    /// NPMI scores actually computed from count probes. The group kernel
    /// needs at most `K·C(d′,2)` of these per column versus the naive
    /// `K·C(d,2)`; the memo reduces it further.
    pub npmi_probes: u64,
    /// NPMI scores answered from the per-worker pair-score memo.
    pub npmi_memo_hits: u64,
    /// Distinct pattern groups per language, summed over scanned columns
    /// (index = position in [`AutoDetect::languages`]). Together with
    /// `values_scored` this exposes the d′/d collapse ratio.
    pub groups_per_language: Vec<u64>,
    /// Surviving findings attributed to each language (index = position
    /// in [`AutoDetect::languages`]).
    pub findings_per_language: Vec<u64>,
    /// Nanoseconds spent generalizing values to pattern hashes.
    pub hash_nanos: u64,
    /// Nanoseconds spent scoring pairs and attributing suspects.
    pub score_nanos: u64,
    /// Per-detector instrumentation lanes recorded by the ensemble
    /// engine (empty for plain single-model scans). Merged by name.
    pub detectors: Vec<DetectorLane>,
    /// Which scoring kernel the adaptive scan picked, per column (see
    /// [`AutoDetect::scan_pairs`]). Absent in serialized stats from
    /// older builds, so it defaults to zero on deserialize.
    #[serde(default)]
    pub kernel_choices: KernelChoices,
}

/// Per-column kernel selections made by the adaptive scan. Columns with
/// fewer than two distinct values never reach a kernel and are counted
/// by neither field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelChoices {
    /// Columns scored by the pattern-group kernel (joint-class pass).
    pub group: u64,
    /// Columns scored by the direct per-pair kernel — high distinct-ratio
    /// columns where grouping buys no dedup.
    pub direct: u64,
}

/// One detector's share of an ensemble scan: wall time and output
/// volume, accumulated across columns and worker threads.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectorLane {
    /// The detector's display name.
    pub name: String,
    /// Nanoseconds of wall time spent inside this detector's
    /// `detect_batch` calls (summed across chunks, so with multiple
    /// workers this can exceed the scan's elapsed time).
    pub wall_nanos: u64,
    /// Predictions emitted before merging.
    pub predictions: u64,
    /// Columns this detector scanned.
    pub columns: u64,
}

impl ScanStats {
    /// A zeroed stats block sized for `num_languages`.
    pub fn for_languages(num_languages: usize) -> Self {
        ScanStats {
            groups_per_language: vec![0; num_languages],
            findings_per_language: vec![0; num_languages],
            ..ScanStats::default()
        }
    }

    /// Accumulates `other` into `self` (element-wise sums).
    pub fn merge(&mut self, other: &ScanStats) {
        self.values_scored += other.values_scored;
        self.pairs_scored += other.pairs_scored;
        self.pairs_flagged += other.pairs_flagged;
        self.pairs_pruned += other.pairs_pruned;
        self.npmi_probes += other.npmi_probes;
        self.npmi_memo_hits += other.npmi_memo_hits;
        if self.groups_per_language.len() < other.groups_per_language.len() {
            self.groups_per_language
                .resize(other.groups_per_language.len(), 0);
        }
        for (a, b) in self
            .groups_per_language
            .iter_mut()
            .zip(&other.groups_per_language)
        {
            *a += b;
        }
        if self.findings_per_language.len() < other.findings_per_language.len() {
            self.findings_per_language
                .resize(other.findings_per_language.len(), 0);
        }
        for (a, b) in self
            .findings_per_language
            .iter_mut()
            .zip(&other.findings_per_language)
        {
            *a += b;
        }
        self.hash_nanos += other.hash_nanos;
        self.score_nanos += other.score_nanos;
        self.kernel_choices.group += other.kernel_choices.group;
        self.kernel_choices.direct += other.kernel_choices.direct;
        for lane in &other.detectors {
            match self.detectors.iter_mut().find(|l| l.name == lane.name) {
                Some(mine) => {
                    mine.wall_nanos += lane.wall_nanos;
                    mine.predictions += lane.predictions;
                    mine.columns += lane.columns;
                }
                None => self.detectors.push(lane.clone()),
            }
        }
    }
}

/// Adaptive kernel threshold as a ratio: the direct per-pair kernel is
/// chosen when `min_k d′_k / d ≥ NUM/DEN`, i.e. when even the
/// coarsest language keeps at least ¾ of the column's values as
/// distinct patterns. Calibrated against BENCH_scan.json shapes (see
/// DESIGN.md §13): at d′/d = 1 the group kernel's joint-class
/// refinement made it ~30% *slower* than the naive reference, while on
/// duplicate-heavy shapes (d′/d ≤ ½ under some language) grouping wins
/// by orders of magnitude. Between those regimes the kernels are within
/// noise of each other, so the cut sits conservatively near the top.
const DIRECT_KERNEL_NUM: usize = 3;
const DIRECT_KERNEL_DEN: usize = 4;

/// A flagged pair of joint pattern groups with its pair-level verdict
/// (identical for every member value pair).
struct FlaggedClassPair {
    a: usize,
    b: usize,
    confidence: f64,
    k: usize,
    score: f64,
}

/// Attribution candidate kept per suspect while replaying the naive
/// best-finding semantics: max confidence wins, confidence ties go to
/// the earliest-enumerated value pair (`enum_key = u·d + v`, `u < v`).
struct BestFinding {
    confidence: f64,
    enum_key: u64,
    witness: usize,
    k: usize,
    score: f64,
}

impl AutoDetect {
    /// Number of selected languages.
    pub fn num_languages(&self) -> usize {
        self.languages.len()
    }

    /// Total memory footprint of the ensemble in bytes.
    pub fn size_bytes(&self) -> usize {
        self.languages.iter().map(|l| l.stats.size_bytes()).sum()
    }

    /// Calibrations of the selected languages, in order.
    pub fn calibrations(&self) -> Vec<&Calibration> {
        self.languages.iter().map(|l| &l.calibration).collect()
    }

    /// A cheap structural fingerprint of the model, used to stamp
    /// [`PatternCache`]s: two models that fingerprint differently must
    /// not share cached hashes or memoized scores.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        self.languages.len().hash(&mut h);
        for l in &self.languages {
            l.stats.language.hash(&mut h);
            l.stats.n_columns.hash(&mut h);
            (l.stats.distinct_patterns() as u64).hash(&mut h);
            l.calibration
                .theta
                .unwrap_or(f64::NAN)
                .to_bits()
                .hash(&mut h);
            l.calibration.precision_at_theta.to_bits().hash(&mut h);
            l.calibration.curve.len().hash(&mut h);
            for &(s, p) in &l.calibration.curve {
                s.to_bits().hash(&mut h);
                p.to_bits().hash(&mut h);
            }
        }
        self.npmi.smoothing.to_bits().hash(&mut h);
        self.precision_target.to_bits().hash(&mut h);
        self.max_distinct_values.hash(&mut h);
        h.finish()
    }

    /// Scores one value pair under every selected language.
    pub fn score_pair(&self, u: &str, v: &str) -> PairVerdict {
        let scores: Vec<f64> = self
            .languages
            .iter()
            .map(|l| l.stats.score_values(u, v, self.npmi))
            .collect();
        self.verdict_from_scores(scores)
    }

    fn verdict_from_scores(&self, scores: Vec<f64>) -> PairVerdict {
        let mut incompatible = false;
        let mut confidence = 0.0;
        let mut best_language = 0;
        for (k, (&s, lang)) in scores.iter().zip(&self.languages).enumerate() {
            if lang.calibration.fires(s) {
                incompatible = true;
            }
            let p = lang.calibration.precision_at(s);
            if p > confidence {
                confidence = p;
                best_language = k;
            }
        }
        PairVerdict {
            incompatible,
            confidence,
            scores,
            best_language,
        }
    }

    /// Distinct values of a column, most frequent first, capped. Returns
    /// the capped list plus the uncapped distinct count.
    fn distinct_capped<'a>(&self, column: &'a Column) -> (Vec<(&'a str, usize)>, usize) {
        let mut counts: FxHashMap<&str, usize> = FxHashMap::default();
        for v in column.non_empty_values() {
            *counts.entry(v).or_insert(0) += 1;
        }
        let total = counts.len();
        let mut out: Vec<(&str, usize)> = counts.into_iter().collect();
        // Most frequent first; lexicographic tie-break for determinism.
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out.truncate(self.max_distinct_values);
        (out, total)
    }

    /// Detects incompatible values in a column with the default
    /// (Auto-Detect) aggregation. Findings are deduplicated per suspect
    /// value and sorted by descending confidence.
    pub fn detect_column(&self, column: &Column) -> Vec<ColumnFinding> {
        self.detect_column_with(column, Aggregator::AutoDetect)
    }

    /// Detects incompatible values using an explicit aggregator
    /// (Figure 8(b) comparisons).
    pub fn detect_column_with(
        &self,
        column: &Column,
        aggregator: Aggregator,
    ) -> Vec<ColumnFinding> {
        let mut cache = PatternCache::new();
        self.scan_column(column, aggregator, &mut cache).0
    }

    /// The instrumented scan primitive behind every detection surface.
    ///
    /// Identical findings to [`AutoDetect::detect_column_with`], plus the
    /// scan's [`ScanStats`]. `cache` memoizes value generalization and
    /// pattern-pair scores across calls; [`crate::engine::ScanEngine`]
    /// keeps one per worker thread. Findings depend only on the column's
    /// contents, never on the cache's prior state or the calling thread —
    /// this is what makes parallel scans byte-identical to serial ones.
    pub fn scan_column(
        &self,
        column: &Column,
        aggregator: Aggregator,
        cache: &mut PatternCache,
    ) -> (Vec<ColumnFinding>, ScanStats) {
        let (distinct, total_distinct) = self.distinct_capped(column);
        self.scan_pairs(&distinct, total_distinct, aggregator, cache)
    }

    /// Scans a column given its distinct-value counts — the streaming
    /// surface. `counts` must hold each distinct non-empty value exactly
    /// once with its multiplicity (any order); the same frequency cap and
    /// deterministic ordering as [`AutoDetect::scan_column`] are applied
    /// here, so a streamed column yields byte-identical findings to the
    /// materialized one.
    pub fn scan_value_counts(
        &self,
        counts: &[(String, usize)],
        aggregator: Aggregator,
        cache: &mut PatternCache,
    ) -> (Vec<ColumnFinding>, ScanStats) {
        let total_distinct = counts.len();
        let mut distinct: Vec<(&str, usize)> =
            counts.iter().map(|(v, c)| (v.as_str(), *c)).collect();
        distinct.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        distinct.truncate(self.max_distinct_values);
        self.scan_pairs(&distinct, total_distinct, aggregator, cache)
    }

    /// The pattern-group scoring kernel (see the module docs). Findings
    /// and pair counters are byte-identical to
    /// [`AutoDetect::scan_pairs_reference`].
    fn scan_pairs(
        &self,
        distinct: &[(&str, usize)],
        total_distinct: usize,
        aggregator: Aggregator,
        cache: &mut PatternCache,
    ) -> (Vec<ColumnFinding>, ScanStats) {
        let d = distinct.len();
        let num_langs = self.languages.len();
        let mut stats = ScanStats::for_languages(num_langs);
        stats.values_scored = d as u64;
        stats.pairs_scored = (d * d.saturating_sub(1) / 2) as u64;
        stats.pairs_pruned =
            (total_distinct * total_distinct.saturating_sub(1) / 2) as u64 - stats.pairs_scored;
        if d < 2 {
            return (Vec::new(), stats);
        }
        cache.bind(self);

        // Generalize every distinct value once under all languages (cache
        // hits skip the work entirely), viewed per-language.
        // adt-allow(determinism): wall-clock feeds ScanStats timing fields only, never detection results
        let hash_start = Instant::now();
        let mut hashes: Vec<Vec<PatternHash>> =
            (0..num_langs).map(|_| Vec::with_capacity(d)).collect();
        for (v, _) in distinct {
            cache.append_hashes(self, v, &mut hashes);
        }
        stats.hash_nanos = hash_start.elapsed().as_nanos() as u64;
        // adt-allow(determinism): wall-clock feeds ScanStats timing fields only, never detection results
        let score_start = Instant::now();
        let calibrations: Vec<&Calibration> = self.calibrations();

        // Group stage: per language, collapse values to distinct-pattern
        // groups in first-seen order. `group_of[k][i]` is value i's group
        // under language k; `group_patterns[k]` the group representatives.
        let mut group_of: Vec<Vec<u32>> = Vec::with_capacity(num_langs);
        let mut group_patterns: Vec<Vec<PatternHash>> = Vec::with_capacity(num_langs);
        for hs in &hashes {
            let mut ids: FxHashMap<u64, u32> = FxHashMap::default();
            let mut of = Vec::with_capacity(d);
            let mut pats: Vec<PatternHash> = Vec::new();
            for &h in hs {
                // adt-allow(unchecked-arithmetic): per-column distinct-pattern count, bounded by the column's value count — far below u32::MAX
                let next = pats.len() as u32;
                let g = *ids.entry(h.0).or_insert(next);
                if g == next {
                    pats.push(h);
                }
                of.push(g);
            }
            group_of.push(of);
            group_patterns.push(pats);
        }
        for (k, pats) in group_patterns.iter().enumerate() {
            stats.groups_per_language[k] += pats.len() as u64;
        }

        // Adaptive kernel choice: when every language keeps at least
        // DIRECT_KERNEL_NUM/DIRECT_KERNEL_DEN of the column's values as
        // distinct patterns, grouping collapses (almost) nothing anywhere
        // and both the joint-class machinery below and the shared NPMI
        // memo are pure overhead (near d′ = d the memo's per-entry key
        // hashing costs more than the collapse ever saves) — build
        // memo-free group matrices and score the d×d pairs directly
        // against them instead. The ratio is a pure function of the
        // column's contents, so the choice — and with it every counter —
        // is identical at any thread count.
        let min_groups = group_patterns.iter().map(Vec::len).min().unwrap_or(0);
        if min_groups * DIRECT_KERNEL_DEN >= d * DIRECT_KERNEL_NUM {
            stats.kernel_choices.direct += 1;
            let mut matrices: Vec<NpmiMatrix> = Vec::with_capacity(num_langs);
            for (k, l) in self.languages.iter().enumerate() {
                let m = l.stats.npmi_matrix(&group_patterns[k], self.npmi, None);
                stats.npmi_probes += m.probes;
                stats.npmi_memo_hits += m.memo_hits;
                matrices.push(m);
            }
            let findings = self.scan_pairs_direct(
                distinct,
                &hashes,
                &group_of,
                &matrices,
                &calibrations,
                aggregator,
                &mut stats,
            );
            stats.score_nanos = score_start.elapsed().as_nanos() as u64;
            return (findings, stats);
        }
        stats.kernel_choices.group += 1;

        // Probe stage: one d′×d′ NPMI matrix per language over pattern
        // groups, served from the per-worker memo where possible. Entries
        // are bit-identical to the naive per-value matrix: same
        // `npmi_patterns` calls, and the diagonal 1.0 equals the
        // identical-pattern early return.
        let mut matrices: Vec<NpmiMatrix> = Vec::with_capacity(num_langs);
        for (k, l) in self.languages.iter().enumerate() {
            let m = l
                .stats
                .npmi_matrix(&group_patterns[k], self.npmi, Some(cache.memo_mut(k)));
            stats.npmi_probes += m.probes;
            stats.npmi_memo_hits += m.memo_hits;
            matrices.push(m);
        }

        // Joint groups: values equivalent under *every* language form one
        // equivalence class (successive partition refinement); flagging,
        // confidence, k* and score are pure functions of the class pair.
        let mut joint_of: Vec<u32> = vec![0; d];
        let mut n_joint = 1usize;
        for of in &group_of {
            let mut remap: FxHashMap<(u32, u32), u32> = FxHashMap::default();
            let mut next = 0u32;
            for i in 0..d {
                let id = *remap.entry((joint_of[i], of[i])).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                joint_of[i] = id;
            }
            n_joint = next as usize;
        }
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_joint];
        for (i, &jg) in joint_of.iter().enumerate() {
            members[jg as usize].push(i);
        }
        let joint_weight: Vec<f64> = members
            .iter()
            .map(|ms| ms.iter().map(|&i| distinct[i].1 as f64).sum())
            .collect();

        // An intra-class pair scores exactly [1.0; K] (identical patterns
        // under every language), so whether such pairs flag at all is one
        // global decision — false for any sane calibration, true only for
        // degenerate θ ≥ 1.0 thresholds.
        let ones = vec![1.0f64; num_langs];
        let intra_flags = aggregator.flags(&ones, &calibrations);

        // Pass 1 (group-wise): flag joint-class pairs and expand exact
        // per-value flag degrees — the count-weighted amount of the column
        // each value clashes with. Degrees are integer-valued f64 sums
        // (all partial sums exactly representable), so group-order
        // accumulation is bit-identical to the naive per-pair loop.
        let mut scores = vec![0.0f64; num_langs];
        let mut flagged: Vec<FlaggedClassPair> = Vec::new();
        let mut degree = vec![0.0f64; d];
        for a in 0..n_joint {
            for b in a..n_joint {
                if a == b {
                    if !intra_flags || members[a].len() < 2 {
                        continue;
                    }
                    scores.iter_mut().for_each(|s| *s = 1.0);
                } else {
                    let (ra, rb) = (members[a][0], members[b][0]);
                    for (k, m) in matrices.iter().enumerate() {
                        scores[k] = m.at(group_of[k][ra] as usize, group_of[k][rb] as usize);
                    }
                    if !aggregator.flags(&scores, &calibrations) {
                        continue;
                    }
                }
                let confidence = aggregator.suspicion(&scores, &calibrations);
                let k = scores
                    .iter()
                    .enumerate()
                    .min_by(|x, y| x.1.total_cmp(y.1))
                    .map(|(k, _)| k)
                    .unwrap_or(0);
                let min_firing_score = scores
                    .iter()
                    .zip(calibrations.iter().copied())
                    .filter(|(&s, c)| c.fires(s))
                    .map(|(&s, _)| s)
                    .fold(f64::INFINITY, f64::min);
                let score = if min_firing_score.is_finite() {
                    min_firing_score
                } else {
                    scores.iter().copied().fold(f64::INFINITY, f64::min)
                };
                if a == b {
                    let n = members[a].len();
                    stats.pairs_flagged += (n * (n - 1) / 2) as u64;
                    for &i in &members[a] {
                        degree[i] += joint_weight[a] - distinct[i].1 as f64;
                    }
                } else {
                    stats.pairs_flagged += (members[a].len() * members[b].len()) as u64;
                    for &i in &members[a] {
                        degree[i] += joint_weight[b];
                    }
                    for &j in &members[b] {
                        degree[j] += joint_weight[a];
                    }
                }
                flagged.push(FlaggedClassPair {
                    a,
                    b,
                    confidence,
                    k,
                    score,
                });
            }
        }

        // Pass 2: attribute each flagged class pair. The suspect is the
        // member with the higher flag degree; with intra flagging off,
        // degrees are uniform within a class, so one comparison settles
        // all |A|·|B| member pairs and the witness is the class's
        // first-enumerated member. Degree ties (and the degenerate intra
        // case) replay the naive per-pair tie-breaks exactly: lower
        // rest-of-column compatibility under the pair's most negative
        // language, then corpus occurrence (the globally rarer pattern is
        // the likelier intruder). Compatibility is computed lazily in the
        // naive summation order so even its f64 rounding matches.
        let mut best: FxHashMap<usize, BestFinding> = FxHashMap::default();
        let consider = |best: &mut FxHashMap<usize, BestFinding>,
                        suspect: usize,
                        witness: usize,
                        confidence: f64,
                        k: usize,
                        score: f64| {
            let (u, v) = if suspect < witness {
                (suspect, witness)
            } else {
                (witness, suspect)
            };
            let enum_key = (u * d + v) as u64;
            match best.get(&suspect) {
                Some(prev)
                    if prev.confidence > confidence
                        || (prev.confidence == confidence && prev.enum_key <= enum_key) => {}
                _ => {
                    best.insert(
                        suspect,
                        BestFinding {
                            confidence,
                            enum_key,
                            witness,
                            k,
                            score,
                        },
                    );
                }
            }
        };
        let mut compat_memo: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        let compat_at = |memo: &mut FxHashMap<(u32, u32), f64>, k: usize, i: usize| -> f64 {
            // adt-allow(unchecked-arithmetic): k ≤ selected languages (≤144) and i < d′ distinct patterns; both fit u32 with room to spare
            *memo.entry((k as u32, i as u32)).or_insert_with(|| {
                let m = &matrices[k];
                let gi = group_of[k][i] as usize;
                let mut sum = 0.0;
                let mut w = 0.0;
                for (j, &(_, cnt)) in distinct.iter().enumerate() {
                    if j != i {
                        sum += m.at(gi, group_of[k][j] as usize) * cnt as f64;
                        w += cnt as f64;
                    }
                }
                if w > 0.0 {
                    sum / w
                } else {
                    1.0
                }
            })
        };
        for f in &flagged {
            if f.a != f.b && !intra_flags {
                let da = degree[members[f.a][0]];
                let db = degree[members[f.b][0]];
                if (da - db).abs() > 1e-9 {
                    let (sc, wc) = if da > db { (f.a, f.b) } else { (f.b, f.a) };
                    let w0 = members[wc][0];
                    for &i in &members[sc] {
                        consider(&mut best, i, w0, f.confidence, f.k, f.score);
                    }
                    continue;
                }
            }
            // Rare shapes only: degree ties, or intra flagging making
            // within-class degrees non-uniform.
            let member_pairs = |a: usize, b: usize| -> Vec<(usize, usize)> {
                if a == b {
                    let ms = &members[a];
                    let mut v = Vec::with_capacity(ms.len() * (ms.len() - 1) / 2);
                    for x in 0..ms.len() {
                        // adt-allow(unchecked-arithmetic): x < ms.len() loop bound, so +1 cannot overflow
                        for y in (x + 1)..ms.len() {
                            v.push((ms[x], ms[y]));
                        }
                    }
                    v
                } else {
                    let mut v = Vec::with_capacity(members[a].len() * members[b].len());
                    for &x in &members[a] {
                        for &y in &members[b] {
                            v.push(if x < y { (x, y) } else { (y, x) });
                        }
                    }
                    v
                }
            };
            for (i, j) in member_pairs(f.a, f.b) {
                let (suspect, witness) = if (degree[i] - degree[j]).abs() > 1e-9 {
                    if degree[i] > degree[j] {
                        (i, j)
                    } else {
                        (j, i)
                    }
                } else {
                    let ci = compat_at(&mut compat_memo, f.k, i);
                    let cj = compat_at(&mut compat_memo, f.k, j);
                    if (ci - cj).abs() > 1e-9 {
                        if ci < cj {
                            (i, j)
                        } else {
                            (j, i)
                        }
                    } else {
                        let oi = self.languages[f.k].stats.occurrence(hashes[f.k][i]);
                        let oj = self.languages[f.k].stats.occurrence(hashes[f.k][j]);
                        if oi <= oj {
                            (i, j)
                        } else {
                            (j, i)
                        }
                    }
                };
                consider(&mut best, suspect, witness, f.confidence, f.k, f.score);
            }
        }
        let mut findings: Vec<ColumnFinding> = Vec::with_capacity(best.len());
        for (suspect_idx, bf) in best {
            stats.findings_per_language[bf.k] += 1;
            findings.push(ColumnFinding {
                suspect: distinct[suspect_idx].0.to_string(),
                witness: distinct[bf.witness].0.to_string(),
                confidence: bf.confidence,
                score: bf.score,
            });
        }
        findings.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then_with(|| a.score.total_cmp(&b.score))
                .then_with(|| a.suspect.cmp(&b.suspect))
        });
        stats.score_nanos = score_start.elapsed().as_nanos() as u64;
        (findings, stats)
    }

    /// The direct per-pair kernel for high distinct-ratio columns:
    /// lexicographic (i, j) flagging straight off the per-language group
    /// matrices, skipping the joint-class refinement whose bookkeeping
    /// dominates when d′ ≈ d. Scores, tie-breaks (flag degree →
    /// rest-of-column compatibility in naive summation order → corpus
    /// occurrence) and first-wins attribution replicate
    /// [`AutoDetect::scan_pairs_reference`] exactly, so findings stay
    /// byte-identical to both other kernels. NPMI probes were already
    /// spent building the (memo-free) matrices — at most the reference's
    /// count, since d′ ≤ d — so this pass adds none.
    #[allow(clippy::too_many_arguments)]
    fn scan_pairs_direct(
        &self,
        distinct: &[(&str, usize)],
        hashes: &[Vec<PatternHash>],
        group_of: &[Vec<u32>],
        matrices: &[NpmiMatrix],
        calibrations: &[&Calibration],
        aggregator: Aggregator,
        stats: &mut ScanStats,
    ) -> Vec<ColumnFinding> {
        let d = distinct.len();
        let num_langs = matrices.len();

        // Pass 1: flag pairs and accumulate per-value flag degrees.
        // Matrix entries are bit-identical to per-value probes (the
        // diagonal's exact 1.0 covers pairs whose patterns collide under
        // a language), and the pair-level verdicts are computed from the
        // same scores in the same order as the reference.
        let mut scores = vec![0.0f64; num_langs];
        let mut flagged_pairs: Vec<(usize, usize, f64, usize, f64)> = Vec::new();
        let mut degree = vec![0.0f64; d];
        for i in 0..d {
            // adt-allow(unchecked-arithmetic): i < d loop bound, so +1 cannot overflow
            for j in (i + 1)..d {
                for (k, m) in matrices.iter().enumerate() {
                    scores[k] = m.at(group_of[k][i] as usize, group_of[k][j] as usize);
                }
                if !aggregator.flags(&scores, calibrations) {
                    continue;
                }
                let confidence = aggregator.suspicion(&scores, calibrations);
                let k = scores
                    .iter()
                    .enumerate()
                    .min_by(|x, y| x.1.total_cmp(y.1))
                    .map(|(k, _)| k)
                    .unwrap_or(0);
                let min_firing_score = scores
                    .iter()
                    .zip(calibrations.iter().copied())
                    .filter(|(&s, c)| c.fires(s))
                    .map(|(&s, _)| s)
                    .fold(f64::INFINITY, f64::min);
                let score = if min_firing_score.is_finite() {
                    min_firing_score
                } else {
                    scores.iter().copied().fold(f64::INFINITY, f64::min)
                };
                flagged_pairs.push((i, j, confidence, k, score));
                degree[i] += distinct[j].1 as f64;
                degree[j] += distinct[i].1 as f64;
            }
        }
        stats.pairs_flagged = flagged_pairs.len() as u64;

        // Pass 2: attribute each flagged pair. Compatibility is computed
        // lazily (most columns never tie on degree) but in the naive
        // summation order, so even its f64 rounding matches.
        let mut compat_memo: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        let compat_at = |memo: &mut FxHashMap<(u32, u32), f64>, k: usize, i: usize| -> f64 {
            // adt-allow(unchecked-arithmetic): k ≤ selected languages (≤144) and i < d′ distinct patterns; both fit u32 with room to spare
            *memo.entry((k as u32, i as u32)).or_insert_with(|| {
                let m = &matrices[k];
                let gi = group_of[k][i] as usize;
                let mut sum = 0.0;
                let mut w = 0.0;
                for (j, &(_, cnt)) in distinct.iter().enumerate() {
                    if j != i {
                        sum += m.at(gi, group_of[k][j] as usize) * cnt as f64;
                        w += cnt as f64;
                    }
                }
                if w > 0.0 {
                    sum / w
                } else {
                    1.0
                }
            })
        };
        let mut best: FxHashMap<usize, (ColumnFinding, usize)> = FxHashMap::default();
        for &(i, j, confidence, k, score) in &flagged_pairs {
            let (suspect_idx, witness_idx) = if (degree[i] - degree[j]).abs() > 1e-9 {
                if degree[i] > degree[j] {
                    (i, j)
                } else {
                    (j, i)
                }
            } else {
                let ci = compat_at(&mut compat_memo, k, i);
                let cj = compat_at(&mut compat_memo, k, j);
                if (ci - cj).abs() > 1e-9 {
                    if ci < cj {
                        (i, j)
                    } else {
                        (j, i)
                    }
                } else {
                    let oi = self.languages[k].stats.occurrence(hashes[k][i]);
                    let oj = self.languages[k].stats.occurrence(hashes[k][j]);
                    if oi <= oj {
                        (i, j)
                    } else {
                        (j, i)
                    }
                }
            };
            let finding = ColumnFinding {
                suspect: distinct[suspect_idx].0.to_string(),
                witness: distinct[witness_idx].0.to_string(),
                confidence,
                score,
            };
            match best.get(&suspect_idx) {
                Some((prev, _)) if prev.confidence >= finding.confidence => {}
                _ => {
                    best.insert(suspect_idx, (finding, k));
                }
            }
        }
        let mut findings: Vec<ColumnFinding> = Vec::with_capacity(best.len());
        for (finding, k) in best.into_values() {
            stats.findings_per_language[k] += 1;
            findings.push(finding);
        }
        findings.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then_with(|| a.score.total_cmp(&b.score))
                .then_with(|| a.suspect.cmp(&b.suspect))
        });
        findings
    }

    /// The single most incompatible pair of a column, if any pair is
    /// flagged — the "just the most incompatible one for users to
    /// inspect" mode of §2.2.
    pub fn most_incompatible(&self, column: &Column) -> Option<ColumnFinding> {
        self.detect_column(column).into_iter().next()
    }

    /// Audits every column of a table; findings ranked by confidence
    /// across the whole table (the spreadsheet "spell-checker" surface).
    ///
    /// This is the serial reference path; [`crate::ScanEngine`] produces
    /// identical findings in parallel and adds per-scan reporting.
    pub fn detect_table(&self, table: &adt_corpus::Table) -> Vec<TableFinding> {
        let mut out = Vec::new();
        for (i, col) in table.columns.iter().enumerate() {
            for f in self.detect_column(col) {
                out.push(TableFinding {
                    column_index: i,
                    column_header: col.header.clone(),
                    finding: f,
                });
            }
        }
        out.sort_by(|a, b| {
            b.finding
                .confidence
                .total_cmp(&a.finding.confidence)
                .then_with(|| a.column_index.cmp(&b.column_index))
                .then_with(|| a.finding.suspect.cmp(&b.finding.suspect))
        });
        out
    }
}

/// The naive O(K·d²) value-pair scan, kept verbatim as the differential
/// reference for the pattern-group kernel. Compiled for tests and for
/// benches via the `reference-kernel` feature; production builds carry
/// only the group kernel.
#[cfg(any(test, feature = "reference-kernel"))]
impl AutoDetect {
    /// [`AutoDetect::scan_column`] through the reference kernel.
    pub fn scan_column_reference(
        &self,
        column: &Column,
        aggregator: Aggregator,
        cache: &mut PatternCache,
    ) -> (Vec<ColumnFinding>, ScanStats) {
        let (distinct, total_distinct) = self.distinct_capped(column);
        self.scan_pairs_reference(&distinct, total_distinct, aggregator, cache)
    }

    /// [`AutoDetect::scan_value_counts`] through the reference kernel.
    pub fn scan_value_counts_reference(
        &self,
        counts: &[(String, usize)],
        aggregator: Aggregator,
        cache: &mut PatternCache,
    ) -> (Vec<ColumnFinding>, ScanStats) {
        let total_distinct = counts.len();
        let mut distinct: Vec<(&str, usize)> =
            counts.iter().map(|(v, c)| (v.as_str(), *c)).collect();
        distinct.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        distinct.truncate(self.max_distinct_values);
        self.scan_pairs_reference(&distinct, total_distinct, aggregator, cache)
    }

    /// The pre-group-kernel scan: full per-value d×d matrices, per-pair
    /// flagging and attribution. `groups_per_language` is left zero (the
    /// reference does no grouping); `npmi_probes` counts every computed
    /// entry and `npmi_memo_hits` stays zero (no memo).
    fn scan_pairs_reference(
        &self,
        distinct: &[(&str, usize)],
        total_distinct: usize,
        aggregator: Aggregator,
        cache: &mut PatternCache,
    ) -> (Vec<ColumnFinding>, ScanStats) {
        let d = distinct.len();
        let mut stats = ScanStats::for_languages(self.languages.len());
        stats.values_scored = d as u64;
        stats.pairs_scored = (d * d.saturating_sub(1) / 2) as u64;
        stats.pairs_pruned =
            (total_distinct * total_distinct.saturating_sub(1) / 2) as u64 - stats.pairs_scored;
        if d < 2 {
            return (Vec::new(), stats);
        }
        cache.bind(self);
        let hash_start = Instant::now();
        let mut hashes: Vec<Vec<PatternHash>> = (0..self.languages.len())
            .map(|_| Vec::with_capacity(d))
            .collect();
        for (v, _) in distinct {
            cache.append_hashes(self, v, &mut hashes);
        }
        stats.hash_nanos = hash_start.elapsed().as_nanos() as u64;
        let score_start = Instant::now();
        let calibrations: Vec<&Calibration> = self.calibrations();

        // Full per-language NPMI matrices over distinct values (flattened
        // d×d, symmetric, diagonal 1.0).
        let matrices: Vec<Vec<f64>> = self
            .languages
            .iter()
            .enumerate()
            .map(|(k, l)| {
                let mut m = vec![1.0f64; d * d];
                for i in 0..d {
                    for j in (i + 1)..d {
                        let s = l.stats.npmi_patterns(hashes[k][i], hashes[k][j], self.npmi);
                        stats.npmi_probes += 1;
                        m[i * d + j] = s;
                        m[j * d + i] = s;
                    }
                }
                m
            })
            .collect();

        // Per-language, per-value compatibility with the rest of the
        // column: count-weighted mean NPMI against every other distinct
        // value.
        let compat: Vec<Vec<f64>> = matrices
            .iter()
            .map(|m| {
                (0..d)
                    .map(|i| {
                        let mut sum = 0.0;
                        let mut w = 0.0;
                        for (j, &(_, cnt)) in distinct.iter().enumerate() {
                            if j != i {
                                sum += m[i * d + j] * cnt as f64;
                                w += cnt as f64;
                            }
                        }
                        if w > 0.0 {
                            sum / w
                        } else {
                            1.0
                        }
                    })
                    .collect()
            })
            .collect();

        // Pass 1: flag pairs and accumulate per-value flag degrees.
        let mut scores = vec![0.0f64; self.languages.len()];
        let mut flagged_pairs: Vec<(usize, usize, f64, usize)> = Vec::new();
        let mut degree = vec![0.0f64; d];
        for i in 0..d {
            for j in (i + 1)..d {
                for (k, m) in matrices.iter().enumerate() {
                    scores[k] = m[i * d + j];
                }
                if !aggregator.flags(&scores, &calibrations) {
                    continue;
                }
                let confidence = aggregator.suspicion(&scores, &calibrations);
                let k = scores
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(k, _)| k)
                    .unwrap_or(0);
                flagged_pairs.push((i, j, confidence, k));
                degree[i] += distinct[j].1 as f64;
                degree[j] += distinct[i].1 as f64;
            }
        }
        stats.pairs_flagged = flagged_pairs.len() as u64;

        // Pass 2: attribute each flagged pair.
        let mut best: FxHashMap<usize, (ColumnFinding, usize)> = FxHashMap::default();
        for &(i, j, confidence, k) in &flagged_pairs {
            let (suspect_idx, witness_idx) = if (degree[i] - degree[j]).abs() > 1e-9 {
                if degree[i] > degree[j] {
                    (i, j)
                } else {
                    (j, i)
                }
            } else if (compat[k][i] - compat[k][j]).abs() > 1e-9 {
                if compat[k][i] < compat[k][j] {
                    (i, j)
                } else {
                    (j, i)
                }
            } else {
                let oi = self.languages[k].stats.occurrence(hashes[k][i]);
                let oj = self.languages[k].stats.occurrence(hashes[k][j]);
                if oi <= oj {
                    (i, j)
                } else {
                    (j, i)
                }
            };
            let pair_scores: Vec<f64> = matrices.iter().map(|m| m[i * d + j]).collect();
            let min_firing_score = pair_scores
                .iter()
                .zip(calibrations.iter().copied())
                .filter(|(&s, c)| c.fires(s))
                .map(|(&s, _)| s)
                .fold(f64::INFINITY, f64::min);
            let score = if min_firing_score.is_finite() {
                min_firing_score
            } else {
                pair_scores.iter().copied().fold(f64::INFINITY, f64::min)
            };
            let finding = ColumnFinding {
                suspect: distinct[suspect_idx].0.to_string(),
                witness: distinct[witness_idx].0.to_string(),
                confidence,
                score,
            };
            match best.get(&suspect_idx) {
                Some((prev, _)) if prev.confidence >= finding.confidence => {}
                _ => {
                    best.insert(suspect_idx, (finding, k));
                }
            }
        }
        let mut findings: Vec<ColumnFinding> = Vec::with_capacity(best.len());
        for (finding, k) in best.into_values() {
            stats.findings_per_language[k] += 1;
            findings.push(finding);
        }
        findings.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then_with(|| a.score.total_cmp(&b.score))
                .then_with(|| a.suspect.cmp(&b.suspect))
        });
        stats.score_nanos = score_start.elapsed().as_nanos() as u64;
        (findings, stats)
    }
}

/// A finding located within a table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableFinding {
    /// Zero-based column index.
    pub column_index: usize,
    /// The column's header, when present.
    pub column_header: Option<String>,
    /// The column-level finding.
    pub finding: ColumnFinding,
}

#[cfg(test)]
pub(crate) mod testkit {
    use super::*;
    use adt_corpus::{Column, Corpus, SourceTag};
    use adt_patterns::Language;
    use adt_stats::StatsConfig;

    /// Builds a tiny model by hand: crude language over a corpus where ISO
    /// dates never mix with slash dates but ints mix with comma-ints.
    pub(crate) fn tiny_model() -> AutoDetect {
        let mut cols = Vec::new();
        for i in 0..40 {
            cols.push(Column::new(
                vec![
                    format!("{}", 1900 + i),
                    format!("{},000", i + 1),
                    format!("{}", i * 7),
                ],
                SourceTag::Web,
            ));
            cols.push(Column::new(
                vec![
                    format!("20{:02}-01-01", i % 30),
                    format!("20{:02}-02-02", (i + 1) % 30),
                ],
                SourceTag::Web,
            ));
            cols.push(Column::new(
                vec![
                    format!("20{:02}/01/01", i % 30),
                    format!("20{:02}/02/02", (i + 1) % 30),
                ],
                SourceTag::Web,
            ));
        }
        let corpus = Corpus::from_columns(cols);
        let stats = LanguageStats::build(
            adt_patterns::crude::crude_language(),
            &corpus,
            &StatsConfig::default(),
        );
        let calibration = Calibration {
            theta: Some(-0.4),
            precision_at_theta: 1.0,
            covered_negatives: vec![],
            covered_positives: 0,
            curve: vec![(-1.0, 0.99), (-0.4, 0.9), (0.0, 0.5), (1.0, 0.01)],
        };
        // A second language that only looks at symbols (L1): catches
        // separator mixes but is blind to letter/digit swaps.
        let stats_l1 = {
            let mut cols2 = Vec::new();
            for i in 0..40 {
                cols2.push(Column::new(
                    vec![format!("{}-{:02}", 2000 + i, i % 12 + 1)],
                    SourceTag::Web,
                ));
            }
            let c2 = Corpus::from_columns(cols2);
            LanguageStats::build(Language::paper_l1(), &c2, &StatsConfig::default())
        };
        let cal_l1 = Calibration {
            theta: Some(-0.5),
            precision_at_theta: 0.97,
            covered_negatives: vec![],
            covered_positives: 0,
            curve: vec![(-1.0, 0.97), (-0.5, 0.8), (1.0, 0.0)],
        };
        AutoDetect {
            languages: vec![
                SelectedLanguage { stats, calibration },
                SelectedLanguage {
                    stats: stats_l1,
                    calibration: cal_l1,
                },
            ],
            npmi: NpmiParams { smoothing: 0.1 },
            precision_target: 0.9,
            max_distinct_values: 50,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testkit::tiny_model;
    use super::*;
    use adt_corpus::{Column, SourceTag};

    #[test]
    fn flags_mixed_date_formats() {
        let m = tiny_model();
        let verdict = m.score_pair("2011-01-01", "2011/02/02");
        assert!(verdict.incompatible);
        assert!(verdict.confidence > 0.5);
    }

    #[test]
    fn accepts_compatible_numbers() {
        let m = tiny_model();
        let verdict = m.score_pair("42", "7,000");
        assert!(!verdict.incompatible, "scores: {:?}", verdict.scores);
    }

    #[test]
    fn detect_column_finds_the_intruder() {
        let m = tiny_model();
        let col = Column::from_strs(
            &["2011-01-01", "2012-02-02", "2013-03-03", "2014/04/04"],
            SourceTag::Wiki,
        );
        let findings = m.detect_column(&col);
        assert!(!findings.is_empty());
        assert_eq!(findings[0].suspect, "2014/04/04");
        assert_ne!(findings[0].witness, "2014/04/04");
    }

    #[test]
    fn clean_column_yields_nothing() {
        let m = tiny_model();
        let col = Column::from_strs(&["2011-01-01", "2012-02-02", "2013-03-03"], SourceTag::Wiki);
        assert!(m.detect_column(&col).is_empty());
    }

    #[test]
    fn single_distinct_value_column_is_clean() {
        let m = tiny_model();
        let col = Column::from_strs(&["7", "7", "7"], SourceTag::Wiki);
        assert!(m.detect_column(&col).is_empty());
    }

    #[test]
    fn suspect_is_the_minority_value() {
        let m = tiny_model();
        let col = Column::from_strs(
            &[
                "2011-01-01",
                "2011-01-01",
                "2012-02-02",
                "2013-03-03",
                "2014/04/04",
            ],
            SourceTag::Wiki,
        );
        let findings = m.detect_column(&col);
        assert_eq!(findings[0].suspect, "2014/04/04");
    }

    #[test]
    fn most_incompatible_returns_top_finding() {
        let m = tiny_model();
        let col = Column::from_strs(&["2011-01-01", "2012-02-02", "2014/04/04"], SourceTag::Wiki);
        let top = m.most_incompatible(&col).unwrap();
        let all = m.detect_column(&col);
        assert_eq!(top.suspect, all[0].suspect);
        assert_eq!(top.confidence, all[0].confidence);
    }

    #[test]
    fn size_accounts_all_languages() {
        let m = tiny_model();
        let total = m.size_bytes();
        let sum: usize = m.languages.iter().map(|l| l.stats.size_bytes()).sum();
        assert_eq!(total, sum);
        assert!(total > 0);
        assert_eq!(m.num_languages(), 2);
    }

    #[test]
    fn detect_table_ranks_across_columns() {
        let m = tiny_model();
        let table = adt_corpus::Table::new(vec![
            Column::from_strs(
                &["2011-01-01", "2012-02-02", "2014/04/04"],
                SourceTag::Local,
            ),
            Column::from_strs(&["1", "2", "3"], SourceTag::Local),
        ]);
        let findings = m.detect_table(&table);
        assert!(!findings.is_empty());
        assert_eq!(findings[0].column_index, 0);
        assert_eq!(findings[0].finding.suspect, "2014/04/04");
        // The clean numeric column contributes nothing.
        assert!(findings.iter().all(|f| f.column_index == 0));
    }

    #[test]
    fn scan_column_counts_match_and_cache_reuse_is_transparent() {
        let m = tiny_model();
        let col = Column::from_strs(&["2011-01-01", "2012-02-02", "2014/04/04"], SourceTag::Wiki);
        let mut cache = PatternCache::new();
        let (findings, stats) = m.scan_column(&col, Aggregator::AutoDetect, &mut cache);
        assert_eq!(stats.values_scored, 3);
        assert_eq!(stats.pairs_scored, 3); // C(3, 2)
        assert_eq!(stats.pairs_pruned, 0);
        assert!(stats.pairs_flagged >= 1);
        assert_eq!(
            stats.findings_per_language.iter().sum::<u64>(),
            findings.len() as u64
        );
        assert_eq!(cache.len(), 3);
        // A warm cache must not change the findings, and detect_column
        // (fresh cache each call) must agree.
        let (again, warm) = m.scan_column(&col, Aggregator::AutoDetect, &mut cache);
        assert_eq!(format!("{again:?}"), format!("{findings:?}"));
        assert_eq!(
            format!("{:?}", m.detect_column(&col)),
            format!("{findings:?}")
        );
        // Second scan of the same column answers every probe from the
        // per-worker memo.
        assert_eq!(warm.npmi_probes, 0);
        assert_eq!(warm.npmi_memo_hits, stats.npmi_probes);
    }

    #[test]
    fn group_kernel_probes_at_most_pairwise() {
        let m = tiny_model();
        // Ten distinct 4-digit years: one pattern group per language, so
        // the kernel needs zero probes where the naive path needs
        // K·C(10,2).
        let values: Vec<String> = (0..10).map(|i| format!("{}", 1990 + i)).collect();
        let col = Column::new(values, SourceTag::Wiki);
        let mut cache = PatternCache::new();
        let (_, stats) = m.scan_column(&col, Aggregator::AutoDetect, &mut cache);
        assert_eq!(stats.pairs_scored, 45);
        assert_eq!(stats.npmi_probes, 0);
        assert_eq!(stats.groups_per_language, vec![1, 1]);
    }

    #[test]
    fn scan_counts_pruned_pairs_beyond_distinct_cap() {
        let mut m = tiny_model();
        m.max_distinct_values = 3;
        let values: Vec<String> = (0..10).map(|i| format!("w{i}")).collect();
        let col = Column::new(values, SourceTag::Wiki);
        let mut cache = PatternCache::new();
        let (_, stats) = m.scan_column(&col, Aggregator::AutoDetect, &mut cache);
        assert_eq!(stats.values_scored, 3);
        assert_eq!(stats.pairs_scored, 3);
        assert_eq!(stats.pairs_pruned, 45 - 3); // C(10, 2) − C(3, 2)
        assert_eq!(cache.len(), 3); // capped-out values never generalized
    }

    #[test]
    fn scan_stats_merge_sums_counters() {
        let mut a = ScanStats {
            values_scored: 2,
            pairs_scored: 1,
            pairs_flagged: 1,
            pairs_pruned: 0,
            npmi_probes: 4,
            npmi_memo_hits: 1,
            groups_per_language: vec![2, 1],
            findings_per_language: vec![1, 0],
            hash_nanos: 10,
            score_nanos: 20,
            detectors: vec![DetectorLane {
                name: "Auto-Detect".into(),
                wall_nanos: 7,
                predictions: 2,
                columns: 1,
            }],
            kernel_choices: KernelChoices {
                group: 1,
                direct: 0,
            },
        };
        let b = ScanStats {
            values_scored: 3,
            pairs_scored: 3,
            pairs_flagged: 0,
            pairs_pruned: 2,
            npmi_probes: 2,
            npmi_memo_hits: 3,
            groups_per_language: vec![1, 3],
            findings_per_language: vec![0, 2],
            hash_nanos: 5,
            score_nanos: 5,
            detectors: vec![
                DetectorLane {
                    name: "Auto-Detect".into(),
                    wall_nanos: 3,
                    predictions: 1,
                    columns: 2,
                },
                DetectorLane {
                    name: "F-Regex".into(),
                    wall_nanos: 9,
                    predictions: 4,
                    columns: 2,
                },
            ],
            kernel_choices: KernelChoices {
                group: 2,
                direct: 3,
            },
        };
        a.merge(&b);
        assert_eq!(a.values_scored, 5);
        assert_eq!(a.pairs_scored, 4);
        assert_eq!(a.pairs_flagged, 1);
        assert_eq!(a.pairs_pruned, 2);
        assert_eq!(a.npmi_probes, 6);
        assert_eq!(a.npmi_memo_hits, 4);
        assert_eq!(a.groups_per_language, vec![3, 4]);
        assert_eq!(a.findings_per_language, vec![1, 2]);
        assert_eq!(a.hash_nanos, 15);
        assert_eq!(a.score_nanos, 25);
        assert_eq!(
            a.kernel_choices,
            KernelChoices {
                group: 3,
                direct: 3
            }
        );
        // Lanes merge by name: Auto-Detect sums, F-Regex is adopted.
        assert_eq!(a.detectors.len(), 2);
        assert_eq!(a.detectors[0].name, "Auto-Detect");
        assert_eq!(a.detectors[0].wall_nanos, 10);
        assert_eq!(a.detectors[0].predictions, 3);
        assert_eq!(a.detectors[0].columns, 3);
        assert_eq!(a.detectors[1].name, "F-Regex");
        assert_eq!(a.detectors[1].predictions, 4);
    }

    #[test]
    fn distinct_cap_respected() {
        let mut m = tiny_model();
        m.max_distinct_values = 3;
        let values: Vec<String> = (0..50).map(|i| format!("w{i}")).collect();
        let col = Column::new(values, SourceTag::Wiki);
        // Must not panic and must consider at most 3 distinct values.
        let findings = m.detect_column(&col);
        assert!(findings.len() <= 3);
    }

    #[test]
    fn pattern_cache_value_map_stays_under_capacity() {
        let m = tiny_model();
        let mut cache = PatternCache::with_capacity(8, 16);
        // Feed far more distinct values than the cap, across many scans,
        // as a long-lived serve worker would see.
        for batch in 0..40 {
            let values: Vec<String> = (0..10).map(|i| format!("v{batch}x{i}")).collect();
            let col = Column::new(values, SourceTag::Wiki);
            let _ = m.scan_column(&col, Aggregator::AutoDetect, &mut cache);
            assert!(
                cache.len() <= cache.value_capacity(),
                "cache grew to {} (cap {})",
                cache.len(),
                cache.value_capacity()
            );
        }
        assert!(cache.value_flushes() > 0);
    }

    #[test]
    fn pattern_cache_resets_when_handed_a_different_model() {
        let m1 = tiny_model();
        let mut m2 = tiny_model();
        m2.npmi.smoothing = 0.9; // same languages, different scoring
        assert_ne!(m1.fingerprint(), m2.fingerprint());

        let col = Column::from_strs(&["2011-01-01", "2012-02-02", "2014/04/04"], SourceTag::Wiki);
        let mut shared = PatternCache::new();
        let (f1, _) = m1.scan_column(&col, Aggregator::AutoDetect, &mut shared);
        assert_eq!(shared.fingerprint(), Some(m1.fingerprint()));
        assert_eq!(shared.rebinds(), 0);

        // Handing the cache to a different model must reset it (stale
        // hashes/scores never leak) and still produce the findings a
        // fresh cache would.
        let (f2_shared, s2) = m2.scan_column(&col, Aggregator::AutoDetect, &mut shared);
        assert_eq!(shared.rebinds(), 1);
        assert_eq!(shared.fingerprint(), Some(m2.fingerprint()));
        assert_eq!(s2.npmi_memo_hits, 0); // memos were rebuilt, not reused
        let (f2_fresh, _) = m2.scan_column(&col, Aggregator::AutoDetect, &mut PatternCache::new());
        assert_eq!(format!("{f2_shared:?}"), format!("{f2_fresh:?}"));
        // And back: the cache rebinds again rather than mixing models.
        let (f1_again, _) = m1.scan_column(&col, Aggregator::AutoDetect, &mut shared);
        assert_eq!(shared.rebinds(), 2);
        assert_eq!(format!("{f1_again:?}"), format!("{f1:?}"));
    }
}
