//! Dynamic-threshold (DT) aggregation — the Definition 4 formulation.
//!
//! DT aggregation jointly chooses the language subset *and* a separate
//! threshold per language so that the pooled union meets the precision
//! target; the paper proves this NP-hard and inapproximable (Theorem 1)
//! and adopts ST aggregation instead. This module implements a greedy +
//! coordinate-ascent heuristic for DT, used by the DESIGN.md §5 ablation
//! to quantify how much the tractable ST formulation gives up.

use crate::training::{Label, TrainingSet};
use serde::{Deserialize, Serialize};

/// Input to the DT optimizer: per-language score vectors over `T`.
#[derive(Debug, Clone)]
pub struct DtProblem {
    /// Ground-truth labels of the training examples.
    pub labels: Vec<Label>,
    /// `scores[k][i]` = `s_k(t_i)`.
    pub scores: Vec<Vec<f64>>,
    /// `size(L_k)` in bytes.
    pub sizes: Vec<usize>,
}

impl DtProblem {
    /// Builds the problem from a training set and per-language scores.
    pub fn new(training: &TrainingSet, scores: Vec<Vec<f64>>, sizes: Vec<usize>) -> Self {
        let labels = training.examples.iter().map(|e| e.label).collect();
        DtProblem {
            labels,
            scores,
            sizes,
        }
    }

    fn n_examples(&self) -> usize {
        self.labels.len()
    }
}

/// A DT solution: selected languages with per-language thresholds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DtSolution {
    /// Selected language indices.
    pub selected: Vec<usize>,
    /// Thresholds aligned with `selected`.
    pub thetas: Vec<f64>,
    /// Covered incompatible examples of the pooled union.
    pub coverage: usize,
    /// Pooled precision of the union.
    pub precision: f64,
    /// Total size in bytes.
    pub total_bytes: usize,
}

/// Pooled union coverage and precision for `(language, theta)` pairs.
fn pooled_stats(problem: &DtProblem, picks: &[(usize, f64)]) -> (usize, f64) {
    let n = problem.n_examples();
    let mut flagged = vec![false; n];
    for &(k, theta) in picks {
        for (i, &s) in problem.scores[k].iter().enumerate() {
            if s <= theta {
                flagged[i] = true;
            }
        }
    }
    let mut neg = 0usize;
    let mut total = 0usize;
    for (i, &f) in flagged.iter().enumerate() {
        if f {
            total += 1;
            if problem.labels[i] == Label::Incompatible {
                neg += 1;
            }
        }
    }
    let precision = if total == 0 {
        1.0
    } else {
        neg as f64 / total as f64
    };
    (neg, precision)
}

/// Candidate thresholds for language `k`: its distinct negative scores.
fn candidate_thetas(problem: &DtProblem, k: usize) -> Vec<f64> {
    let mut ts: Vec<f64> = problem.scores[k]
        .iter()
        .copied()
        .filter(|&s| s < 0.0)
        .collect();
    ts.sort_by(f64::total_cmp);
    ts.dedup();
    ts
}

/// Greedy + coordinate-ascent heuristic for Definition 4.
///
/// 1. Greedily add the `(language, θ)` pair with the best marginal
///    coverage per byte whose addition keeps pooled precision ≥ `P`,
///    until no addition fits the budget or helps.
/// 2. Coordinate ascent: re-optimize each selected language's threshold
///    in turn (maximizing pooled coverage subject to pooled precision ≥
///    `P`) until a fixed point or `max_rounds`.
pub fn dt_optimize(
    problem: &DtProblem,
    precision_target: f64,
    budget: usize,
    max_rounds: usize,
) -> DtSolution {
    let m = problem.scores.len();
    let mut picks: Vec<(usize, f64)> = Vec::new();
    let mut used = 0usize;

    // Phase 1: greedy insertion.
    loop {
        let (base_cov, _) = pooled_stats(problem, &picks);
        let mut best: Option<(usize, f64, f64)> = None; // (k, theta, rate)
        for k in 0..m {
            if picks.iter().any(|&(s, _)| s == k) || used + problem.sizes[k] > budget {
                continue;
            }
            for theta in candidate_thetas(problem, k) {
                let mut trial = picks.clone();
                trial.push((k, theta));
                let (cov, prec) = pooled_stats(problem, &trial);
                if prec < precision_target || cov <= base_cov {
                    continue;
                }
                let rate = (cov - base_cov) as f64 / problem.sizes[k].max(1) as f64;
                let better = match best {
                    Some((_, _, r)) => rate > r,
                    None => true,
                };
                if better {
                    best = Some((k, theta, rate));
                }
            }
        }
        match best {
            Some((k, theta, _)) => {
                used += problem.sizes[k];
                picks.push((k, theta));
            }
            None => break,
        }
    }

    // Phase 2: coordinate ascent on thresholds.
    for _ in 0..max_rounds {
        let mut improved = false;
        for idx in 0..picks.len() {
            let k = picks[idx].0;
            let (cur_cov, _) = pooled_stats(problem, &picks);
            let mut best_theta = picks[idx].1;
            let mut best_cov = cur_cov;
            for theta in candidate_thetas(problem, k) {
                let mut trial = picks.clone();
                trial[idx].1 = theta;
                let (cov, prec) = pooled_stats(problem, &trial);
                if prec >= precision_target && cov > best_cov {
                    best_cov = cov;
                    best_theta = theta;
                }
            }
            if best_theta != picks[idx].1 {
                picks[idx].1 = best_theta;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let (coverage, precision) = pooled_stats(problem, &picks);
    DtSolution {
        selected: picks.iter().map(|&(k, _)| k).collect(),
        thetas: picks.iter().map(|&(_, t)| t).collect(),
        coverage,
        precision,
        total_bytes: used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Example;

    fn training(labels: &[Label]) -> TrainingSet {
        TrainingSet {
            examples: labels
                .iter()
                .enumerate()
                .map(|(i, &label)| Example {
                    u: format!("u{i}"),
                    v: format!("v{i}"),
                    label,
                })
                .collect(),
        }
    }

    use Label::{Compatible as P, Incompatible as N};

    #[test]
    fn single_language_recovers_clean_threshold() {
        // Negatives score low, positives high: DT should pick theta at
        // the most permissive negative score.
        let set = training(&[N, N, N, P, P]);
        let scores = vec![vec![-0.9, -0.8, -0.4, 0.3, 0.6]];
        let problem = DtProblem::new(&set, scores, vec![100]);
        let sol = dt_optimize(&problem, 0.95, 1000, 4);
        assert_eq!(sol.selected, vec![0]);
        assert_eq!(sol.coverage, 3);
        assert_eq!(sol.precision, 1.0);
        assert_eq!(sol.thetas, vec![-0.4]);
    }

    #[test]
    fn pooled_precision_allows_local_imprecision() {
        // Language 0 alone at theta -0.4 admits one positive (precision
        // 2/3 < 0.75). But pooled with language 1 (covers two more
        // negatives cleanly), the union is 4 neg / 5 flagged = 0.8 >= 0.75
        // — DT's advantage over ST, which would clamp language 0.
        let set = training(&[N, N, P, N, N, P]);
        let scores = vec![
            vec![-0.9, -0.8, -0.4, 0.5, 0.5, 0.5],
            vec![0.5, 0.5, 0.5, -0.9, -0.7, 0.4],
        ];
        let problem = DtProblem::new(&set, scores, vec![10, 10]);
        let sol = dt_optimize(&problem, 0.75, 1000, 4);
        assert_eq!(sol.coverage, 4);
        assert!(sol.precision >= 0.75);
        assert_eq!(sol.selected.len(), 2);
    }

    #[test]
    fn budget_limits_selection() {
        let set = training(&[N, N]);
        let scores = vec![vec![-0.9, 0.5], vec![0.5, -0.9]];
        let problem = DtProblem::new(&set, scores, vec![100, 100]);
        let sol = dt_optimize(&problem, 0.9, 150, 4);
        assert_eq!(sol.selected.len(), 1);
        assert_eq!(sol.coverage, 1);
        assert!(sol.total_bytes <= 150);
    }

    #[test]
    fn precision_target_respected() {
        // Any threshold on this language admits a positive first.
        let set = training(&[P, N]);
        let scores = vec![vec![-0.9, -0.5]];
        let problem = DtProblem::new(&set, scores, vec![10]);
        let sol = dt_optimize(&problem, 0.95, 1000, 4);
        assert_eq!(sol.coverage, 0);
        assert!(sol.selected.is_empty());
    }

    #[test]
    fn dt_at_least_matches_st_on_shared_instances() {
        // Compare against ST: calibrate each language separately, then
        // union. DT must never cover fewer negatives.
        let labels = [N, P, N, N, P, N, P, N, N, P];
        let set = training(&labels);
        let scores = vec![
            vec![-0.9, -0.85, -0.8, -0.5, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
            vec![0.5, 0.4, 0.3, 0.2, -0.1, -0.5, -0.6, -0.7, -0.8, 0.9],
        ];
        let problem = DtProblem::new(&set, scores.clone(), vec![10, 10]);
        let dt = dt_optimize(&problem, 0.7, 1000, 6);

        let st_union: usize = {
            let mut flagged = vec![false; labels.len()];
            for s in &scores {
                let cal = crate::calibrate::calibrate_language(&set, s, 0.7, 64);
                if let Some(t) = cal.theta {
                    for (i, &x) in s.iter().enumerate() {
                        if x <= t {
                            flagged[i] = true;
                        }
                    }
                }
            }
            flagged
                .iter()
                .zip(&labels)
                .filter(|(&f, &l)| f && l == N)
                .count()
        };
        assert!(
            dt.coverage >= st_union,
            "DT {} below ST union {}",
            dt.coverage,
            st_union
        );
        assert!(dt.precision >= 0.7);
    }
}
