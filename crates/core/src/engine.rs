//! The parallel scan engine.
//!
//! [`ScanEngine`] is the production scan surface: it holds a shared
//! trained model (`Arc<AutoDetect>`) and fans the columns of a table,
//! corpus, or streamed CSV over a pool of scoped worker threads. Workers
//! pull column indices from an atomic queue (the same shape as
//! `adt_stats::build_stats_for_languages`), each keeping a private
//! [`PatternCache`] so every distinct value is generalized once under all
//! languages and reused across the columns that worker scans.
//!
//! **Determinism.** Per-column detection is a pure function of the
//! column's contents — caches only memoize, results are collected into
//! per-index slots, and cross-column ranking uses total orders — so a
//! scan produces byte-identical findings at any thread count, including
//! the streamed-CSV path versus the materialized one.
//!
//! **Bounded memory.** [`ScanEngine::scan_csv`] never materializes the
//! file: it streams records and keeps only per-column distinct-value
//! counts (detection consumes nothing else), so memory scales with the
//! number of distinct values, not rows.

use crate::aggregate::Aggregator;
use crate::detector::{AutoDetect, ColumnFinding, PatternCache, ScanStats, TableFinding};
use crate::error::AdtError;
use adt_corpus::{Column, Corpus, CsvRecords, Table};
use adt_stats::FxHashMap;
use parking_lot::Mutex;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resolves a configured thread count: `0` means all available cores.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Applies `f` to every item of `items` across `threads` scoped worker
/// threads (0 = all cores), preserving input order in the result.
///
/// Workers pull indices from an atomic queue, so uneven per-item cost
/// balances automatically. A worker panic surfaces as
/// [`AdtError::Worker`] carrying `section`.
pub fn parallel_map<T, R, F>(
    items: &[T],
    threads: usize,
    section: &'static str,
    f: F,
) -> Result<Vec<R>, AdtError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, threads, section, || (), |_, i, t| f(i, t))
}

/// Like [`parallel_map`], with per-worker mutable state: each worker
/// calls `init` once and threads the state through its items (the engine
/// passes a [`PatternCache`] here). Results must not depend on the state
/// for the output to stay deterministic across thread counts.
pub fn parallel_map_with<T, R, S, Init, F>(
    items: &[T],
    threads: usize,
    section: &'static str,
    init: Init,
    f: F,
) -> Result<Vec<R>, AdtError>
where
    T: Sync,
    R: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len()).max(1);
    if threads == 1 {
        let mut state = init();
        return Ok(items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect());
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&mut state, i, &items[i]);
                    *slots[i].lock() = Some(r);
                }
            });
        }
    })
    .map_err(|_| AdtError::Worker(section))?;
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        out.push(slot.into_inner().ok_or(AdtError::Worker(section))?);
    }
    Ok(out)
}

/// A shared pool of [`PatternCache`]s checked out by scan workers and
/// returned when a parallel section ends.
///
/// Without a pool every engine run starts its workers cold: values are
/// re-generalized and pattern-pair NPMI scores re-probed. A long-lived
/// owner — the serve batcher holds one across dispatches — passes the
/// pool via [`ScanEngine::with_cache_pool`] so each worker resumes some
/// earlier worker's cache, amortizing both layers across runs. Caches
/// are model-stamped (see [`PatternCache`]), so pooling across model
/// swaps is safe: a mismatched cache resets itself.
#[derive(Debug, Default)]
pub struct CachePool {
    caches: Mutex<Vec<PatternCache>>,
}

impl CachePool {
    /// An empty shareable pool.
    pub fn new() -> Arc<CachePool> {
        Arc::new(CachePool::default())
    }

    /// Takes a cache out of the pool, or starts a fresh one.
    fn checkout(&self) -> PatternCache {
        self.caches.lock().pop().unwrap_or_default()
    }

    /// Returns a cache for future workers.
    fn restore(&self, cache: PatternCache) {
        self.caches.lock().push(cache);
    }

    /// Number of caches currently checked in.
    pub fn size(&self) -> usize {
        self.caches.lock().len()
    }

    /// Lifetime NPMI memo hits summed over checked-in caches.
    pub fn memo_hits(&self) -> u64 {
        self.caches.lock().iter().map(|c| c.memo_hits()).sum()
    }

    /// Lifetime NPMI memo misses summed over checked-in caches.
    pub fn memo_misses(&self) -> u64 {
        self.caches.lock().iter().map(|c| c.memo_misses()).sum()
    }
}

/// Worker-thread cache state: pooled when the engine has a [`CachePool`]
/// (checked out at worker start, restored on drop), private otherwise.
struct WorkerCache {
    cache: Option<PatternCache>,
    pool: Option<Arc<CachePool>>,
}

impl WorkerCache {
    fn new(pool: Option<Arc<CachePool>>) -> Self {
        let cache = match &pool {
            Some(p) => p.checkout(),
            None => PatternCache::new(),
        };
        WorkerCache {
            cache: Some(cache),
            pool,
        }
    }

    fn cache_mut(&mut self) -> &mut PatternCache {
        // adt-allow(panic-safety): the Option is only emptied by Drop; a None here is an impossible state worth a loud failure
        self.cache.as_mut().expect("cache present until drop")
    }
}

impl Drop for WorkerCache {
    fn drop(&mut self) {
        if let (Some(pool), Some(cache)) = (&self.pool, self.cache.take()) {
            pool.restore(cache);
        }
    }
}

/// Per-column outcome in input order, for surfaces that report column by
/// column (the CLI prints one line per column from these).
#[derive(Debug, Clone)]
pub struct ColumnSummary {
    /// Zero-based column index.
    pub index: usize,
    /// The column's header, when present.
    pub header: Option<String>,
    /// Distinct values actually scored for this column.
    pub values_scored: u64,
    /// Number of findings in this column.
    pub num_findings: usize,
}

/// Everything a scan produced: ranked findings, per-column outcomes, and
/// the merged counters/timings of every worker.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Findings ranked across the whole input (confidence descending,
    /// then column index, then suspect).
    pub findings: Vec<TableFinding>,
    /// Per-column outcomes in input order.
    pub columns: Vec<ColumnSummary>,
    /// Counters and per-stage CPU timings merged across workers.
    pub stats: ScanStats,
    /// Worker threads the scan ran with.
    pub threads: usize,
    /// Wall time spent ingesting the input (zero for in-memory scans).
    pub read_wall: Duration,
    /// Wall time of the parallel scan section.
    pub scan_wall: Duration,
    /// End-to-end wall time.
    pub wall: Duration,
}

impl ScanReport {
    /// Scan throughput in columns per second (over the scan section).
    pub fn columns_per_sec(&self) -> f64 {
        self.columns.len() as f64 / self.scan_wall.as_secs_f64().max(1e-9)
    }

    /// One human-readable line summarizing the scan.
    pub fn summary(&self) -> String {
        format!(
            "scanned {} columns in {:.1} ms on {} thread{} ({:.0} cols/s): \
             {} findings; {} values scored, {} pairs scored, {} flagged, {} pruned; \
             {} npmi probes ({} memoized); kernels: {} group / {} direct",
            self.columns.len(),
            self.wall.as_secs_f64() * 1e3,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.columns_per_sec(),
            self.findings.len(),
            self.stats.values_scored,
            self.stats.pairs_scored,
            self.stats.pairs_flagged,
            self.stats.pairs_pruned,
            self.stats.npmi_probes,
            self.stats.npmi_memo_hits,
            self.stats.kernel_choices.group,
            self.stats.kernel_choices.direct,
        )
    }
}

/// The parallel scan engine: a shared trained model plus scan policy
/// (thread count, aggregator).
///
/// ```no_run
/// use std::sync::Arc;
/// use adt_core::{load_model, ScanEngine};
///
/// let model = Arc::new(load_model("model.bin")?);
/// let report = ScanEngine::new(model)
///     .with_threads(8)
///     .scan_csv_path("big.csv", ',', true)?;
/// for f in &report.findings {
///     println!("{}: {}", f.column_index, f.finding.suspect);
/// }
/// # Ok::<(), adt_core::AdtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScanEngine {
    model: Arc<AutoDetect>,
    threads: usize,
    aggregator: Aggregator,
    cache_pool: Option<Arc<CachePool>>,
}

impl ScanEngine {
    /// An engine over a shared model, scanning with all available cores
    /// and the paper's native ST aggregation.
    pub fn new(model: Arc<AutoDetect>) -> Self {
        ScanEngine {
            model,
            threads: 0,
            aggregator: Aggregator::AutoDetect,
            cache_pool: None,
        }
    }

    /// Convenience constructor taking ownership of a model.
    pub fn from_model(model: AutoDetect) -> Self {
        ScanEngine::new(Arc::new(model))
    }

    /// Sets the worker thread count; `0` means all available cores.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the pair aggregator (Figure 8(b) variants).
    pub fn with_aggregator(mut self, aggregator: Aggregator) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Draws worker caches from `pool` instead of starting cold, so
    /// generalization work and memoized NPMI scores persist across
    /// engine runs that share the pool. Findings are unaffected.
    pub fn with_cache_pool(mut self, pool: Arc<CachePool>) -> Self {
        self.cache_pool = Some(pool);
        self
    }

    /// The underlying model.
    pub fn model(&self) -> &AutoDetect {
        &self.model
    }

    /// Scans a set of columns in parallel.
    pub fn scan_columns(&self, columns: &[Column]) -> Result<ScanReport, AdtError> {
        // adt-allow(determinism): wall-clock feeds ScanStats timing fields only, never detection results
        let start = Instant::now();
        let model = &*self.model;
        let aggregator = self.aggregator;
        // adt-allow(determinism): wall-clock feeds ScanStats timing fields only, never detection results
        let scan_start = Instant::now();
        let results = parallel_map_with(
            columns,
            self.threads,
            "scan_columns",
            || WorkerCache::new(self.cache_pool.clone()),
            |worker, _, col| model.scan_column(col, aggregator, worker.cache_mut()),
        )?;
        let scan_wall = scan_start.elapsed();
        let headers = columns.iter().map(|c| c.header.clone()).collect();
        Ok(self.assemble(headers, results, Duration::ZERO, scan_wall, start.elapsed()))
    }

    /// Scans every column of a table.
    pub fn scan_table(&self, table: &Table) -> Result<ScanReport, AdtError> {
        self.scan_columns(&table.columns)
    }

    /// Scans every column of a corpus.
    pub fn scan_corpus(&self, corpus: &Corpus) -> Result<ScanReport, AdtError> {
        self.scan_columns(corpus.columns())
    }

    /// Streams a CSV and scans its columns without materializing the
    /// file: the ingest pass keeps only per-column distinct-value counts
    /// (all detection ever consumes), so memory is bounded by distinct
    /// values, not rows. Findings are byte-identical to loading the same
    /// CSV into memory and calling [`ScanEngine::scan_columns`].
    pub fn scan_csv<R: io::BufRead>(
        &self,
        reader: R,
        delim: char,
        has_header: bool,
    ) -> Result<ScanReport, AdtError> {
        // adt-allow(determinism): wall-clock feeds ScanStats timing fields only, never detection results
        let start = Instant::now();
        // adt-allow(determinism): wall-clock feeds ScanStats timing fields only, never detection results
        let read_start = Instant::now();
        let mut records = CsvRecords::new(reader, delim);
        let mut headers: Option<Vec<String>> = None;
        if has_header {
            match records.next() {
                Some(Ok(h)) => headers = Some(h),
                Some(Err(e)) => return Err(AdtError::Csv(e.to_string())),
                None => {}
            }
        }
        // Columns appear lazily as wider data rows arrive — the same
        // width rule as the in-memory loader (max over data rows), where
        // short rows pad with empty values that detection ignores.
        let mut counts: Vec<FxHashMap<String, usize>> = Vec::new();
        for record in records {
            let record = record.map_err(|e| AdtError::Csv(e.to_string()))?;
            if record.len() > counts.len() {
                counts.resize_with(record.len(), FxHashMap::default);
            }
            for (i, value) in record.into_iter().enumerate() {
                if !value.is_empty() {
                    *counts[i].entry(value).or_insert(0) += 1;
                }
            }
        }
        let read_wall = read_start.elapsed();
        let inputs: Vec<Vec<(String, usize)>> = counts
            .into_iter()
            .map(|m| m.into_iter().collect())
            .collect();
        let model = &*self.model;
        let aggregator = self.aggregator;
        // adt-allow(determinism): wall-clock feeds ScanStats timing fields only, never detection results
        let scan_start = Instant::now();
        let results = parallel_map_with(
            &inputs,
            self.threads,
            "scan_csv",
            || WorkerCache::new(self.cache_pool.clone()),
            |worker, _, column_counts| {
                model.scan_value_counts(column_counts, aggregator, worker.cache_mut())
            },
        )?;
        let scan_wall = scan_start.elapsed();
        let headers_by_index = (0..inputs.len())
            .map(|i| headers.as_ref().and_then(|h| h.get(i).cloned()))
            .collect();
        Ok(self.assemble(
            headers_by_index,
            results,
            read_wall,
            scan_wall,
            start.elapsed(),
        ))
    }

    /// Streams a CSV file from disk (see [`ScanEngine::scan_csv`]).
    pub fn scan_csv_path<P: AsRef<Path>>(
        &self,
        path: P,
        delim: char,
        has_header: bool,
    ) -> Result<ScanReport, AdtError> {
        let file = std::fs::File::open(path)?;
        self.scan_csv(io::BufReader::new(file), delim, has_header)
    }

    fn assemble(
        &self,
        headers: Vec<Option<String>>,
        results: Vec<(Vec<ColumnFinding>, ScanStats)>,
        read_wall: Duration,
        scan_wall: Duration,
        wall: Duration,
    ) -> ScanReport {
        let mut stats = ScanStats::for_languages(self.model.num_languages());
        let mut findings = Vec::new();
        let mut columns = Vec::with_capacity(results.len());
        for (index, ((column_findings, column_stats), header)) in
            results.into_iter().zip(headers).enumerate()
        {
            stats.merge(&column_stats);
            columns.push(ColumnSummary {
                index,
                header: header.clone(),
                values_scored: column_stats.values_scored,
                num_findings: column_findings.len(),
            });
            for finding in column_findings {
                findings.push(TableFinding {
                    column_index: index,
                    column_header: header.clone(),
                    finding,
                });
            }
        }
        findings.sort_by(|a, b| {
            b.finding
                .confidence
                .total_cmp(&a.finding.confidence)
                .then_with(|| a.column_index.cmp(&b.column_index))
                .then_with(|| a.finding.suspect.cmp(&b.finding.suspect))
        });
        ScanReport {
            findings,
            columns,
            stats,
            threads: resolve_threads(self.threads),
            read_wall,
            scan_wall,
            wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testkit::tiny_model;
    use adt_corpus::SourceTag;

    fn findings_repr(findings: &[TableFinding]) -> String {
        findings
            .iter()
            .map(|f| {
                format!(
                    "{}|{}|{}|{}|{}\n",
                    f.column_index,
                    f.finding.suspect,
                    f.finding.witness,
                    f.finding.confidence,
                    f.finding.score
                )
            })
            .collect()
    }

    fn mixed_columns(n: usize) -> Vec<Column> {
        (0..n)
            .map(|i| {
                let mut c = if i % 3 == 0 {
                    Column::from_strs(
                        &["2011-01-01", "2012-02-02", "2013-03-03", "2014/04/04"],
                        SourceTag::Local,
                    )
                } else if i % 3 == 1 {
                    Column::from_strs(&["1", "2", "3,000"], SourceTag::Local)
                } else {
                    Column::from_strs(&["2011-01-01", "2012-02-02"], SourceTag::Local)
                };
                c.header = Some(format!("col{i}"));
                c
            })
            .collect()
    }

    #[test]
    fn engine_matches_serial_detect_table() {
        let model = tiny_model();
        let table = Table::new(mixed_columns(7));
        let serial = model.detect_table(&table);
        let report = ScanEngine::from_model(model)
            .with_threads(4)
            .scan_table(&table)
            .unwrap();
        assert_eq!(findings_repr(&report.findings), findings_repr(&serial));
        assert_eq!(report.columns.len(), 7);
        assert_eq!(report.columns[0].header.as_deref(), Some("col0"));
        assert!(report.stats.pairs_scored > 0);
    }

    #[test]
    fn thread_counts_agree() {
        let engine = ScanEngine::from_model(tiny_model());
        let cols = mixed_columns(13);
        let one = engine.clone().with_threads(1).scan_columns(&cols).unwrap();
        let eight = engine.with_threads(8).scan_columns(&cols).unwrap();
        assert_eq!(findings_repr(&one.findings), findings_repr(&eight.findings));
        assert_eq!(one.threads, 1);
        assert_eq!(eight.threads, 8);
        assert_eq!(one.stats.pairs_scored, eight.stats.pairs_scored);
        assert_eq!(one.stats.pairs_flagged, eight.stats.pairs_flagged);
        assert_eq!(
            one.stats.findings_per_language,
            eight.stats.findings_per_language
        );
    }

    #[test]
    fn streamed_csv_matches_in_memory_scan() {
        let engine = ScanEngine::from_model(tiny_model()).with_threads(2);
        let csv = "date,amount\n2011-01-01,1\n2012-02-02,2\n2014/04/04,3,stray\n";
        let in_memory = adt_corpus::csv::columns_from_csv_text(csv, ',', true);
        let memory_report = engine.scan_columns(&in_memory).unwrap();
        let stream_report = engine.scan_csv(io::Cursor::new(csv), ',', true).unwrap();
        assert_eq!(
            findings_repr(&stream_report.findings),
            findings_repr(&memory_report.findings)
        );
        assert_eq!(stream_report.columns.len(), memory_report.columns.len());
        assert_eq!(stream_report.columns[0].header.as_deref(), Some("date"));
        // The stray third field appeared in a data row, so it is a column
        // (headerless), same as the in-memory loader's width rule.
        assert_eq!(stream_report.columns[2].header, None);
        assert!(!stream_report.findings.is_empty());
        assert_eq!(stream_report.findings[0].finding.suspect, "2014/04/04");
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let engine = ScanEngine::from_model(tiny_model());
        let report = engine.scan_columns(&[]).unwrap();
        assert!(report.findings.is_empty());
        assert!(report.columns.is_empty());
        let report = engine.scan_csv(io::Cursor::new(""), ',', true).unwrap();
        assert!(report.columns.is_empty());
    }

    #[test]
    fn report_summary_mentions_throughput() {
        let engine = ScanEngine::from_model(tiny_model()).with_threads(2);
        let report = engine.scan_columns(&mixed_columns(4)).unwrap();
        let line = report.summary();
        assert!(line.contains("4 columns"), "{line}");
        assert!(line.contains("cols/s"), "{line}");
        assert!(line.contains("kernels:"), "{line}");
        // Every scored column picked some kernel.
        let chosen = report.stats.kernel_choices.group + report.stats.kernel_choices.direct;
        assert!(chosen > 0, "no kernel choices recorded: {line}");
        assert!(report.columns_per_sec() > 0.0);
    }

    #[test]
    fn cache_pool_amortizes_probes_across_engine_runs() {
        let pool = CachePool::new();
        let engine = ScanEngine::from_model(tiny_model())
            .with_threads(1)
            .with_cache_pool(Arc::clone(&pool));
        let cols = mixed_columns(6);
        let cold = engine.scan_columns(&cols).unwrap();
        assert_eq!(pool.size(), 1, "worker cache returned to the pool");
        assert!(cold.stats.npmi_probes > 0);
        // The second run resumes the pooled cache: every pattern pair it
        // needs was memoized by the first run, and findings are
        // unchanged.
        let warm = engine.scan_columns(&cols).unwrap();
        assert_eq!(warm.stats.npmi_probes, 0, "warm run recomputed scores");
        assert_eq!(
            warm.stats.npmi_memo_hits,
            cold.stats.npmi_probes + cold.stats.npmi_memo_hits
        );
        assert_eq!(findings_repr(&warm.findings), findings_repr(&cold.findings));
        assert_eq!(pool.size(), 1);
        assert!(pool.memo_hits() >= warm.stats.npmi_memo_hits);
        // An engine without a pool stays cold every run.
        let solo = ScanEngine::from_model(tiny_model()).with_threads(1);
        let a = solo.scan_columns(&cols).unwrap();
        let b = solo.scan_columns(&cols).unwrap();
        assert_eq!(a.stats.npmi_probes, b.stats.npmi_probes);
        assert!(b.stats.npmi_probes > 0);
    }

    #[test]
    fn parallel_map_preserves_order_and_reports_panics() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, "double", |_, &x| x * 2).unwrap();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let err = parallel_map(&items, 4, "boom", |_, &x| {
            assert!(x != 50, "planted panic");
            x
        })
        .unwrap_err();
        assert!(matches!(err, AdtError::Worker("boom")));
    }
}
