//! Online learning: incremental training over a growing corpus.
//!
//! The offline regime (§4) trains once over a frozen corpus and ships the
//! model; a serving deployment instead sees a stream of new columns and
//! wants to fold them in without paying a full rebuild. [`OnlineLearner`]
//! makes that exact: it keeps one **exact** (un-sketched) statistics
//! accumulator per candidate language plus the crude-`G` accumulator the
//! distant-supervision sampler needs, and absorbs each batch of new
//! columns through the same sharded intern-once pipeline training uses.
//!
//! Two properties of the statistics layer make absorb loss-free:
//!
//! - Exact accumulation is a keyed sum, so it is order- and
//!   partition-independent: `merge(stats(base), stats(delta))` equals
//!   `stats(base ∪ delta)` byte for byte.
//! - Sketch backends are **finalized, never accumulated**: a sketched
//!   build accumulates exactly and compresses by sorted-key replay at the
//!   end ([`LanguageStats::compress_cooccurrence`]). The learner defers
//!   that replay to [`OnlineLearner::retrain`], so sketch models inherit
//!   the same identity.
//!
//! `retrain` then re-runs the downstream phases — training-set sampling,
//! scoring, calibration, greedy selection, assembly — over the union
//! corpus, reusing the accumulators instead of re-scanning the corpus.
//! The result is byte-identical (under [`crate::model::codec`]) to
//! [`crate::model::train`] on the union at any thread count; the
//! differential tests below pin that for exact and sketch backends at
//! 1/2/4/8 threads. What absorb saves is the corpus-wide statistics
//! passes (crude build, candidate scan, selected-language rebuild) — the
//! dominant training cost once the corpus outgrows the delta.
//!
//! The trade-off is memory: the learner holds statistics for every
//! candidate language at once, where offline training calibrates and
//! drops them batch by batch. Exact accumulators suit the serve-loop
//! scale this subsystem targets (thousands of columns, coarse spaces);
//! for growth beyond that, [`adt_stats::CoocMode::Streaming`] keeps the
//! co-occurrence side bounded at O(width × depth) per language: the
//! accumulators are count-min-backed from creation at a geometry pinned
//! by [`AutoDetectConfig::online_streaming_spec`], every absorb pass
//! streams its delta into same-geometry shard sketches that merge
//! cell-wise, and the accumulators survive `retrain` unchanged (crude
//! `G` stays exact — the sampler needs true counts). Streaming trades
//! the scratch-train byte-identity for bounded memory: offline training
//! auto-sizes widths per batch, so the pinned-geometry online model is
//! its own reproducible artifact (thread- and split-invariant) rather
//! than a byte-for-byte twin of `train`.

use crate::calibrate::calibrate_language;
use crate::config::AutoDetectConfig;
use crate::detector::AutoDetect;
use crate::engine::parallel_map;
use crate::error::AdtError;
use crate::model::{
    assemble_model, pipeline_error, score_training_set, summarize_pool, CalibratedCandidate,
    TrainReport,
};
use crate::selection::greedy_select;
use crate::training::build_training_set_with_crude;
use adt_corpus::{Column, Corpus};
use adt_patterns::crude::crude_language;
use adt_patterns::Language;
use adt_stats::{
    build_stats_for_languages, CoocMode, LanguageStats, PipelineOptions, PipelineReport,
    StatsConfig,
};
use serde::{Deserialize, Serialize};

/// Cumulative counters for one learner lifetime.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Completed [`OnlineLearner::absorb_columns`] calls.
    pub absorbs: u64,
    /// Columns absorbed across all calls.
    pub columns_absorbed: u64,
    /// Completed [`OnlineLearner::retrain`] calls.
    pub retrains: u64,
    /// Pipeline counters summed over every absorb pass (the only corpus
    /// scans the learner performs).
    pub pipeline: PipelineReport,
}

/// An incremental trainer: absorb columns, then emit a model
/// byte-identical to a from-scratch train on everything absorbed so far.
#[derive(Debug, Clone)]
pub struct OnlineLearner {
    config: AutoDetectConfig,
    /// `config.stats` with sketching disabled: accumulators stay exact,
    /// and sketch finalization replays at retrain time. Always used for
    /// the crude-`G` accumulator (sampling needs exact counts).
    exact_stats: StatsConfig,
    /// Stats config for the candidate accumulators. Equal to
    /// `exact_stats` except in [`CoocMode::Streaming`], where candidates
    /// are count-min-backed from creation at the pinned geometry
    /// ([`AutoDetectConfig::online_streaming_spec`]) so absorbed deltas
    /// merge cell-wise and the accumulators survive `retrain`.
    acc_stats: StatsConfig,
    /// The union of everything absorbed, in arrival order. Training-set
    /// sampling is a function of corpus order, so arrival order *is* the
    /// canonical order a from-scratch train must use to reproduce the
    /// learner's output.
    corpus: Corpus,
    languages: Vec<Language>,
    /// Exact per-candidate accumulators, aligned with `languages`.
    accumulators: Vec<LanguageStats>,
    /// Exact crude-`G` accumulator for distant-supervision sampling.
    crude: LanguageStats,
    /// Columns absorbed since the last retrain.
    pending: u64,
    report: OnlineReport,
}

impl OnlineLearner {
    /// Creates an empty learner for `config`'s candidate space.
    pub fn new(config: AutoDetectConfig) -> Result<Self, AdtError> {
        config.validate()?;
        let exact_stats = StatsConfig {
            sketch: None,
            ..config.stats
        };
        let acc_stats = StatsConfig {
            sketch: config.online_streaming_spec(),
            ..exact_stats
        };
        let languages = config.candidate_languages();
        let accumulators = languages
            .iter()
            .map(|&l| LanguageStats::empty(l, &acc_stats))
            .collect();
        let crude = LanguageStats::empty(crude_language(), &exact_stats);
        Ok(OnlineLearner {
            config,
            exact_stats,
            acc_stats,
            corpus: Corpus::new(),
            languages,
            accumulators,
            crude,
            pending: 0,
            report: OnlineReport::default(),
        })
    }

    /// Creates a learner pre-seeded with `corpus` (one absorb pass).
    pub fn from_corpus(corpus: &Corpus, config: AutoDetectConfig) -> Result<Self, AdtError> {
        let mut learner = Self::new(config)?;
        learner.absorb_columns(corpus.columns().to_vec())?;
        Ok(learner)
    }

    /// Total columns absorbed so far.
    pub fn columns(&self) -> usize {
        self.corpus.len()
    }

    /// Columns absorbed since the last [`Self::retrain`].
    pub fn pending_columns(&self) -> u64 {
        self.pending
    }

    /// Cumulative counters.
    pub fn report(&self) -> &OnlineReport {
        &self.report
    }

    /// The training configuration the learner was built with.
    pub fn config(&self) -> &AutoDetectConfig {
        &self.config
    }

    /// Absorbs a batch of new columns into every accumulator.
    ///
    /// One sharded pipeline pass over the delta covers all candidate
    /// languages plus crude `G`, so the delta is interned and generalized
    /// once, not once per language. Cost scales with the delta, never
    /// with the accumulated corpus. In [`CoocMode::Streaming`] the
    /// candidate pass streams into pinned-geometry sketches while crude
    /// `G` takes a second, exact pass over the delta — sampling needs
    /// exact crude counts, and mixing backends in one pass would make
    /// the fold's merge reject.
    pub fn absorb_columns(&mut self, columns: Vec<Column>) -> Result<(), AdtError> {
        if columns.is_empty() {
            return Ok(());
        }
        let added = columns.len() as u64;
        let delta = Corpus::from_columns(columns);
        let opts = self.config.online_pipeline_options();
        if self.config.cooc == CoocMode::Streaming {
            let mut targets: Vec<&mut LanguageStats> = self.accumulators.iter_mut().collect();
            let pass = absorb_pass(
                &mut targets,
                &self.languages,
                &delta,
                &self.acc_stats,
                &opts,
            )?;
            self.report.pipeline.absorb(&pass);
            let crude_opts = PipelineOptions {
                cooc: CoocMode::Deferred,
                ..opts
            };
            let mut crude_target = [&mut self.crude];
            let crude_pass = absorb_pass(
                &mut crude_target,
                &[crude_language()],
                &delta,
                &self.exact_stats,
                &crude_opts,
            )?;
            self.report.pipeline.absorb(&crude_pass);
        } else {
            // Candidates first, crude last — the fold pairs stats with
            // accumulators by arrival index.
            let mut scan_languages = self.languages.clone();
            scan_languages.push(crude_language());
            let mut targets: Vec<&mut LanguageStats> = self.accumulators.iter_mut().collect();
            targets.push(&mut self.crude);
            let pass = absorb_pass(
                &mut targets,
                &scan_languages,
                &delta,
                &self.exact_stats,
                &opts,
            )?;
            self.report.pipeline.absorb(&pass);
        }
        self.corpus.extend_from(delta);
        self.pending += added;
        self.report.absorbs += 1;
        self.report.columns_absorbed += added;
        Ok(())
    }

    /// Finalizes an exact accumulator under `config.stats` — the sorted
    /// -key sketch replay that makes an accumulator byte-identical to a
    /// pipeline build over the union corpus.
    fn finalized(&self, acc: &LanguageStats) -> LanguageStats {
        let mut stats = acc.clone();
        if let Some(spec) = self.config.stats.sketch {
            stats.compress_cooccurrence(spec);
        }
        stats
    }

    /// Re-runs calibration, selection, and assembly over everything
    /// absorbed so far, without re-scanning the corpus for statistics.
    ///
    /// Byte-identical (under [`crate::model::codec`]) to
    /// [`crate::model::train`] on the same columns in arrival order. The
    /// report's pipeline counters cover the absorb passes (the learner's
    /// only corpus scans) rather than the offline path's calibration and
    /// assembly scans.
    pub fn retrain(&mut self) -> Result<(AutoDetect, TrainReport), AdtError> {
        let crude = self.finalized(&self.crude);
        let training = build_training_set_with_crude(&self.corpus, &self.config, &crude);

        // Phase 1 without the corpus scan: score and calibrate each
        // candidate from its accumulator.
        let pool: Vec<CalibratedCandidate> = parallel_map(
            &self.accumulators,
            self.config.effective_train_threads(),
            "online-calibrate",
            |_, acc| {
                let stats = self.finalized(acc);
                let scores = score_training_set(&stats, &training, self.config.npmi);
                let calibration =
                    calibrate_language(&training, &scores, self.config.precision_target, 256);
                CalibratedCandidate {
                    language: stats.language,
                    size_bytes: stats.size_bytes(),
                    calibration,
                }
            },
        )?;

        // Phases 2–3: selection, then assembly from the accumulators in
        // pick order (where the offline path re-scans the corpus).
        let selection = greedy_select(&summarize_pool(&pool), self.config.memory_budget);
        let mut rebuilt = Vec::with_capacity(selection.selected.len());
        for &i in &selection.selected {
            let acc = self
                .accumulators
                .get(i)
                .ok_or(AdtError::Worker("online-retrain"))?;
            rebuilt.push(self.finalized(acc));
        }
        let out = assemble_model(
            &self.config,
            &training,
            &pool,
            selection,
            rebuilt,
            self.report.pipeline,
        )?;
        self.pending = 0;
        self.report.retrains += 1;
        Ok(out)
    }
}

/// One sharded pipeline pass over `delta`, merging each produced
/// [`LanguageStats`] into the like-indexed target. A merge rejection
/// (language or backend mismatch) aborts with [`AdtError::Worker`]
/// before the caller can absorb a half-merged delta into the canonical
/// corpus; with aligned construction it is unreachable.
fn absorb_pass(
    targets: &mut [&mut LanguageStats],
    scan_languages: &[Language],
    delta: &Corpus,
    stats_config: &StatsConfig,
    opts: &PipelineOptions,
) -> Result<PipelineReport, AdtError> {
    let mut idx = 0usize;
    let mut merge_error: Option<&'static str> = None;
    let pass = build_stats_for_languages(scan_languages, delta, stats_config, opts, |stats| {
        if let Some(target) = targets.get_mut(idx) {
            if let Err(e) = target.merge_from(&stats) {
                merge_error.get_or_insert(e);
            }
        }
        idx += 1;
    })
    .map_err(pipeline_error)?;
    if let Some(e) = merge_error {
        return Err(AdtError::Worker(e));
    }
    Ok(pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{codec, train};
    use adt_corpus::{generate_corpus, CorpusProfile};
    use adt_stats::SketchSpec;

    fn quick_config() -> AutoDetectConfig {
        AutoDetectConfig {
            training_examples: 2_000,
            ..AutoDetectConfig::small()
        }
    }

    fn quick_corpus(columns: usize) -> Corpus {
        let mut p = CorpusProfile::web(columns);
        p.dirty_rate = 0.0;
        generate_corpus(&p)
    }

    fn model_bytes(model: &AutoDetect) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::write_model(&mut buf, model).expect("in-memory write");
        buf
    }

    /// The satellite differential: absorb(base, delta) + retrain is
    /// bit-identical to a from-scratch train on base ++ delta, at every
    /// thread count. The absorb itself is split in two to also cover
    /// merge associativity.
    fn assert_absorb_matches_scratch(base_cfg: AutoDetectConfig) {
        let corpus = quick_corpus(500);
        let split = 350;
        let base = corpus.columns()[..split].to_vec();
        let delta = corpus.columns()[split..].to_vec();
        let mut reference: Option<Vec<u8>> = None;
        for threads in [1usize, 2, 4, 8] {
            let cfg = AutoDetectConfig {
                train_threads: threads,
                ..base_cfg.clone()
            };
            let (scratch, _) = train(&corpus, &cfg).unwrap();
            let scratch_bytes = model_bytes(&scratch);
            let mut learner = OnlineLearner::new(cfg).unwrap();
            learner.absorb_columns(base.clone()).unwrap();
            learner.absorb_columns(delta.clone()).unwrap();
            assert_eq!(learner.pending_columns(), corpus.len() as u64);
            let (online, report) = learner.retrain().unwrap();
            assert_eq!(learner.pending_columns(), 0);
            assert_eq!(report.candidates.len(), learner.languages.len());
            assert_eq!(
                scratch_bytes,
                model_bytes(&online),
                "absorb diverged from scratch train at {threads} threads"
            );
            // And across thread counts: training is thread-invariant, so
            // every row of the matrix must agree.
            match &reference {
                Some(r) => assert_eq!(r, &scratch_bytes, "thread variance at {threads}"),
                None => reference = Some(scratch_bytes),
            }
        }
    }

    #[test]
    fn absorb_bit_identical_exact_backend() {
        assert_absorb_matches_scratch(quick_config());
    }

    #[test]
    fn absorb_bit_identical_sketch_backend() {
        // Both sketch knobs at once: sketched candidate statistics and
        // budget-driven final compression.
        assert_absorb_matches_scratch(AutoDetectConfig {
            stats: StatsConfig {
                sketch: Some(SketchSpec {
                    budget_bytes: 64 << 10,
                    ..SketchSpec::default()
                }),
                ..StatsConfig::default()
            },
            sketch_fraction: Some(0.25),
            ..quick_config()
        });
    }

    #[test]
    fn repeated_retrains_track_the_growing_union() {
        let corpus = quick_corpus(500);
        let cfg = quick_config();
        let base = corpus.columns()[..300].to_vec();
        let delta = corpus.columns()[300..].to_vec();

        let mut learner =
            OnlineLearner::from_corpus(&Corpus::from_columns(base.clone()), cfg.clone()).unwrap();
        let (first, _) = learner.retrain().unwrap();
        let (scratch_first, _) = train(&Corpus::from_columns(base), &cfg).unwrap();
        assert_eq!(model_bytes(&first), model_bytes(&scratch_first));

        learner.absorb_columns(delta).unwrap();
        let (second, _) = learner.retrain().unwrap();
        let (scratch_second, _) = train(&corpus, &cfg).unwrap();
        assert_eq!(model_bytes(&second), model_bytes(&scratch_second));
        assert_eq!(learner.report().retrains, 2);
        assert_eq!(learner.report().columns_absorbed, corpus.len() as u64);
    }

    /// Streaming accumulators: absorbs merge cell-wise into pinned
    /// sketches, survive an interleaved retrain, and the resulting model
    /// is invariant to the absorb split and the thread count. (Byte
    /// identity with a scratch `train` is *not* expected — offline
    /// auto-sizing picks different widths than the pinned geometry.)
    #[test]
    fn streaming_absorb_is_split_and_thread_invariant_across_retrains() {
        let corpus = quick_corpus(400);
        let split = 250;
        let base = corpus.columns()[..split].to_vec();
        let delta = corpus.columns()[split..].to_vec();
        let mut reference: Option<Vec<u8>> = None;
        for threads in [1usize, 2, 4, 8] {
            let cfg = AutoDetectConfig {
                cooc: adt_stats::CoocMode::Streaming,
                train_threads: threads,
                ..quick_config()
            };
            cfg.validate().unwrap();

            // Whole-corpus absorb in one batch.
            let mut whole = OnlineLearner::new(cfg.clone()).unwrap();
            whole.absorb_columns(corpus.columns().to_vec()).unwrap();
            let (whole_model, _) = whole.retrain().unwrap();

            // Split absorb with a retrain *between* the halves: the
            // accumulators must carry through it untouched.
            let mut stepped = OnlineLearner::new(cfg).unwrap();
            stepped.absorb_columns(base.clone()).unwrap();
            let (_, mid_report) = stepped.retrain().unwrap();
            assert_eq!(mid_report.candidates.len(), stepped.languages.len());
            stepped.absorb_columns(delta.clone()).unwrap();
            let (stepped_model, report) = stepped.retrain().unwrap();
            assert_eq!(stepped.report().retrains, 2);
            // Both absorb passes ran in streaming mode (crude's exact
            // pass is counted too, so languages > candidates).
            assert!(report.pipeline.streaming_languages >= stepped.languages.len() as u64);
            assert!(report.pipeline.sketch_bytes > 0);

            let bytes = model_bytes(&whole_model);
            assert_eq!(
                bytes,
                model_bytes(&stepped_model),
                "split absorb diverged from whole absorb at {threads} threads"
            );
            match &reference {
                Some(r) => assert_eq!(r, &bytes, "thread variance at {threads}"),
                None => reference = Some(bytes),
            }
        }
    }

    #[test]
    fn empty_learner_and_empty_batches_are_safe() {
        let mut learner = OnlineLearner::new(quick_config()).unwrap();
        learner.absorb_columns(Vec::new()).unwrap();
        assert_eq!(learner.columns(), 0);
        assert_eq!(learner.report().absorbs, 0);
        let (model, _) = learner.retrain().unwrap();
        assert_eq!(model.num_languages(), 0);
    }
}
