//! Online learning: incremental training over a growing corpus.
//!
//! The offline regime (§4) trains once over a frozen corpus and ships the
//! model; a serving deployment instead sees a stream of new columns and
//! wants to fold them in without paying a full rebuild. [`OnlineLearner`]
//! makes that exact: it keeps one **exact** (un-sketched) statistics
//! accumulator per candidate language plus the crude-`G` accumulator the
//! distant-supervision sampler needs, and absorbs each batch of new
//! columns through the same sharded intern-once pipeline training uses.
//!
//! Two properties of the statistics layer make absorb loss-free:
//!
//! - Exact accumulation is a keyed sum, so it is order- and
//!   partition-independent: `merge(stats(base), stats(delta))` equals
//!   `stats(base ∪ delta)` byte for byte.
//! - Sketch backends are **finalized, never accumulated**: a sketched
//!   build accumulates exactly and compresses by sorted-key replay at the
//!   end ([`LanguageStats::compress_cooccurrence`]). The learner defers
//!   that replay to [`OnlineLearner::retrain`], so sketch models inherit
//!   the same identity.
//!
//! `retrain` then re-runs the downstream phases — training-set sampling,
//! scoring, calibration, greedy selection, assembly — over the union
//! corpus, reusing the accumulators instead of re-scanning the corpus.
//! The result is byte-identical (under [`crate::model::codec`]) to
//! [`crate::model::train`] on the union at any thread count; the
//! differential tests below pin that for exact and sketch backends at
//! 1/2/4/8 threads. What absorb saves is the corpus-wide statistics
//! passes (crude build, candidate scan, selected-language rebuild) — the
//! dominant training cost once the corpus outgrows the delta.
//!
//! The trade-off is memory: the learner holds exact statistics for every
//! candidate language at once, where offline training calibrates and
//! drops them batch by batch. That suits the serve-loop scale this
//! subsystem targets (thousands of columns, coarse spaces); the paper's
//! 350M-column regime stays on the offline path.

use crate::calibrate::calibrate_language;
use crate::config::AutoDetectConfig;
use crate::detector::AutoDetect;
use crate::engine::parallel_map;
use crate::error::AdtError;
use crate::model::{
    assemble_model, pipeline_error, score_training_set, summarize_pool, CalibratedCandidate,
    TrainReport,
};
use crate::selection::greedy_select;
use crate::training::build_training_set_with_crude;
use adt_corpus::{Column, Corpus};
use adt_patterns::crude::crude_language;
use adt_patterns::Language;
use adt_stats::{build_stats_for_languages, LanguageStats, PipelineReport, StatsConfig};
use serde::{Deserialize, Serialize};

/// Cumulative counters for one learner lifetime.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Completed [`OnlineLearner::absorb_columns`] calls.
    pub absorbs: u64,
    /// Columns absorbed across all calls.
    pub columns_absorbed: u64,
    /// Completed [`OnlineLearner::retrain`] calls.
    pub retrains: u64,
    /// Pipeline counters summed over every absorb pass (the only corpus
    /// scans the learner performs).
    pub pipeline: PipelineReport,
}

/// An incremental trainer: absorb columns, then emit a model
/// byte-identical to a from-scratch train on everything absorbed so far.
#[derive(Debug, Clone)]
pub struct OnlineLearner {
    config: AutoDetectConfig,
    /// `config.stats` with sketching disabled: accumulators stay exact,
    /// and sketch finalization replays at retrain time.
    exact_stats: StatsConfig,
    /// The union of everything absorbed, in arrival order. Training-set
    /// sampling is a function of corpus order, so arrival order *is* the
    /// canonical order a from-scratch train must use to reproduce the
    /// learner's output.
    corpus: Corpus,
    languages: Vec<Language>,
    /// Exact per-candidate accumulators, aligned with `languages`.
    accumulators: Vec<LanguageStats>,
    /// Exact crude-`G` accumulator for distant-supervision sampling.
    crude: LanguageStats,
    /// Columns absorbed since the last retrain.
    pending: u64,
    report: OnlineReport,
}

impl OnlineLearner {
    /// Creates an empty learner for `config`'s candidate space.
    pub fn new(config: AutoDetectConfig) -> Result<Self, AdtError> {
        config.validate()?;
        let exact_stats = StatsConfig {
            sketch: None,
            ..config.stats
        };
        let languages = config.candidate_languages();
        let accumulators = languages
            .iter()
            .map(|&l| LanguageStats::empty(l, &exact_stats))
            .collect();
        let crude = LanguageStats::empty(crude_language(), &exact_stats);
        Ok(OnlineLearner {
            config,
            exact_stats,
            corpus: Corpus::new(),
            languages,
            accumulators,
            crude,
            pending: 0,
            report: OnlineReport::default(),
        })
    }

    /// Creates a learner pre-seeded with `corpus` (one absorb pass).
    pub fn from_corpus(corpus: &Corpus, config: AutoDetectConfig) -> Result<Self, AdtError> {
        let mut learner = Self::new(config)?;
        learner.absorb_columns(corpus.columns().to_vec())?;
        Ok(learner)
    }

    /// Total columns absorbed so far.
    pub fn columns(&self) -> usize {
        self.corpus.len()
    }

    /// Columns absorbed since the last [`Self::retrain`].
    pub fn pending_columns(&self) -> u64 {
        self.pending
    }

    /// Cumulative counters.
    pub fn report(&self) -> &OnlineReport {
        &self.report
    }

    /// The training configuration the learner was built with.
    pub fn config(&self) -> &AutoDetectConfig {
        &self.config
    }

    /// Absorbs a batch of new columns into every accumulator.
    ///
    /// One sharded pipeline pass over the delta covers all candidate
    /// languages plus crude `G`, so the delta is interned and generalized
    /// once, not once per language. Cost scales with the delta, never
    /// with the accumulated corpus.
    pub fn absorb_columns(&mut self, columns: Vec<Column>) -> Result<(), AdtError> {
        if columns.is_empty() {
            return Ok(());
        }
        let added = columns.len() as u64;
        let delta = Corpus::from_columns(columns);
        // Candidates first, crude last — the fold below pairs stats with
        // accumulators by arrival index.
        let mut scan_languages = self.languages.clone();
        scan_languages.push(crude_language());
        let accumulators = &mut self.accumulators;
        let crude = &mut self.crude;
        let mut idx = 0usize;
        let mut merge_error: Option<&'static str> = None;
        let pass = build_stats_for_languages(
            &scan_languages,
            &delta,
            &self.exact_stats,
            self.config.effective_train_threads(),
            |stats| {
                let target = match accumulators.get_mut(idx) {
                    Some(acc) => acc,
                    None => &mut *crude,
                };
                if let Err(e) = target.merge_from(&stats) {
                    merge_error.get_or_insert(e);
                }
                idx += 1;
            },
        )
        .map_err(pipeline_error)?;
        if let Some(e) = merge_error {
            // Only reachable via a language/backend mismatch, which the
            // aligned construction above rules out — but never absorb a
            // half-merged delta into the canonical corpus.
            return Err(AdtError::Worker(e));
        }
        self.corpus.extend_from(delta);
        self.pending += added;
        self.report.absorbs += 1;
        self.report.columns_absorbed += added;
        self.report.pipeline.absorb(&pass);
        Ok(())
    }

    /// Finalizes an exact accumulator under `config.stats` — the sorted
    /// -key sketch replay that makes an accumulator byte-identical to a
    /// pipeline build over the union corpus.
    fn finalized(&self, acc: &LanguageStats) -> LanguageStats {
        let mut stats = acc.clone();
        if let Some(spec) = self.config.stats.sketch {
            stats.compress_cooccurrence(spec);
        }
        stats
    }

    /// Re-runs calibration, selection, and assembly over everything
    /// absorbed so far, without re-scanning the corpus for statistics.
    ///
    /// Byte-identical (under [`crate::model::codec`]) to
    /// [`crate::model::train`] on the same columns in arrival order. The
    /// report's pipeline counters cover the absorb passes (the learner's
    /// only corpus scans) rather than the offline path's calibration and
    /// assembly scans.
    pub fn retrain(&mut self) -> Result<(AutoDetect, TrainReport), AdtError> {
        let crude = self.finalized(&self.crude);
        let training = build_training_set_with_crude(&self.corpus, &self.config, &crude);

        // Phase 1 without the corpus scan: score and calibrate each
        // candidate from its accumulator.
        let pool: Vec<CalibratedCandidate> = parallel_map(
            &self.accumulators,
            self.config.effective_train_threads(),
            "online-calibrate",
            |_, acc| {
                let stats = self.finalized(acc);
                let scores = score_training_set(&stats, &training, self.config.npmi);
                let calibration =
                    calibrate_language(&training, &scores, self.config.precision_target, 256);
                CalibratedCandidate {
                    language: stats.language,
                    size_bytes: stats.size_bytes(),
                    calibration,
                }
            },
        )?;

        // Phases 2–3: selection, then assembly from the accumulators in
        // pick order (where the offline path re-scans the corpus).
        let selection = greedy_select(&summarize_pool(&pool), self.config.memory_budget);
        let mut rebuilt = Vec::with_capacity(selection.selected.len());
        for &i in &selection.selected {
            let acc = self
                .accumulators
                .get(i)
                .ok_or(AdtError::Worker("online-retrain"))?;
            rebuilt.push(self.finalized(acc));
        }
        let out = assemble_model(
            &self.config,
            &training,
            &pool,
            selection,
            rebuilt,
            self.report.pipeline,
        )?;
        self.pending = 0;
        self.report.retrains += 1;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{codec, train};
    use adt_corpus::{generate_corpus, CorpusProfile};
    use adt_stats::SketchSpec;

    fn quick_config() -> AutoDetectConfig {
        AutoDetectConfig {
            training_examples: 2_000,
            ..AutoDetectConfig::small()
        }
    }

    fn quick_corpus(columns: usize) -> Corpus {
        let mut p = CorpusProfile::web(columns);
        p.dirty_rate = 0.0;
        generate_corpus(&p)
    }

    fn model_bytes(model: &AutoDetect) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::write_model(&mut buf, model).expect("in-memory write");
        buf
    }

    /// The satellite differential: absorb(base, delta) + retrain is
    /// bit-identical to a from-scratch train on base ++ delta, at every
    /// thread count. The absorb itself is split in two to also cover
    /// merge associativity.
    fn assert_absorb_matches_scratch(base_cfg: AutoDetectConfig) {
        let corpus = quick_corpus(500);
        let split = 350;
        let base = corpus.columns()[..split].to_vec();
        let delta = corpus.columns()[split..].to_vec();
        let mut reference: Option<Vec<u8>> = None;
        for threads in [1usize, 2, 4, 8] {
            let cfg = AutoDetectConfig {
                train_threads: threads,
                ..base_cfg.clone()
            };
            let (scratch, _) = train(&corpus, &cfg).unwrap();
            let scratch_bytes = model_bytes(&scratch);
            let mut learner = OnlineLearner::new(cfg).unwrap();
            learner.absorb_columns(base.clone()).unwrap();
            learner.absorb_columns(delta.clone()).unwrap();
            assert_eq!(learner.pending_columns(), corpus.len() as u64);
            let (online, report) = learner.retrain().unwrap();
            assert_eq!(learner.pending_columns(), 0);
            assert_eq!(report.candidates.len(), learner.languages.len());
            assert_eq!(
                scratch_bytes,
                model_bytes(&online),
                "absorb diverged from scratch train at {threads} threads"
            );
            // And across thread counts: training is thread-invariant, so
            // every row of the matrix must agree.
            match &reference {
                Some(r) => assert_eq!(r, &scratch_bytes, "thread variance at {threads}"),
                None => reference = Some(scratch_bytes),
            }
        }
    }

    #[test]
    fn absorb_bit_identical_exact_backend() {
        assert_absorb_matches_scratch(quick_config());
    }

    #[test]
    fn absorb_bit_identical_sketch_backend() {
        // Both sketch knobs at once: sketched candidate statistics and
        // budget-driven final compression.
        assert_absorb_matches_scratch(AutoDetectConfig {
            stats: StatsConfig {
                sketch: Some(SketchSpec {
                    budget_bytes: 64 << 10,
                    ..SketchSpec::default()
                }),
                ..StatsConfig::default()
            },
            sketch_fraction: Some(0.25),
            ..quick_config()
        });
    }

    #[test]
    fn repeated_retrains_track_the_growing_union() {
        let corpus = quick_corpus(500);
        let cfg = quick_config();
        let base = corpus.columns()[..300].to_vec();
        let delta = corpus.columns()[300..].to_vec();

        let mut learner =
            OnlineLearner::from_corpus(&Corpus::from_columns(base.clone()), cfg.clone()).unwrap();
        let (first, _) = learner.retrain().unwrap();
        let (scratch_first, _) = train(&Corpus::from_columns(base), &cfg).unwrap();
        assert_eq!(model_bytes(&first), model_bytes(&scratch_first));

        learner.absorb_columns(delta).unwrap();
        let (second, _) = learner.retrain().unwrap();
        let (scratch_second, _) = train(&corpus, &cfg).unwrap();
        assert_eq!(model_bytes(&second), model_bytes(&scratch_second));
        assert_eq!(learner.report().retrains, 2);
        assert_eq!(learner.report().columns_absorbed, corpus.len() as u64);
    }

    #[test]
    fn empty_learner_and_empty_batches_are_safe() {
        let mut learner = OnlineLearner::new(quick_config()).unwrap();
        learner.absorb_columns(Vec::new()).unwrap();
        assert_eq!(learner.columns(), 0);
        assert_eq!(learner.report().absorbs, 0);
        let (model, _) = learner.retrain().unwrap();
        assert_eq!(model.num_languages(), 0);
    }
}
