//! Per-language threshold calibration (Equations 7–8) and
//! precision-vs-score curves for confidence estimation (Appendix B).
//!
//! **Semantics.** `θ_k` is the cutoff that **maximizes coverage of T⁻
//! subject to cumulative precision ≥ P**, tie-broken toward the smallest θ
//! (fewest false positives), with candidate cutoffs restricted to
//! **negative NPMI scores**: NPMI ≥ 0 means independence or positive
//! association, which by Equation 2's semantics cannot witness
//! incompatibility. Under this reading the paper's Example 4 / Table 2
//! walkthrough is reproduced exactly (θ₁ = −0.5, θ₂ = −0.6, θ₃ = −0.5).

use crate::training::{Label, TrainingSet};
use serde::{Deserialize, Serialize};

/// Calibration of one language against the training set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Calibration {
    /// The calibrated threshold `θ_k`; `None` when no cutoff meets the
    /// precision target (the language never fires).
    pub theta: Option<f64>,
    /// Precision achieved at `theta` on the training set.
    pub precision_at_theta: f64,
    /// Indices (into the training set) of covered incompatible examples:
    /// `H⁻_k = {t ∈ T⁻ : s_k(t) ≤ θ_k}`.
    pub covered_negatives: Vec<u32>,
    /// Number of covered compatible examples (false positives at `θ_k`).
    pub covered_positives: usize,
    /// Cumulative precision curve: `(score, precision among examples with
    /// s ≤ score)`, downsampled; used for `P_k(s)` lookups (Appendix B).
    pub curve: Vec<(f64, f64)>,
}

impl Calibration {
    /// `P_k(s)`: estimated precision of a prediction with score `s`.
    ///
    /// Looks up the cumulative-precision curve at the largest recorded
    /// score ≤ `s`; scores below the smallest recorded score take the
    /// first point's precision; scores above the largest take 0 (the
    /// language is not confident there).
    pub fn precision_at(&self, s: f64) -> f64 {
        if self.curve.is_empty() {
            return 0.0;
        }
        if s < self.curve[0].0 {
            return self.curve[0].1;
        }
        if s > self.curve[self.curve.len() - 1].0 {
            return 0.0;
        }
        let idx = self.curve.partition_point(|&(x, _)| x <= s);
        self.curve[idx.saturating_sub(1)].1
    }

    /// True when the language fires on score `s` (ST aggregation test
    /// `s ≤ θ_k`).
    pub fn fires(&self, s: f64) -> bool {
        match self.theta {
            Some(t) => s <= t,
            None => false,
        }
    }

    /// Recall contribution `|H⁻_k|`.
    pub fn coverage(&self) -> usize {
        self.covered_negatives.len()
    }
}

/// Calibrates one language given its scores over the training set.
///
/// `scores[i]` must be `s_k(u_i, v_i)` for `training.examples[i]`.
/// Ties in score are processed as a block: a threshold admits every
/// example whose score equals it.
pub fn calibrate_language(
    training: &TrainingSet,
    scores: &[f64],
    precision_target: f64,
    curve_points: usize,
) -> Calibration {
    assert_eq!(training.len(), scores.len(), "one score per example");
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    order.sort_by(|&a, &b| scores[a as usize].total_cmp(&scores[b as usize]));

    let mut neg_seen = 0usize;
    let mut pos_seen = 0usize;
    let mut best: Option<(f64, usize, usize, f64)> = None; // (theta, neg, pos, precision)
    let mut curve_raw: Vec<(f64, f64)> = Vec::new();

    let mut i = 0usize;
    while i < order.len() {
        let s = scores[order[i] as usize];
        let mut j = i;
        while j < order.len() && scores[order[j] as usize] == s {
            match training.examples[order[j] as usize].label {
                Label::Incompatible => neg_seen += 1,
                Label::Compatible => pos_seen += 1,
            }
            j += 1;
        }
        let total = neg_seen + pos_seen;
        let precision = neg_seen as f64 / total as f64;
        curve_raw.push((s, precision));
        if s < 0.0 && precision >= precision_target {
            // Maximize coverage; on ties keep the earlier (smaller) theta,
            // which has fewer false positives.
            let better = match &best {
                Some((_, n, _, _)) => neg_seen > *n,
                None => true,
            };
            if better {
                best = Some((s, neg_seen, pos_seen, precision));
            }
        }
        i = j;
    }

    let (theta, best_neg, best_pos, precision_at_theta) = match best {
        Some((t, n, p, prec)) => (Some(t), n, p, prec),
        None => (None, 0, 0, 0.0),
    };

    let covered_negatives: Vec<u32> = match theta {
        Some(t) => order
            .iter()
            .copied()
            .take_while(|&idx| scores[idx as usize] <= t)
            .filter(|&idx| training.examples[idx as usize].label == Label::Incompatible)
            .collect(),
        None => Vec::new(),
    };
    debug_assert_eq!(covered_negatives.len(), best_neg);

    let curve = if curve_raw.len() <= curve_points || curve_points < 2 {
        curve_raw
    } else {
        let stride = (curve_raw.len() - 1) as f64 / (curve_points - 1) as f64;
        (0..curve_points)
            .map(|k| curve_raw[(k as f64 * stride).round() as usize])
            .collect()
    };

    Calibration {
        theta,
        precision_at_theta,
        covered_negatives,
        covered_positives: best_pos,
        curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Example;

    fn set_of(labels: &[Label]) -> TrainingSet {
        TrainingSet {
            examples: labels
                .iter()
                .enumerate()
                .map(|(i, &label)| Example {
                    u: format!("u{i}"),
                    v: format!("v{i}"),
                    label,
                })
                .collect(),
        }
    }

    use Label::{Compatible as P, Incompatible as N};

    // Example 4 on Table 1's L1 row: theta1 = -0.5, H−1 = {t6, t8, t9},
    // H+1 = {t3}, precision 0.75. The t10 cutoff at 0.2 is ineligible
    // because thresholds range over negative NPMI only.
    #[test]
    fn paper_example4_l1_exact() {
        let labels = [P, P, P, P, P, N, N, N, N, N];
        let scores = [0.5, 0.5, -0.7, 0.4, 0.5, -0.5, 0.9, -0.6, -0.7, 0.2];
        let set = set_of(&labels);
        let cal = calibrate_language(&set, &scores, 0.75, 64);
        assert_eq!(cal.theta, Some(-0.5));
        let mut cov = cal.covered_negatives.clone();
        cov.sort_unstable();
        assert_eq!(cov, vec![5, 7, 8]); // t6, t8, t9
        assert_eq!(cal.covered_positives, 1); // t3
        assert!((cal.precision_at_theta - 0.75).abs() < 1e-9);
    }

    // Example 4 on Table 1's L2 row: theta2 = -0.6, H−2 = {t7, t9, t10}.
    #[test]
    fn paper_example4_l2_exact() {
        let labels = [P, P, P, P, P, N, N, N, N, N];
        let scores = [0.5, 0.5, 0.4, -0.8, 0.5, 0.9, -0.6, 0.2, -0.7, -0.7];
        let set = set_of(&labels);
        let cal = calibrate_language(&set, &scores, 0.75, 64);
        assert_eq!(cal.theta, Some(-0.6));
        let mut cov = cal.covered_negatives.clone();
        cov.sort_unstable();
        assert_eq!(cov, vec![6, 8, 9]); // t7, t9, t10
        assert_eq!(cal.covered_positives, 1); // t4
        assert!((cal.precision_at_theta - 0.75).abs() < 1e-9);
    }

    // Table 2's L3 row is reproduced exactly: theta = -0.5, H− = {t6..t9},
    // H+ = ∅, precision 1.0 — the tie-break toward smaller theta rejects
    // the equal-coverage cutoff at 0.4 that would admit a false positive.
    #[test]
    fn paper_table2_l3_exact() {
        let labels = [P, P, P, P, P, N, N, N, N, N];
        let scores = [0.4, 0.5, 0.5, 0.6, 0.5, -0.6, -0.6, -0.7, -0.5, 0.9];
        let set = set_of(&labels);
        let cal = calibrate_language(&set, &scores, 0.75, 64);
        assert_eq!(cal.theta, Some(-0.5));
        let mut cov = cal.covered_negatives.clone();
        cov.sort_unstable();
        assert_eq!(cov, vec![5, 6, 7, 8]);
        assert_eq!(cal.covered_positives, 0);
        assert_eq!(cal.precision_at_theta, 1.0);
    }

    #[test]
    fn no_threshold_when_target_unreachable() {
        let set = set_of(&[P, N]);
        let scores = [-0.9, -0.5];
        let cal = calibrate_language(&set, &scores, 0.95, 64);
        assert_eq!(cal.theta, None);
        assert_eq!(cal.coverage(), 0);
        assert!(!cal.fires(-1.0));
    }

    #[test]
    fn recovers_after_local_precision_dip() {
        // neg, neg, pos, neg: the dip at -0.7 (2/3) recovers at -0.6
        // (3/4 = target) with better coverage.
        let set = set_of(&[N, N, P, N]);
        let scores = [-0.9, -0.8, -0.7, -0.6];
        let cal = calibrate_language(&set, &scores, 0.75, 64);
        assert_eq!(cal.theta, Some(-0.6));
        assert_eq!(cal.coverage(), 3);
        assert_eq!(cal.covered_positives, 1);
    }

    #[test]
    fn tied_scores_processed_as_block() {
        // A negative and a positive share the minimum score: the block
        // precision is 0.5, below target -> no theta.
        let set = set_of(&[N, P]);
        let scores = [-0.9, -0.9];
        let cal = calibrate_language(&set, &scores, 0.75, 64);
        assert_eq!(cal.theta, None);
    }

    #[test]
    fn precision_curve_lookup() {
        let set = set_of(&[N, N, P, P]);
        let scores = [-0.9, -0.5, 0.5, 0.9];
        let cal = calibrate_language(&set, &scores, 0.5, 64);
        assert_eq!(cal.precision_at(-0.95), 1.0); // below min -> first point
        assert_eq!(cal.precision_at(-0.9), 1.0);
        assert_eq!(cal.precision_at(-0.7), 1.0); // between points
        assert!((cal.precision_at(0.5) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(cal.precision_at(0.95), 0.0); // above max
    }

    #[test]
    fn curve_downsampling_keeps_bounds() {
        let n = 1000;
        let labels: Vec<Label> = (0..n).map(|i| if i % 3 == 0 { N } else { P }).collect();
        let scores: Vec<f64> = (0..n).map(|i| -1.0 + 2.0 * i as f64 / n as f64).collect();
        let set = set_of(&labels);
        let cal = calibrate_language(&set, &scores, 0.99, 32);
        assert!(cal.curve.len() <= 32);
        assert_eq!(cal.curve.first().unwrap().0, scores[0]);
        assert_eq!(cal.curve.last().unwrap().0, *scores.last().unwrap());
    }

    #[test]
    fn fires_respects_theta() {
        let set = set_of(&[N, P]);
        let scores = [-0.9, 0.9];
        let cal = calibrate_language(&set, &scores, 0.75, 64);
        assert_eq!(cal.theta, Some(-0.9));
        assert!(cal.fires(-0.9));
        assert!(cal.fires(-1.0));
        assert!(!cal.fires(-0.5));
    }

    #[test]
    fn all_negative_training_set_covers_negative_scores() {
        let set = set_of(&[N, N, N]);
        let scores = [-0.9, -0.1, 0.9];
        let cal = calibrate_language(&set, &scores, 0.95, 64);
        // Only negative scores are eligible thresholds; the example at 0.9
        // cannot be covered.
        assert_eq!(cal.theta, Some(-0.1));
        assert_eq!(cal.coverage(), 2);
        assert_eq!(cal.precision_at_theta, 1.0);
    }

    #[test]
    fn nonnegative_scores_never_become_thresholds() {
        let set = set_of(&[N, N]);
        let scores = [0.0, 0.5];
        let cal = calibrate_language(&set, &scores, 0.5, 64);
        assert_eq!(cal.theta, None);
    }
}
