//! The common detector interface — the single canonical surface every
//! detection method implements.
//!
//! Moved here from `adt-baselines` so that Auto-Detect itself and every
//! baseline implement one trait: evaluation drivers, the ensemble
//! engine, and services consume a uniform `dyn Detector` instead of
//! special-casing Auto-Detect. `adt-baselines` re-exports these items
//! for compatibility.
//!
//! Three layers:
//!
//! * [`Detector`] — per-column and batch detection. `detect_batch` has a
//!   default per-column implementation; detectors with amortizable setup
//!   (Auto-Detect's pattern cache) override it so whole CSV batches are
//!   scanned against one warm cache.
//! * [`DetectorInfo`] — a static descriptor (name, [`DetectorKind`],
//!   [`CostClass`]) so engines can schedule and report without
//!   downcasting.
//! * [`DetectorRegistry`] / [`DetectorSpec`] — typed construction of
//!   detectors by configuration name (`"autodetect"`, `"fregex"`, …),
//!   with unknown names surfacing as [`AdtError::Config`].

use crate::aggregate::Aggregator;
use crate::detector::{AutoDetect, PatternCache};
use crate::error::AdtError;
use adt_corpus::Column;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One predicted error within a column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The value predicted to be an error.
    pub value: String,
    /// Method-specific confidence; higher means more suspicious. Only the
    /// ordering is comparable across columns of the *same* method.
    pub confidence: f64,
}

/// What a detector's signal is derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Corpus-trained co-occurrence statistics (Auto-Detect).
    CorpusStatistics,
    /// Purely local single-column heuristics (the §4.2 baselines).
    SingleColumn,
    /// Composition of other detectors (Union, ensembles).
    Meta,
}

/// Rough per-column cost, for scheduling and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CostClass {
    /// Linear-ish in distinct values (regex matchers, counters).
    Cheap,
    /// Pairwise in distinct values or model probes.
    Moderate,
    /// Superquadratic / iterative refinement (LSA, LOF, compression).
    Expensive,
}

/// Static descriptor of a detector, surfaced in reports and `/v1/stats`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DetectorInfo {
    /// Display name (matching the paper's legend).
    pub name: &'static str,
    /// Signal provenance.
    pub kind: DetectorKind,
    /// Rough per-column cost.
    pub cost: CostClass,
}

/// A single-column error detector.
pub trait Detector: Send + Sync {
    /// The method's display name (matching the paper's legend).
    fn name(&self) -> &'static str;

    /// Ranked error predictions for one column, most confident first.
    /// An empty vector means "column looks clean".
    fn detect(&self, column: &Column) -> Vec<Prediction>;

    /// Static descriptor. The default assumes a cheap local method;
    /// override where the engine should know better.
    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: self.name(),
            kind: DetectorKind::SingleColumn,
            cost: CostClass::Cheap,
        }
    }

    /// Ranked predictions for a whole batch of columns, one vector per
    /// input column. `detect_batch(cols)[i]` is always identical to
    /// `detect(&cols[i])` — the batch form exists so detectors with
    /// amortizable setup (Auto-Detect's pattern cache) pay it once per
    /// batch instead of once per column.
    fn detect_batch(&self, columns: &[Column]) -> Vec<Vec<Prediction>> {
        columns.iter().map(|c| self.detect(c)).collect()
    }
}

impl<T: Detector + ?Sized> Detector for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        (**self).detect(column)
    }

    fn info(&self) -> DetectorInfo {
        (**self).info()
    }

    fn detect_batch(&self, columns: &[Column]) -> Vec<Vec<Prediction>> {
        (**self).detect_batch(columns)
    }
}

impl<T: Detector + ?Sized> Detector for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        (**self).detect(column)
    }

    fn info(&self) -> DetectorInfo {
        (**self).info()
    }

    fn detect_batch(&self, columns: &[Column]) -> Vec<Vec<Prediction>> {
        (**self).detect_batch(columns)
    }
}

impl<T: Detector + ?Sized> Detector for Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        (**self).detect(column)
    }

    fn info(&self) -> DetectorInfo {
        (**self).info()
    }

    fn detect_batch(&self, columns: &[Column]) -> Vec<Vec<Prediction>> {
        (**self).detect_batch(columns)
    }
}

/// Auto-Detect is itself a [`Detector`]: native ST aggregation with
/// max-confidence ranking.
impl Detector for AutoDetect {
    fn name(&self) -> &'static str {
        "Auto-Detect"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        findings_to_predictions(self.detect_column(column))
    }

    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: self.name(),
            kind: DetectorKind::CorpusStatistics,
            cost: CostClass::Moderate,
        }
    }

    /// One [`PatternCache`] serves the whole batch: every distinct value
    /// is generalized once per language and pair scores are memoized
    /// across the batch's columns. Findings are unaffected (the cache
    /// only memoizes pure functions).
    fn detect_batch(&self, columns: &[Column]) -> Vec<Vec<Prediction>> {
        let mut cache = PatternCache::new();
        columns
            .iter()
            .map(|c| {
                findings_to_predictions(self.scan_column(c, Aggregator::AutoDetect, &mut cache).0)
            })
            .collect()
    }
}

/// Auto-Detect scored through an alternative aggregator (the Figure 8(b)
/// comparisons), adapted to the [`Detector`] interface.
pub struct AggregatedAutoDetect<'a> {
    /// The underlying trained model.
    pub model: &'a AutoDetect,
    /// The aggregation strategy to apply.
    pub aggregator: Aggregator,
    /// Display name (e.g. `"AvgNPMI"`).
    pub name: &'static str,
}

impl Detector for AggregatedAutoDetect<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        findings_to_predictions(self.model.detect_column_with(column, self.aggregator))
    }
}

/// Converts ranked column findings into the cross-method prediction
/// shape.
pub fn findings_to_predictions(findings: Vec<crate::detector::ColumnFinding>) -> Vec<Prediction> {
    findings
        .into_iter()
        .map(|f| Prediction {
            value: f.suspect,
            confidence: f.confidence,
        })
        .collect()
}

/// Sorts predictions by descending confidence with a deterministic
/// tie-break, truncating to `limit`.
pub fn finalize_predictions(mut preds: Vec<Prediction>, limit: usize) -> Vec<Prediction> {
    preds.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then_with(|| a.value.cmp(&b.value))
    });
    preds.truncate(limit);
    preds
}

/// Tallies distinct values with their multiplicities, sorted by frequency
/// (ascending — rare values first) then value.
pub fn value_counts(column: &Column) -> Vec<(String, usize)> {
    let mut counts: adt_stats::FxHashMap<&str, usize> = adt_stats::FxHashMap::default();
    for v in column.non_empty_values() {
        *counts.entry(v).or_insert(0) += 1;
    }
    let mut out: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(v, c)| (v.to_string(), c))
        .collect();
    out.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Canonical configuration names for every detector the workspace ships,
/// lowercase, in the paper's presentation order. Configuration layers
/// validate against this list so an unknown `--detectors` entry fails
/// fast with a typed error even before a registry is assembled.
pub const KNOWN_DETECTORS: [&str; 12] = [
    "autodetect",
    "fregex",
    "pwheel",
    "dboost",
    "linear",
    "linearp",
    "cdm",
    "lsa",
    "svdd",
    "dbod",
    "lof",
    "union",
];

/// Checks `name` against [`KNOWN_DETECTORS`], returning a typed
/// [`AdtError::Config`] naming the offender and the valid choices.
pub fn validate_detector_name(name: &str) -> Result<(), AdtError> {
    if KNOWN_DETECTORS.contains(&name) {
        Ok(())
    } else {
        Err(AdtError::Config(format!(
            "unknown detector '{name}' (known: {})",
            KNOWN_DETECTORS.join(", ")
        )))
    }
}

/// A typed, validated request for one detector by configuration name.
///
/// Parsing lowercases and trims, so `" F-Regex "` and `"fregex"` both
/// resolve to the canonical `fregex`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorSpec {
    /// Canonical lowercase name, guaranteed to be in [`KNOWN_DETECTORS`].
    name: String,
}

impl DetectorSpec {
    /// Parses one detector name, normalizing case/whitespace/punctuation
    /// and validating against [`KNOWN_DETECTORS`].
    pub fn parse(raw: &str) -> Result<Self, AdtError> {
        let name: String = raw
            .trim()
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .collect::<String>()
            .to_ascii_lowercase();
        validate_detector_name(&name)?;
        Ok(DetectorSpec { name })
    }

    /// Parses a comma-separated detector list (`"autodetect,fregex,cdm"`),
    /// rejecting empties, duplicates, and unknown names.
    pub fn parse_list(raw: &str) -> Result<Vec<Self>, AdtError> {
        let mut specs: Vec<DetectorSpec> = Vec::new();
        for part in raw.split(',') {
            if part.trim().is_empty() {
                return Err(AdtError::Config(format!(
                    "empty detector name in list '{raw}'"
                )));
            }
            let spec = DetectorSpec::parse(part)?;
            if specs.contains(&spec) {
                return Err(AdtError::Config(format!(
                    "duplicate detector '{}' in list '{raw}'",
                    spec.name
                )));
            }
            specs.push(spec);
        }
        if specs.is_empty() {
            return Err(AdtError::Config("empty detector list".into()));
        }
        Ok(specs)
    }

    /// The canonical lowercase name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

type DetectorFactory = Box<dyn Fn() -> Box<dyn Detector> + Send + Sync>;

/// Constructs detectors by canonical configuration name.
///
/// `adt-core` registers `"autodetect"` (it owns the model); the baseline
/// crate layers its ten methods plus `"union"` on top via its
/// `standard_registry` helper. Factories are stored in a `BTreeMap` so
/// `names()` iteration order is deterministic.
pub struct DetectorRegistry {
    factories: BTreeMap<String, DetectorFactory>,
}

impl DetectorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DetectorRegistry {
            factories: BTreeMap::new(),
        }
    }

    /// A registry with the core `"autodetect"` detector backed by
    /// `model`.
    pub fn with_model(model: Arc<AutoDetect>) -> Self {
        let mut reg = DetectorRegistry::new();
        reg.register("autodetect", move || Box::new(Arc::clone(&model)));
        reg
    }

    /// Registers (or replaces) the factory for `name`.
    pub fn register<F>(&mut self, name: &str, factory: F)
    where
        F: Fn() -> Box<dyn Detector> + Send + Sync + 'static,
    {
        self.factories.insert(name.to_string(), Box::new(factory));
    }

    /// Whether `name` has a registered factory.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(|k| k.as_str()).collect()
    }

    /// Builds the detector registered under `spec`, or a typed
    /// [`AdtError::Config`] naming the offender.
    pub fn build(&self, spec: &DetectorSpec) -> Result<Box<dyn Detector>, AdtError> {
        match self.factories.get(spec.name()) {
            Some(f) => Ok(f()),
            None => Err(AdtError::Config(format!(
                "detector '{}' is not registered (available: {})",
                spec.name(),
                self.names().join(", ")
            ))),
        }
    }

    /// Builds one detector per spec, preserving order.
    pub fn build_set(&self, specs: &[DetectorSpec]) -> Result<Vec<Box<dyn Detector>>, AdtError> {
        specs.iter().map(|s| self.build(s)).collect()
    }
}

impl Default for DetectorRegistry {
    fn default() -> Self {
        DetectorRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn finalize_sorts_and_truncates() {
        let preds = vec![
            Prediction {
                value: "b".into(),
                confidence: 0.5,
            },
            Prediction {
                value: "a".into(),
                confidence: 0.9,
            },
            Prediction {
                value: "c".into(),
                confidence: 0.5,
            },
        ];
        let out = finalize_predictions(preds, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, "a");
        assert_eq!(out[1].value, "b"); // tie broken lexicographically
    }

    #[test]
    fn value_counts_rare_first() {
        let col = Column::from_strs(&["x", "y", "x", "", "x"], SourceTag::Csv);
        let counts = value_counts(&col);
        assert_eq!(counts, vec![("y".to_string(), 1), ("x".to_string(), 3)]);
    }

    #[test]
    fn detector_spec_normalizes_and_validates() {
        assert_eq!(DetectorSpec::parse(" F-Regex ").unwrap().name(), "fregex");
        assert_eq!(
            DetectorSpec::parse("Auto_Detect").unwrap().name(),
            "autodetect"
        );
        let err = DetectorSpec::parse("nope").unwrap_err();
        assert!(matches!(err, AdtError::Config(ref m) if m.contains("nope")));
    }

    #[test]
    fn detector_spec_list_rejects_dupes_and_empties() {
        let specs = DetectorSpec::parse_list("autodetect,fregex,cdm").unwrap();
        assert_eq!(
            specs.iter().map(|s| s.name()).collect::<Vec<_>>(),
            vec!["autodetect", "fregex", "cdm"]
        );
        assert!(DetectorSpec::parse_list("fregex,,cdm").is_err());
        assert!(DetectorSpec::parse_list("fregex,fregex").is_err());
        assert!(DetectorSpec::parse_list("").is_err());
    }

    #[test]
    fn registry_builds_by_name_and_reports_unregistered() {
        let model = Arc::new(crate::detector::testkit::tiny_model());
        let reg = DetectorRegistry::with_model(Arc::clone(&model));
        assert!(reg.contains("autodetect"));
        let spec = DetectorSpec::parse("autodetect").unwrap();
        let det = reg.build(&spec).unwrap();
        assert_eq!(det.name(), "Auto-Detect");
        assert_eq!(det.info().kind, DetectorKind::CorpusStatistics);

        let missing = DetectorSpec::parse("lof").unwrap();
        match reg.build(&missing) {
            Err(AdtError::Config(m)) => assert!(m.contains("lof")),
            Err(other) => panic!("wrong error kind: {other}"),
            Ok(_) => panic!("building an unregistered detector succeeded"),
        }
    }

    #[test]
    fn default_detect_batch_matches_per_column() {
        struct Rare;
        impl Detector for Rare {
            fn name(&self) -> &'static str {
                "Rare"
            }
            fn detect(&self, column: &Column) -> Vec<Prediction> {
                value_counts(column)
                    .into_iter()
                    .filter(|(_, c)| *c == 1)
                    .map(|(value, _)| Prediction {
                        value,
                        confidence: 1.0,
                    })
                    .collect()
            }
        }
        let cols = vec![
            Column::from_strs(&["a", "a", "b"], SourceTag::Csv),
            Column::from_strs(&["x", "x"], SourceTag::Csv),
        ];
        let batch = Rare.detect_batch(&cols);
        assert_eq!(batch.len(), 2);
        for (i, col) in cols.iter().enumerate() {
            assert_eq!(batch[i], Rare.detect(col));
        }
    }

    #[test]
    fn autodetect_batch_matches_per_column() {
        let model = crate::detector::testkit::tiny_model();
        let cols = vec![
            Column::from_strs(
                &["2019-03-01", "2019-03-02", "2019/03/04", "2019-03-05"],
                SourceTag::Csv,
            ),
            Column::from_strs(&["12", "95", "130", "88"], SourceTag::Csv),
        ];
        let batch = model.detect_batch(&cols);
        for (i, col) in cols.iter().enumerate() {
            assert_eq!(batch[i], model.detect(col), "column {i} diverged");
        }
    }
}
