//! The common detector interface.
//!
//! Moved here from `adt-baselines` so that Auto-Detect itself and every
//! baseline implement one trait: evaluation drivers and services consume
//! a uniform `dyn Detector` instead of special-casing Auto-Detect.
//! `adt-baselines` re-exports these items for compatibility.

use crate::aggregate::Aggregator;
use crate::detector::AutoDetect;
use adt_corpus::Column;
use serde::{Deserialize, Serialize};

/// One predicted error within a column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The value predicted to be an error.
    pub value: String,
    /// Method-specific confidence; higher means more suspicious. Only the
    /// ordering is comparable across columns of the *same* method.
    pub confidence: f64,
}

/// A single-column error detector.
pub trait Detector: Send + Sync {
    /// The method's display name (matching the paper's legend).
    fn name(&self) -> &'static str;

    /// Ranked error predictions for one column, most confident first.
    /// An empty vector means "column looks clean".
    fn detect(&self, column: &Column) -> Vec<Prediction>;
}

impl<T: Detector + ?Sized> Detector for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        (**self).detect(column)
    }
}

impl<T: Detector + ?Sized> Detector for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        (**self).detect(column)
    }
}

/// Auto-Detect is itself a [`Detector`]: native ST aggregation with
/// max-confidence ranking.
impl Detector for AutoDetect {
    fn name(&self) -> &'static str {
        "Auto-Detect"
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        findings_to_predictions(self.detect_column(column))
    }
}

/// Auto-Detect scored through an alternative aggregator (the Figure 8(b)
/// comparisons), adapted to the [`Detector`] interface.
pub struct AggregatedAutoDetect<'a> {
    /// The underlying trained model.
    pub model: &'a AutoDetect,
    /// The aggregation strategy to apply.
    pub aggregator: Aggregator,
    /// Display name (e.g. `"AvgNPMI"`).
    pub name: &'static str,
}

impl Detector for AggregatedAutoDetect<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn detect(&self, column: &Column) -> Vec<Prediction> {
        findings_to_predictions(self.model.detect_column_with(column, self.aggregator))
    }
}

/// Converts ranked column findings into the cross-method prediction
/// shape.
pub fn findings_to_predictions(findings: Vec<crate::detector::ColumnFinding>) -> Vec<Prediction> {
    findings
        .into_iter()
        .map(|f| Prediction {
            value: f.suspect,
            confidence: f.confidence,
        })
        .collect()
}

/// Sorts predictions by descending confidence with a deterministic
/// tie-break, truncating to `limit`.
pub fn finalize_predictions(mut preds: Vec<Prediction>, limit: usize) -> Vec<Prediction> {
    preds.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then_with(|| a.value.cmp(&b.value))
    });
    preds.truncate(limit);
    preds
}

/// Tallies distinct values with their multiplicities, sorted by frequency
/// (ascending — rare values first) then value.
pub fn value_counts(column: &Column) -> Vec<(String, usize)> {
    let mut counts: adt_stats::FxHashMap<&str, usize> = adt_stats::FxHashMap::default();
    for v in column.non_empty_values() {
        *counts.entry(v).or_insert(0) += 1;
    }
    let mut out: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(v, c)| (v.to_string(), c))
        .collect();
    out.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn finalize_sorts_and_truncates() {
        let preds = vec![
            Prediction {
                value: "b".into(),
                confidence: 0.5,
            },
            Prediction {
                value: "a".into(),
                confidence: 0.9,
            },
            Prediction {
                value: "c".into(),
                confidence: 0.5,
            },
        ];
        let out = finalize_predictions(preds, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, "a");
        assert_eq!(out[1].value, "b"); // tie broken lexicographically
    }

    #[test]
    fn value_counts_rare_first() {
        let col = Column::from_strs(&["x", "y", "x", "", "x"], SourceTag::Csv);
        let counts = value_counts(&col);
        assert_eq!(counts, vec![("y".to_string(), 1), ("x".to_string(), 3)]);
    }
}
