//! Auto-Detect: data-driven single-column error detection (the paper's
//! primary contribution).
//!
//! Pipeline (§3):
//! 1. [`training`] — distant supervision (§3.1, Appendix F): build a large
//!    labeled training set `T = T⁺ ∪ T⁻` from the corpus itself, with no
//!    human labels;
//! 2. [`calibrate`] — per-language threshold calibration (Equations 7–8):
//!    find the loosest NPMI threshold keeping precision ≥ P on `T`, and
//!    retain the precision-vs-score curve for confidence estimates;
//! 3. [`selection`] — language selection (Definition 5, Algorithm 1):
//!    greedy budgeted max-coverage over incompatible-example coverage,
//!    with the ½(1−1/e) approximation guarantee;
//! 4. [`detector`] — the end-user API: score pairs and columns with the
//!    selected ensemble, union the per-language predictions
//!    (ST aggregation), and rank by max-confidence `Q` (Appendix B);
//! 5. [`aggregate`] — the alternative aggregators of Figure 8(b)
//!    (AvgNPMI, MinNPMI, majority voting, weighted voting, best-single);
//! 6. [`model`] — the trainer that wires it all together plus JSON
//!    persistence;
//! 7. [`engine`] — the parallel [`ScanEngine`]: fans columns over scoped
//!    worker threads with per-worker pattern caches, streams large CSV
//!    inputs in bounded memory, and reports per-stage counters/timings;
//! 8. [`api`] — the shared [`Detector`] trait every method (Auto-Detect
//!    and the baselines) implements — single-column and batch detection,
//!    [`DetectorInfo`] descriptors, and the name-keyed
//!    [`DetectorRegistry`] — so evaluation drivers, the ensemble, and
//!    services consume one trait object uniformly;
//! 9. [`ensemble`] — the [`EnsembleEngine`]: runs a configurable
//!    detector set per scan with per-detector instrumentation and merges
//!    rankings under a pluggable [`MergePolicy`] (union / vote(k) /
//!    calibrated), deterministically at any thread count;
//! 10. [`online`] — the [`OnlineLearner`]: absorbs new columns into
//!     exact per-language accumulators and retrains incrementally,
//!     byte-identical to a from-scratch train on the union corpus;
//! 11. [`error`] — the typed [`AdtError`] every fallible API returns.

pub mod aggregate;
pub mod api;
pub mod calibrate;
pub mod config;
pub mod detector;
pub mod dt;
pub mod engine;
pub mod ensemble;
pub mod error;
#[cfg(test)]
mod kernel_tests;
pub mod model;
pub mod online;
pub mod selection;
pub mod training;

pub use aggregate::Aggregator;
pub use api::{
    finalize_predictions, findings_to_predictions, validate_detector_name, value_counts,
    AggregatedAutoDetect, CostClass, Detector, DetectorInfo, DetectorKind, DetectorRegistry,
    DetectorSpec, Prediction, KNOWN_DETECTORS,
};
pub use calibrate::{calibrate_language, Calibration};
pub use config::{AutoDetectConfig, AutoDetectConfigBuilder, LanguageSpace};
pub use detector::{
    AutoDetect, ColumnFinding, DetectorLane, KernelChoices, PairVerdict, PatternCache, ScanStats,
    TableFinding,
};
pub use dt::{dt_optimize, DtProblem, DtSolution};
pub use engine::{
    parallel_map, parallel_map_with, resolve_threads, CachePool, ColumnSummary, ScanEngine,
    ScanReport,
};
pub use ensemble::{EnsembleEngine, EnsembleReport, MergePolicy};
pub use error::AdtError;
pub use model::{
    calibrate_candidates, calibrate_candidates_with_report, load_model, save_model,
    select_and_assemble, train, train_with_training_set, CalibratedCandidate, TrainReport,
};
pub use online::{OnlineLearner, OnlineReport};
pub use selection::{greedy_select, CandidateSummary, SelectionResult};
pub use training::{
    build_training_set, build_training_set_with_crude, Example, Label, TrainingSet,
};
