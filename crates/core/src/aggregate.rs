//! Prediction aggregation across the selected languages.
//!
//! Auto-Detect's operational aggregation is the ST union with
//! max-confidence ranking (Appendix B): a pair is predicted incompatible
//! as soon as *one* language fires, and its rank score is
//! `Q = max_k P_k(s_k)` — languages have deliberate blind spots, so the
//! most confident one should be trusted outright. Figure 8(b) compares
//! that against naive aggregators, all implemented here.

use crate::calibrate::Calibration;
use serde::{Deserialize, Serialize};

/// An aggregation strategy over per-language NPMI scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregator {
    /// Auto-Detect: union firing, max-confidence ranking (Equation 11).
    AutoDetect,
    /// Rank by the negated average NPMI across languages.
    AvgNpmi,
    /// Rank by the negated minimum NPMI across languages.
    MinNpmi,
    /// Majority voting: one 0/1 vote per language (`s_k ≤ θ_k`).
    MajorityVote,
    /// Weighted majority voting: votes weighted by `θ_k − s_k` margin.
    WeightedMajorityVote,
    /// The single language at the given position (BestOne baseline).
    BestOne(usize),
}

impl Aggregator {
    /// All comparison aggregators for Figure 8(b) given the index of the
    /// best single language.
    pub fn figure8b_suite(best_one: usize) -> Vec<(&'static str, Aggregator)> {
        vec![
            ("Auto-Detect", Aggregator::AutoDetect),
            ("AvgNPMI", Aggregator::AvgNpmi),
            ("MinNPMI", Aggregator::MinNpmi),
            ("MV", Aggregator::MajorityVote),
            ("WMV", Aggregator::WeightedMajorityVote),
            ("BestOne", Aggregator::BestOne(best_one)),
        ]
    }

    /// Suspicion score for a pair: higher means more likely an error.
    ///
    /// `scores[k]` is `s_k(u, v)`; `calibrations[k]` the language's
    /// calibration. The scale differs per aggregator (only ranking order
    /// matters for precision@k).
    pub fn suspicion(&self, scores: &[f64], calibrations: &[&Calibration]) -> f64 {
        debug_assert_eq!(scores.len(), calibrations.len());
        if scores.is_empty() {
            return 0.0;
        }
        match self {
            Aggregator::AutoDetect => scores
                .iter()
                .zip(calibrations.iter().copied())
                .map(|(&s, c)| c.precision_at(s))
                .fold(0.0, f64::max),
            Aggregator::AvgNpmi => -(scores.iter().sum::<f64>() / scores.len() as f64),
            Aggregator::MinNpmi => -scores.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregator::MajorityVote => scores
                .iter()
                .zip(calibrations.iter().copied())
                .filter(|(&s, c)| c.fires(s))
                .count() as f64,
            Aggregator::WeightedMajorityVote => scores
                .iter()
                .zip(calibrations.iter().copied())
                .filter(|(&s, c)| c.fires(s))
                .map(|(&s, c)| c.theta.expect("fired implies theta") - s)
                .sum(),
            Aggregator::BestOne(k) => {
                let k = (*k).min(scores.len() - 1);
                calibrations[k].precision_at(scores[k])
            }
        }
    }

    /// Binary incompatibility decision for a pair.
    ///
    /// Auto-Detect, MV, WMV and BestOne use the calibrated thresholds; the
    /// NPMI-averaging aggregators (which the paper notes cannot be
    /// compared across languages without calibration) flag when their
    /// pooled score is negative.
    pub fn flags(&self, scores: &[f64], calibrations: &[&Calibration]) -> bool {
        if scores.is_empty() {
            return false;
        }
        match self {
            Aggregator::AutoDetect => scores
                .iter()
                .zip(calibrations.iter().copied())
                .any(|(&s, c)| c.fires(s)),
            Aggregator::AvgNpmi | Aggregator::MinNpmi => self.suspicion(scores, calibrations) > 0.0,
            Aggregator::MajorityVote => {
                let votes = self.suspicion(scores, calibrations);
                votes * 2.0 > scores.len() as f64
            }
            Aggregator::WeightedMajorityVote => self.suspicion(scores, calibrations) > 0.0,
            Aggregator::BestOne(k) => {
                let k = (*k).min(scores.len() - 1);
                calibrations[k].fires(scores[k])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal(theta: Option<f64>, curve: Vec<(f64, f64)>) -> Calibration {
        Calibration {
            theta,
            precision_at_theta: curve.last().map(|&(_, p)| p).unwrap_or(0.0),
            covered_negatives: Vec::new(),
            covered_positives: 0,
            curve,
        }
    }

    fn two_langs_owned() -> Vec<Calibration> {
        vec![
            cal(Some(-0.5), vec![(-1.0, 1.0), (-0.5, 0.9), (0.5, 0.3)]),
            cal(Some(-0.6), vec![(-1.0, 0.95), (-0.6, 0.8), (0.5, 0.2)]),
        ]
    }

    #[test]
    fn autodetect_trusts_most_confident_language() {
        let owned = two_langs_owned();
        let cals: Vec<&Calibration> = owned.iter().collect();
        // Language 0 very confident (-0.9), language 1 sees nothing (0.4):
        // the union must still flag and rank by language 0's confidence.
        let scores = [-0.9, 0.4];
        let agg = Aggregator::AutoDetect;
        assert!(agg.flags(&scores, &cals));
        let q = agg.suspicion(&scores, &cals);
        assert!((q - 1.0).abs() < 1e-9, "q = {q}");
    }

    #[test]
    fn avg_dilutes_single_confident_signal() {
        let owned = two_langs_owned();
        let cals: Vec<&Calibration> = owned.iter().collect();
        let scores = [-0.9, 1.0];
        // Average is ~0.05 -> not flagged by AvgNPMI even though L0 fired.
        assert!(!Aggregator::AvgNpmi.flags(&scores, &cals));
        assert!(Aggregator::AutoDetect.flags(&scores, &cals));
    }

    #[test]
    fn min_npmi_tracks_worst_score() {
        let owned = two_langs_owned();
        let cals: Vec<&Calibration> = owned.iter().collect();
        let s = Aggregator::MinNpmi.suspicion(&[-0.9, 1.0], &cals);
        assert!((s - 0.9).abs() < 1e-9);
    }

    #[test]
    fn majority_vote_requires_more_than_half() {
        let owned = two_langs_owned();
        let cals: Vec<&Calibration> = owned.iter().collect();
        // Only one of two fires -> no majority.
        assert!(!Aggregator::MajorityVote.flags(&[-0.9, 0.4], &cals));
        // Both fire.
        assert!(Aggregator::MajorityVote.flags(&[-0.9, -0.9], &cals));
    }

    #[test]
    fn weighted_vote_uses_margin() {
        let owned = two_langs_owned();
        let cals: Vec<&Calibration> = owned.iter().collect();
        let weak = Aggregator::WeightedMajorityVote.suspicion(&[-0.51, 1.0], &cals);
        let strong = Aggregator::WeightedMajorityVote.suspicion(&[-0.99, 1.0], &cals);
        assert!(strong > weak);
    }

    #[test]
    fn best_one_ignores_other_languages() {
        let owned = two_langs_owned();
        let cals: Vec<&Calibration> = owned.iter().collect();
        let agg = Aggregator::BestOne(1);
        // Language 0 fires strongly but BestOne(1) only looks at lang 1.
        assert!(!agg.flags(&[-0.99, 0.4], &cals));
        assert!(agg.flags(&[0.9, -0.7], &cals));
    }

    #[test]
    fn unfired_language_with_no_theta_never_flags() {
        let owned = [cal(None, vec![(-1.0, 0.5)])];
        let cals: Vec<&Calibration> = owned.iter().collect();
        assert!(!Aggregator::AutoDetect.flags(&[-1.0], &cals));
    }

    #[test]
    fn empty_scores_are_clean() {
        for agg in [
            Aggregator::AutoDetect,
            Aggregator::AvgNpmi,
            Aggregator::MinNpmi,
            Aggregator::MajorityVote,
            Aggregator::WeightedMajorityVote,
            Aggregator::BestOne(0),
        ] {
            assert!(!agg.flags(&[], &[]));
            assert_eq!(agg.suspicion(&[], &[]), 0.0);
        }
    }

    #[test]
    fn figure8b_suite_contains_all_six() {
        let suite = Aggregator::figure8b_suite(2);
        assert_eq!(suite.len(), 6);
        assert_eq!(suite[0].0, "Auto-Detect");
        assert!(matches!(suite[5].1, Aggregator::BestOne(2)));
    }
}
