//! Distant-supervision training data (§3.1 and Appendix F).
//!
//! No human labels: compatible pairs `T⁺` are sampled from columns whose
//! values are verified statistically compatible under the crude
//! generalization `G()`; incompatible pairs `T⁻` come from mixing a value
//! `u` of one compatible column into another compatible column `C₂`,
//! pruning mixes where `u` is accidentally compatible with `C₂`.

use crate::config::AutoDetectConfig;
use adt_corpus::Corpus;
use adt_patterns::crude::crude_language;
use adt_stats::{LanguageStats, NpmiParams};
use rand::prelude::IndexedRandom;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Ground-truth label of a training example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Label {
    /// The pair is compatible (sampled from one compatible column).
    Compatible,
    /// The pair is incompatible (synthesized by cross-column mixing).
    Incompatible,
}

/// One training example `t = (u, v, ±)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Example {
    /// First value.
    pub u: String,
    /// Second value.
    pub v: String,
    /// Distant-supervision label.
    pub label: Label,
}

/// The training set `T = T⁺ ∪ T⁻`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingSet {
    /// All examples; positives and negatives interleaved.
    pub examples: Vec<Example>,
}

impl TrainingSet {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Number of incompatible examples (`|T⁻|`).
    pub fn negatives(&self) -> usize {
        self.examples
            .iter()
            .filter(|e| e.label == Label::Incompatible)
            .count()
    }

    /// Number of compatible examples (`|T⁺|`).
    pub fn positives(&self) -> usize {
        self.len() - self.negatives()
    }
}

/// Returns true when every distinct-value pair of the column scores above
/// `threshold` under the crude statistics — the `C⁺` membership test.
///
/// Columns with a single distinct pattern pass trivially; columns with
/// more than `max_check` distinct values are tested on a subsample.
fn is_compatible_column(
    values: &[&str],
    crude: &LanguageStats,
    params: NpmiParams,
    threshold: f64,
    max_check: usize,
) -> bool {
    let n = values.len().min(max_check);
    for i in 0..n {
        for j in (i + 1)..n {
            if crude.score_values(values[i], values[j], params) <= threshold {
                return false;
            }
        }
    }
    true
}

/// Builds the training set from `corpus` per Appendix F.
///
/// Also returns the crude-`G` statistics (reused by callers that need the
/// same compatibility oracle, e.g. auto-evaluation test-case generation).
pub fn build_training_set(
    corpus: &Corpus,
    config: &AutoDetectConfig,
) -> (TrainingSet, LanguageStats) {
    let crude = LanguageStats::build(crude_language(), corpus, &config.stats);
    let set = build_training_set_with_crude(corpus, config, &crude);
    (set, crude)
}

/// [`build_training_set`] against caller-provided crude statistics.
///
/// `crude` must equal `LanguageStats::build(crude_language(), corpus,
/// &config.stats)` for the result to match [`build_training_set`] — the
/// online learner maintains exactly that equality incrementally, which is
/// what makes absorb-then-retrain byte-identical to a from-scratch train.
pub fn build_training_set_with_crude(
    corpus: &Corpus,
    config: &AutoDetectConfig,
    crude: &LanguageStats,
) -> TrainingSet {
    let params = config.npmi;
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Pass 1: find compatible columns C+ (indices into the corpus).
    let mut compatible: Vec<usize> = Vec::new();
    for (i, col) in corpus.columns().iter().enumerate() {
        let distinct: Vec<&str> = col
            .distinct_values()
            .into_iter()
            .filter(|v| !v.is_empty())
            .collect();
        if distinct.len() < 2 {
            continue;
        }
        if is_compatible_column(&distinct, crude, params, config.compat_threshold, 12) {
            compatible.push(i);
        }
    }

    let mut set = TrainingSet::default();
    if compatible.len() < 2 {
        return set;
    }

    let target = config.training_examples;
    let half = target / 2;
    set.examples.reserve(target);

    // T+: pairs of values from the same compatible column. Half the
    // positives are *hard*: the lowest-scoring pair of a sampled column.
    // Detection evaluates every pair of a column and surfaces the most
    // incompatible one, so the deployed score distribution is the
    // per-column minimum — calibrating only on uniformly random pairs
    // would leave thresholds above the scores that sparse-but-legitimate
    // pattern combinations reach (extreme-value distribution shift).
    let mut guard = 0usize;
    while set.positives() < half && guard < half * 20 {
        guard += 1;
        let &ci = compatible.choose(&mut rng).expect("non-empty");
        let col = &corpus.columns()[ci];
        let distinct: Vec<&str> = col
            .distinct_values()
            .into_iter()
            .filter(|v| !v.is_empty())
            .collect();
        if distinct.len() < 2 {
            continue;
        }
        let (a, b) = if guard.is_multiple_of(2) {
            // Hard positive: the minimum crude-NPMI pair of (a sample of)
            // the column.
            let n = distinct.len().min(10);
            let mut best: Option<(f64, &str, &str)> = None;
            for i in 0..n {
                for j in (i + 1)..n {
                    let s = crude.score_values(distinct[i], distinct[j], params);
                    let better = match best {
                        Some((b, _, _)) => s < b,
                        None => true,
                    };
                    if better {
                        best = Some((s, distinct[i], distinct[j]));
                    }
                }
            }
            let (_, a, b) = best.expect("at least one pair");
            (a, b)
        } else {
            let a = *distinct.choose(&mut rng).expect("non-empty");
            let b = *distinct.choose(&mut rng).expect("non-empty");
            if a == b {
                continue;
            }
            (a, b)
        };
        set.examples.push(Example {
            u: a.to_string(),
            v: b.to_string(),
            label: Label::Compatible,
        });
    }

    // T-: mix u from C1 into C2; prune accidental compatibility.
    let mut guard = 0usize;
    let negatives_per_mix = 4usize;
    while set.negatives() < half && guard < half * 20 {
        guard += 1;
        let &c1 = compatible.choose(&mut rng).expect("non-empty");
        let &c2 = compatible.choose(&mut rng).expect("non-empty");
        if c1 == c2 {
            continue;
        }
        let col1 = &corpus.columns()[c1];
        let col2 = &corpus.columns()[c2];
        let u = match col1.non_empty_values().collect::<Vec<_>>().choose(&mut rng) {
            Some(&u) => u,
            None => continue,
        };
        let distinct2: Vec<&str> = col2
            .distinct_values()
            .into_iter()
            .filter(|v| !v.is_empty())
            .collect();
        if distinct2.is_empty() {
            continue;
        }
        // Appendix F pruning: drop the mix if u is plausibly compatible
        // with any value of C2 under crude statistics. Checked on the
        // values we would actually emit plus a subsample of the rest.
        let accidental = distinct2
            .iter()
            .take(12)
            .any(|v| crude.score_values(u, v, params) >= config.negative_prune_threshold);
        if accidental {
            continue;
        }
        for v in distinct2.choose_multiple(&mut rng, negatives_per_mix) {
            if set.negatives() >= half {
                break;
            }
            if crude.score_values(u, v, params) >= config.negative_prune_threshold {
                continue;
            }
            set.examples.push(Example {
                u: u.to_string(),
                v: (*v).to_string(),
                label: Label::Incompatible,
            });
        }
    }

    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::{generate_corpus, CorpusProfile};

    fn test_corpus() -> Corpus {
        let mut p = CorpusProfile::web(800);
        p.dirty_rate = 0.0;
        generate_corpus(&p)
    }

    fn small_config() -> AutoDetectConfig {
        AutoDetectConfig {
            training_examples: 2_000,
            ..AutoDetectConfig::small()
        }
    }

    #[test]
    fn builds_balanced_training_set() {
        let corpus = test_corpus();
        let (set, _) = build_training_set(&corpus, &small_config());
        assert!(set.len() >= 1_000, "got {}", set.len());
        let neg = set.negatives();
        let pos = set.positives();
        assert!(pos > 0 && neg > 0);
        // Roughly balanced.
        let ratio = pos as f64 / neg as f64;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn positives_mostly_same_pattern_family() {
        // Compatible pairs should score >= 0 under crude stats by
        // construction (they passed the column-level test).
        let corpus = test_corpus();
        let cfg = small_config();
        let (set, crude) = build_training_set(&corpus, &cfg);
        let violations = set
            .examples
            .iter()
            .filter(|e| e.label == Label::Compatible)
            .filter(|e| crude.score_values(&e.u, &e.v, cfg.npmi) <= cfg.compat_threshold)
            .count();
        // The column-level test subsamples pairs, so allow a small slack.
        assert!(
            (violations as f64) < 0.1 * set.positives() as f64,
            "{violations}/{}",
            set.positives()
        );
    }

    #[test]
    fn negatives_are_crudely_incompatible() {
        let corpus = test_corpus();
        let cfg = small_config();
        let (set, crude) = build_training_set(&corpus, &cfg);
        for e in set
            .examples
            .iter()
            .filter(|e| e.label == Label::Incompatible)
        {
            let s = crude.score_values(&e.u, &e.v, cfg.npmi);
            assert!(
                s < cfg.negative_prune_threshold,
                "negative ({}, {}) scored {s}",
                e.u,
                e.v
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = test_corpus();
        let cfg = small_config();
        let (a, _) = build_training_set(&corpus, &cfg);
        let (b, _) = build_training_set(&corpus, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.examples.iter().zip(&b.examples) {
            assert_eq!((&x.u, &x.v, x.label), (&y.u, &y.v, y.label));
        }
    }

    #[test]
    fn empty_corpus_yields_empty_set() {
        let corpus = Corpus::new();
        let (set, _) = build_training_set(&corpus, &small_config());
        assert!(set.is_empty());
    }

    #[test]
    fn compatible_column_test_rejects_mixed_formats() {
        let corpus = test_corpus();
        let cfg = small_config();
        let crude = LanguageStats::build(crude_language(), &corpus, &cfg.stats);
        assert!(!is_compatible_column(
            &["2011-01-01", "2011/02/02"],
            &crude,
            cfg.npmi,
            cfg.compat_threshold,
            12
        ));
        assert!(is_compatible_column(
            &["2011-01-01", "2012-03-04"],
            &crude,
            cfg.npmi,
            cfg.compat_threshold,
            12
        ));
    }
}
