//! Differential tests: the pattern-group kernel versus the naive
//! value-pair reference scan.
//!
//! The group kernel's contract is *byte-identical findings* — same
//! suspects, witnesses, confidences, scores, ordering — and identical
//! pair counters, on every column shape: duplicate-heavy, all-distinct,
//! degree-tied, degenerate calibrations, exact and sketched
//! co-occurrence backends, warm and cold caches. Randomized shapes use a
//! fixed-seed RNG so failures replay.

use crate::aggregate::Aggregator;
use crate::detector::testkit::tiny_model;
use crate::detector::{AutoDetect, PatternCache, ScanStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Families of values that collide heavily at the pattern level under
/// the tiny model's languages.
fn random_value(rng: &mut StdRng) -> String {
    match rng.random_range(0..7u32) {
        0 => format!("{}", 1900 + rng.random_range(0..120u32)),
        1 => format!(
            "{},{:03}",
            1 + rng.random_range(0..9u32),
            rng.random_range(0..1000u32)
        ),
        2 => format!(
            "20{:02}-{:02}-{:02}",
            rng.random_range(0..30u32),
            1 + rng.random_range(0..12u32),
            1 + rng.random_range(0..28u32)
        ),
        3 => format!(
            "20{:02}/{:02}/{:02}",
            rng.random_range(0..30u32),
            1 + rng.random_range(0..12u32),
            1 + rng.random_range(0..28u32)
        ),
        4 => format!("w{}", rng.random_range(0..50u32)),
        5 => format!("{}", rng.random_range(0..10_000u32)),
        // All-distinct tail: unique shapes, one pattern group each.
        _ => {
            let len = 1 + rng.random_range(0..6u32);
            let mut s = String::new();
            for _ in 0..len {
                let c = match rng.random_range(0..3u32) {
                    0 => char::from(b'a' + (rng.random_range(0..26u32) as u8)),
                    1 => char::from(b'0' + (rng.random_range(0..10u32) as u8)),
                    _ => ['-', '/', ',', '.'][rng.random_range(0..4u32) as usize],
                };
                s.push(c);
            }
            s
        }
    }
}

/// A random distinct-value multiset: `d` values with counts 1..=4.
/// Duplicate value strings are merged (scan_value_counts requires each
/// distinct value once).
fn random_counts(rng: &mut StdRng, d: usize) -> Vec<(String, usize)> {
    let mut counts: Vec<(String, usize)> = Vec::new();
    while counts.len() < d {
        let v = random_value(rng);
        let c = 1 + rng.random_range(0..4u32) as usize;
        match counts.iter_mut().find(|(u, _)| *u == v) {
            Some((_, existing)) => *existing += c,
            None => counts.push((v, c)),
        }
    }
    counts
}

fn assert_counters_match(group: &ScanStats, reference: &ScanStats, ctx: &str) {
    assert_eq!(group.values_scored, reference.values_scored, "{ctx}");
    assert_eq!(group.pairs_scored, reference.pairs_scored, "{ctx}");
    assert_eq!(group.pairs_flagged, reference.pairs_flagged, "{ctx}");
    assert_eq!(group.pairs_pruned, reference.pairs_pruned, "{ctx}");
    assert_eq!(
        group.findings_per_language, reference.findings_per_language,
        "{ctx}"
    );
    // The kernel's whole point: never more probes than the naive path.
    assert!(
        group.npmi_probes + group.npmi_memo_hits <= reference.npmi_probes,
        "{ctx}: group demanded {} + {} scores, reference probed {}",
        group.npmi_probes,
        group.npmi_memo_hits,
        reference.npmi_probes
    );
}

/// Runs both kernels on `counts` and asserts byte-identical output.
/// `warm_cache` lets callers thread one group-path cache across many
/// columns, proving memo reuse never leaks into findings.
fn assert_kernels_agree(
    model: &AutoDetect,
    counts: &[(String, usize)],
    aggregator: Aggregator,
    warm_cache: &mut PatternCache,
    ctx: &str,
) {
    let (got, got_stats) = model.scan_value_counts(counts, aggregator, warm_cache);
    let mut ref_cache = PatternCache::new();
    let (want, want_stats) = model.scan_value_counts_reference(counts, aggregator, &mut ref_cache);
    assert_eq!(
        format!("{got:?}"),
        format!("{want:?}"),
        "{ctx}: findings diverged"
    );
    assert_counters_match(&got_stats, &want_stats, ctx);
    // And a cold group-path cache agrees with the warm one.
    let (cold, _) = model.scan_value_counts(counts, aggregator, &mut PatternCache::new());
    assert_eq!(
        format!("{cold:?}"),
        format!("{got:?}"),
        "{ctx}: cache state leaked into findings"
    );
}

#[test]
fn random_columns_match_reference_exact_backend() {
    let model = tiny_model();
    let mut rng = StdRng::seed_from_u64(0xAD7_0001);
    let mut warm = PatternCache::new();
    for case in 0..60 {
        let d = rng.random_range(0..40u32) as usize;
        let counts = random_counts(&mut rng, d);
        assert_kernels_agree(
            &model,
            &counts,
            Aggregator::AutoDetect,
            &mut warm,
            &format!("exact case {case} (d={d})"),
        );
    }
    assert!(warm.memo_hits() > 0, "warm cache never amortized anything");
}

#[test]
fn random_columns_match_reference_sketch_backend() {
    let mut model = tiny_model();
    for l in &mut model.languages {
        l.stats.compress_cooccurrence(adt_stats::SketchSpec {
            budget_bytes: 1 << 14,
            ..adt_stats::SketchSpec::default()
        });
    }
    let mut rng = StdRng::seed_from_u64(0xAD7_0002);
    let mut warm = PatternCache::new();
    for case in 0..40 {
        let d = rng.random_range(0..32u32) as usize;
        let counts = random_counts(&mut rng, d);
        assert_kernels_agree(
            &model,
            &counts,
            Aggregator::AutoDetect,
            &mut warm,
            &format!("sketch case {case} (d={d})"),
        );
    }
}

#[test]
fn random_columns_match_reference_across_aggregators() {
    let model = tiny_model();
    for (ai, aggregator) in [
        Aggregator::AvgNpmi,
        Aggregator::MinNpmi,
        Aggregator::MajorityVote,
        Aggregator::WeightedMajorityVote,
        Aggregator::BestOne(0),
    ]
    .into_iter()
    .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(0xAD7_0100 + ai as u64);
        let mut warm = PatternCache::new();
        for case in 0..12 {
            let d = rng.random_range(0..24u32) as usize;
            let counts = random_counts(&mut rng, d);
            assert_kernels_agree(
                &model,
                &counts,
                aggregator,
                &mut warm,
                &format!("aggregator {aggregator:?} case {case} (d={d})"),
            );
        }
    }
}

#[test]
fn all_distinct_worst_case_matches_reference() {
    // Every value its own pattern group: d′ = d, the kernel degrades to
    // the reference's probe count but must stay byte-identical.
    let model = tiny_model();
    let mut counts: Vec<(String, usize)> = Vec::new();
    for i in 0..20usize {
        // Unique run-length shapes: i+1 letters then i digits.
        let v = format!("{}{}", "x".repeat(i + 1), "7".repeat(i));
        counts.push((v, 1));
    }
    let mut warm = PatternCache::new();
    assert_kernels_agree(
        &model,
        &counts,
        Aggregator::AutoDetect,
        &mut warm,
        "all-distinct",
    );
    let (_, stats) =
        model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut PatternCache::new());
    // Crude language sees 20 distinct patterns; L1's \A[2i+1] run
    // lengths are distinct too, so d′ = d under every language and the
    // adaptive scan takes the direct kernel here.
    assert_eq!(stats.groups_per_language.len(), 2);
    assert!(stats.groups_per_language[0] >= 19);
    assert_eq!(stats.kernel_choices.direct, 1);
    assert_eq!(stats.kernel_choices.group, 0);
}

#[test]
fn adaptive_threshold_is_min_over_languages() {
    // Constant total length: L1 collapses every value to \A[21] (one
    // group) while the crude language keeps all 20 distinct. The
    // threshold takes the min ratio, so one collapsing language is
    // enough to keep the group kernel — and its single-group probe
    // savings.
    let model = tiny_model();
    let counts: Vec<(String, usize)> = (0..20usize)
        .map(|i| (format!("{}{}", "x".repeat(i + 1), "7".repeat(20 - i)), 1))
        .collect();
    let mut warm = PatternCache::new();
    assert_kernels_agree(
        &model,
        &counts,
        Aggregator::AutoDetect,
        &mut warm,
        "min-over-languages",
    );
    let (_, stats) =
        model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut PatternCache::new());
    assert_eq!(stats.groups_per_language[1], 1);
    assert_eq!(stats.kernel_choices.group, 1);
    assert_eq!(stats.kernel_choices.direct, 0);
}

#[test]
fn adaptive_kernel_choice_is_data_driven() {
    let model = tiny_model();
    // Unique symbol-run length per value: even L1 (symbols literal)
    // keeps every value a distinct pattern, so d′ = d under every
    // language and the scan must take the direct kernel.
    let distinct: Vec<(String, usize)> = (0..12usize)
        .map(|i| (format!("{}{}", "x".repeat(i + 1), "-".repeat(i + 1)), 1))
        .collect();
    let mut warm = PatternCache::new();
    assert_kernels_agree(
        &model,
        &distinct,
        Aggregator::AutoDetect,
        &mut warm,
        "direct shape",
    );
    let (_, stats) =
        model.scan_value_counts(&distinct, Aggregator::AutoDetect, &mut PatternCache::new());
    assert_eq!(
        (stats.kernel_choices.direct, stats.kernel_choices.group),
        (1, 0),
        "all-languages-distinct shape must score directly"
    );
    // A duplicate-heavy column (one pattern group per language) keeps
    // the group kernel.
    let dupes: Vec<(String, usize)> = (0..12usize).map(|i| (format!("{}", 1990 + i), 2)).collect();
    let (_, stats) =
        model.scan_value_counts(&dupes, Aggregator::AutoDetect, &mut PatternCache::new());
    assert_eq!(
        (stats.kernel_choices.direct, stats.kernel_choices.group),
        (0, 1),
        "duplicate-heavy shape must keep the group kernel"
    );
}

#[test]
fn direct_kernel_matches_reference_across_aggregators() {
    // Shapes engineered so every language keeps d′ = d (unique symbol-run
    // length per value), pinning the adaptive scan onto the direct kernel
    // under each aggregator — findings must stay byte-identical.
    let model = tiny_model();
    for (ai, aggregator) in [
        Aggregator::AutoDetect,
        Aggregator::AvgNpmi,
        Aggregator::MinNpmi,
        Aggregator::MajorityVote,
        Aggregator::WeightedMajorityVote,
        Aggregator::BestOne(0),
    ]
    .into_iter()
    .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(0xAD7_0200 + ai as u64);
        let mut warm = PatternCache::new();
        for case in 0..8 {
            let d = 4 + rng.random_range(0..16u32) as usize;
            let counts: Vec<(String, usize)> = (0..d)
                .map(|i| {
                    let letters = 1 + rng.random_range(0..3u32) as usize;
                    let digits = 1 + rng.random_range(0..3u32) as usize;
                    let count = 1 + rng.random_range(0..4u32) as usize;
                    (
                        format!(
                            "{}{}{}",
                            "x".repeat(letters),
                            "-".repeat(i + 1),
                            "7".repeat(digits)
                        ),
                        count,
                    )
                })
                .collect();
            let ctx = format!("direct {aggregator:?} case {case} (d={d})");
            assert_kernels_agree(&model, &counts, aggregator, &mut warm, &ctx);
            let (_, stats) = model.scan_value_counts(&counts, aggregator, &mut PatternCache::new());
            assert_eq!(stats.kernel_choices.direct, 1, "{ctx}");
        }
    }
}

#[test]
fn direct_kernel_handles_pattern_collisions_and_ties() {
    // Distinct strings that generalize identically under every language:
    // the direct kernel serves their pair from the matrix diagonal
    // (exact 1.0, matching the reference's identical-pattern early
    // return), and their symmetric counts force the compat/occurrence
    // tie-break path.
    let model = tiny_model();
    let mut counts: Vec<(String, usize)> = (0..10usize)
        .map(|i| (format!("{}-{}", "x".repeat(i + 2), "7".repeat(i + 2)), 1))
        .collect();
    counts.push(("ab-12".into(), 2));
    counts.push(("cd-34".into(), 2));
    let mut warm = PatternCache::new();
    assert_kernels_agree(
        &model,
        &counts,
        Aggregator::AutoDetect,
        &mut warm,
        "direct collisions",
    );
    let (_, stats) =
        model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut PatternCache::new());
    assert_eq!(stats.kernel_choices.direct, 1);
}

#[test]
fn degree_ties_take_reference_tiebreaks() {
    // Two equally-weighted pattern classes flag each other: every degree
    // ties, forcing the compat/occurrence fallback path.
    let model = tiny_model();
    let mut warm = PatternCache::new();
    for (ctx, counts) in [
        (
            "2v2",
            vec![("2011-01-01".to_string(), 2), ("2014/04/04".to_string(), 2)],
        ),
        (
            "balanced classes",
            vec![
                ("2011-01-01".to_string(), 1),
                ("2012-02-02".to_string(), 1),
                ("2014/04/04".to_string(), 1),
                ("2015/05/05".to_string(), 1),
            ],
        ),
        (
            "self-symmetric",
            vec![
                ("2011-01-01".to_string(), 3),
                ("2014/04/04".to_string(), 3),
                ("2015/05/05".to_string(), 3),
            ],
        ),
    ] {
        assert_kernels_agree(&model, &counts, Aggregator::AutoDetect, &mut warm, ctx);
    }
}

#[test]
fn degenerate_threshold_flags_intra_class_pairs_identically() {
    // θ ≥ 1.0 fires on *every* pair, including identical-pattern ones —
    // the intra-class path where per-value degrees stop being uniform
    // within a class. The kernel must fall back to per-pair attribution
    // and still match the reference exactly.
    let mut model = tiny_model();
    for l in &mut model.languages {
        l.calibration.theta = Some(1.5);
    }
    let mut rng = StdRng::seed_from_u64(0xAD7_0003);
    let mut warm = PatternCache::new();
    for case in 0..15 {
        let d = rng.random_range(0..16u32) as usize;
        let counts = random_counts(&mut rng, d);
        assert_kernels_agree(
            &model,
            &counts,
            Aggregator::AutoDetect,
            &mut warm,
            &format!("degenerate case {case} (d={d})"),
        );
    }
}

#[test]
fn distinct_cap_prunes_identically() {
    let mut model = tiny_model();
    model.max_distinct_values = 8;
    let mut rng = StdRng::seed_from_u64(0xAD7_0004);
    let mut warm = PatternCache::new();
    for case in 0..10 {
        let counts = random_counts(&mut rng, 30);
        assert_kernels_agree(
            &model,
            &counts,
            Aggregator::AutoDetect,
            &mut warm,
            &format!("capped case {case}"),
        );
    }
}

#[test]
fn duplicate_heavy_columns_collapse_probes() {
    // The headline claim: on wide duplicate-pattern columns the group
    // kernel needs a small fraction of the reference's probes (≥3× fewer
    // as demanded, typically far better).
    let model = tiny_model();
    let counts: Vec<(String, usize)> = (0..48)
        .map(|i| (format!("{}", 1900 + i), 1usize))
        .chain((0..2).map(|i| (format!("20{i:02}/01/01"), 1usize)))
        .collect();
    let (_, group) =
        model.scan_value_counts(&counts, Aggregator::AutoDetect, &mut PatternCache::new());
    let (_, reference) = model.scan_value_counts_reference(
        &counts,
        Aggregator::AutoDetect,
        &mut PatternCache::new(),
    );
    assert_eq!(reference.npmi_probes, 2 * (50 * 49 / 2));
    assert!(
        group.npmi_probes * 3 <= reference.npmi_probes,
        "group {} vs reference {}",
        group.npmi_probes,
        reference.npmi_probes
    );
}
