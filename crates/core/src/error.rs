//! Typed errors for the Auto-Detect public API.
//!
//! Replaces the stringly `io::Error::other` / `InvalidData` returns that
//! model persistence used to produce, and the `expect(...)` panics on
//! worker-thread joins in training and scanning.

use std::fmt;
use std::io;

/// Everything that can go wrong in the Auto-Detect public API.
#[derive(Debug)]
pub enum AdtError {
    /// An underlying I/O failure (file open, read, write).
    Io(io::Error),
    /// JSON (de)serialization of a model or report failed.
    Json(String),
    /// A binary model file failed structural validation.
    Corrupt(String),
    /// A configuration value failed validation (see
    /// [`crate::AutoDetectConfig::builder`]).
    Config(String),
    /// A CSV input could not be parsed/streamed.
    Csv(String),
    /// A worker thread panicked inside the named parallel section.
    Worker(&'static str),
    /// No model file exists at the path given to
    /// [`crate::model::load_model`].
    ModelNotFound(String),
    /// A model file exists but could not be read as a model (truncated,
    /// corrupt, or not a model at all). Carries the offending path so
    /// servers can surface it to clients.
    ModelParse {
        /// The file that failed to parse.
        path: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for AdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdtError::Io(e) => write!(f, "I/O error: {e}"),
            AdtError::Json(m) => write!(f, "model JSON error: {m}"),
            AdtError::Corrupt(m) => write!(f, "corrupt model: {m}"),
            AdtError::Config(m) => write!(f, "invalid configuration: {m}"),
            AdtError::Csv(m) => write!(f, "CSV error: {m}"),
            AdtError::Worker(section) => write!(f, "worker thread panicked in {section}"),
            AdtError::ModelNotFound(path) => write!(f, "model file not found: {path}"),
            AdtError::ModelParse { path, detail } => {
                write!(f, "model file {path} could not be parsed: {detail}")
            }
        }
    }
}

impl std::error::Error for AdtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for AdtError {
    fn from(e: io::Error) -> Self {
        AdtError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AdtError::Config("precision_target must be in (0, 1]".into());
        assert!(e.to_string().contains("precision_target"));
        let e = AdtError::Worker("scan_columns");
        assert!(e.to_string().contains("scan_columns"));
    }

    #[test]
    fn model_errors_name_the_path() {
        let e = AdtError::ModelNotFound("/models/prod.bin".into());
        assert!(e.to_string().contains("/models/prod.bin"));
        assert!(e.to_string().contains("not found"));
        let e = AdtError::ModelParse {
            path: "/models/prod.bin".into(),
            detail: "bad model magic".into(),
        };
        let text = e.to_string();
        assert!(text.contains("/models/prod.bin"), "{text}");
        assert!(text.contains("bad model magic"), "{text}");
    }

    #[test]
    fn io_conversion_preserves_source() {
        let e: AdtError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, AdtError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
