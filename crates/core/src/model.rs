//! End-to-end training: distant supervision → per-candidate calibration →
//! greedy selection → final model assembly, plus JSON persistence.

use crate::calibrate::{calibrate_language, Calibration};
use crate::config::AutoDetectConfig;
use crate::detector::{AutoDetect, SelectedLanguage};
use crate::error::AdtError;
use crate::selection::{greedy_select, CandidateSummary, SelectionResult};
use crate::training::{build_training_set, TrainingSet};
use adt_corpus::Corpus;
use adt_patterns::{Pattern, PatternHash};
use adt_stats::{LanguageStats, PipelineReport, StatsError};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

pub(crate) fn pipeline_error(e: StatsError) -> AdtError {
    match e {
        StatsError::WorkerPanicked(phase) => AdtError::Worker(phase),
        StatsError::Merge(msg) => AdtError::Worker(msg),
    }
}

/// Per-candidate training diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateReport {
    /// Stable language id (see [`adt_patterns::Language::id`]).
    pub language_id: String,
    /// Exact statistics size in bytes.
    pub size_bytes: usize,
    /// Calibrated threshold, when one met the precision target.
    pub theta: Option<f64>,
    /// Covered incompatible examples at the threshold.
    pub coverage: usize,
    /// Training precision at the threshold.
    pub precision: f64,
}

/// Summary of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Training-set size.
    pub training_examples: usize,
    /// `|T⁺|`.
    pub positives: usize,
    /// `|T⁻|`.
    pub negatives: usize,
    /// Per-candidate diagnostics, in candidate order.
    pub candidates: Vec<CandidateReport>,
    /// Selection outcome.
    pub selection: SelectionResult,
    /// Ids of the selected languages, in pick order.
    pub selected_ids: Vec<String>,
    /// Final model size in bytes (after optional sketching).
    pub model_bytes: usize,
    /// Training-pipeline counters (interned values, generalizations
    /// performed vs saved, per-phase wall-clock), summed over the
    /// calibration and assembly passes.
    pub pipeline: PipelineReport,
}

/// Scores every training example under `stats`, memoizing per-value
/// pattern hashes (values repeat heavily across examples).
pub(crate) fn score_training_set(
    stats: &LanguageStats,
    training: &TrainingSet,
    npmi: adt_stats::NpmiParams,
) -> Vec<f64> {
    let lang = stats.language;
    let mut memo: adt_stats::FxHashMap<&str, PatternHash> = adt_stats::FxHashMap::default();
    let mut scores = Vec::with_capacity(training.len());
    for e in &training.examples {
        let hu = *memo
            .entry(e.u.as_str())
            .or_insert_with(|| Pattern::generalize(&e.u, &lang).hash64());
        let hv = *memo
            .entry(e.v.as_str())
            .or_insert_with(|| Pattern::generalize(&e.v, &lang).hash64());
        scores.push(stats.npmi_patterns(hu, hv, npmi));
    }
    scores
}

/// Trains an Auto-Detect model on `corpus` under `config`.
///
/// Candidate statistics come from the corpus-major sharded pipeline
/// (`adt_stats::TrainPipeline`): the corpus is interned once, every
/// distinct value is generalized under whole language batches in a
/// single traversal, and columns are sharded across
/// `config.effective_train_threads()` workers. Statistics are calibrated
/// and dropped batch by batch, so peak memory stays near one language
/// batch; only the selected languages are rebuilt for the final model.
///
/// Fails with [`AdtError::Config`] on an invalid configuration and
/// [`AdtError::Worker`] if a training worker thread panics.
pub fn train(
    corpus: &Corpus,
    config: &AutoDetectConfig,
) -> Result<(AutoDetect, TrainReport), AdtError> {
    config.validate()?;
    let (training, _crude) = build_training_set(corpus, config);
    train_with_training_set(corpus, config, &training)
}

/// One calibrated candidate language: the reusable product of training
/// phase 1 (stats scan + scoring + calibration).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibratedCandidate {
    /// The candidate language.
    pub language: adt_patterns::Language,
    /// Exact statistics size in bytes (`size(L)`).
    pub size_bytes: usize,
    /// Calibration against the training set.
    pub calibration: Calibration,
}

/// Training phase 1: builds statistics for every candidate language
/// through the sharded pipeline, scores the training set, and calibrates
/// thresholds. The expensive phase; its output can be reused across
/// memory budgets and aggregators (Figures 7 and 8(b)). Also returns the
/// pipeline's counter report.
pub fn calibrate_candidates_with_report(
    corpus: &Corpus,
    config: &AutoDetectConfig,
    training: &TrainingSet,
) -> Result<(Vec<CalibratedCandidate>, PipelineReport), AdtError> {
    config.validate()?;
    let languages = config.candidate_languages();
    let opts = config.train_pipeline_options();
    adt_stats::for_each_language_stats(&languages, corpus, &config.stats, &opts, |_, stats| {
        let scores = score_training_set(&stats, training, config.npmi);
        let calibration = calibrate_language(training, &scores, config.precision_target, 256);
        CalibratedCandidate {
            language: stats.language,
            size_bytes: stats.size_bytes(),
            calibration,
        }
    })
    .map_err(pipeline_error)
}

/// [`calibrate_candidates_with_report`] without the counter report.
pub fn calibrate_candidates(
    corpus: &Corpus,
    config: &AutoDetectConfig,
    training: &TrainingSet,
) -> Result<Vec<CalibratedCandidate>, AdtError> {
    Ok(calibrate_candidates_with_report(corpus, config, training)?.0)
}

/// Training phases 2–3: greedy selection under the budget, then model
/// assembly (rebuilding statistics for the selected languages only,
/// through the sharded pipeline).
pub fn select_and_assemble(
    corpus: &Corpus,
    config: &AutoDetectConfig,
    training: &TrainingSet,
    pool: &[CalibratedCandidate],
) -> Result<(AutoDetect, TrainReport), AdtError> {
    // Phase 2: greedy selection under the memory budget.
    let selection = greedy_select(&summarize_pool(pool), config.memory_budget);

    // Phase 3: rebuild stats for the selected languages (one pipeline
    // pass over the corpus); the shared assembly step then optionally
    // compresses co-occurrence into sketches.
    let selected_languages: Vec<adt_patterns::Language> = selection
        .selected
        .iter()
        .filter_map(|&i| pool.get(i).map(|c| c.language))
        .collect();
    let opts = config.train_pipeline_options();
    let (rebuilt, pipeline) = adt_stats::for_each_language_stats(
        &selected_languages,
        corpus,
        &config.stats,
        &opts,
        |_, s| s,
    )
    .map_err(pipeline_error)?;
    assemble_model(config, training, pool, selection, rebuilt, pipeline)
}

/// Summarizes a calibrated pool for [`greedy_select`].
pub(crate) fn summarize_pool(pool: &[CalibratedCandidate]) -> Vec<CandidateSummary> {
    pool.iter()
        .enumerate()
        .map(|(i, c)| CandidateSummary {
            index: i,
            size_bytes: c.size_bytes,
            covered_negatives: c.calibration.covered_negatives.clone(),
        })
        .collect()
}

/// The final assembly step, shared by [`select_and_assemble`] and the
/// online learner's retrain path so the two can never drift: takes the
/// statistics for the selected languages (in pick order, finalized under
/// `config.stats`), applies the budget-driven sketch compression, strips
/// training-only calibration artifacts, and packages the model and
/// report.
pub(crate) fn assemble_model(
    config: &AutoDetectConfig,
    training: &TrainingSet,
    pool: &[CalibratedCandidate],
    selection: SelectionResult,
    rebuilt: Vec<LanguageStats>,
    pipeline: PipelineReport,
) -> Result<(AutoDetect, TrainReport), AdtError> {
    let reports: Vec<CandidateReport> = pool
        .iter()
        .map(|c| CandidateReport {
            language_id: c.language.id(),
            size_bytes: c.size_bytes,
            theta: c.calibration.theta,
            coverage: c.calibration.coverage(),
            precision: c.calibration.precision_at_theta,
        })
        .collect();

    let mut selected = Vec::with_capacity(selection.selected.len());
    for (&i, mut stats) in selection.selected.iter().zip(rebuilt) {
        if let Some(spec) = config.sketch_spec_for(stats.size_bytes()) {
            stats.compress_cooccurrence(spec);
        }
        let mut calibration: Calibration = pool
            .get(i)
            .map(|c| c.calibration.clone())
            .ok_or(AdtError::Worker("assemble_model"))?;
        // Coverage indices are a training artifact; drop them from the
        // shipped model to keep it small.
        calibration.covered_negatives = Vec::new();
        calibration.covered_negatives.shrink_to_fit();
        selected.push(SelectedLanguage { stats, calibration });
    }

    let model = AutoDetect {
        languages: selected,
        npmi: config.npmi,
        precision_target: config.precision_target,
        max_distinct_values: config.max_distinct_values,
    };
    let report = TrainReport {
        training_examples: training.len(),
        positives: training.positives(),
        negatives: training.negatives(),
        candidates: reports,
        selected_ids: selection
            .selected
            .iter()
            .filter_map(|&i| pool.get(i).map(|c| c.language.id()))
            .collect(),
        selection,
        model_bytes: model.size_bytes(),
        pipeline,
    };
    Ok((model, report))
}

/// Trains with a caller-provided training set (used by experiments that
/// reuse one training set across configurations). The report's pipeline
/// counters cover both the calibration and assembly passes.
pub fn train_with_training_set(
    corpus: &Corpus,
    config: &AutoDetectConfig,
    training: &TrainingSet,
) -> Result<(AutoDetect, TrainReport), AdtError> {
    let (pool, calibration_report) = calibrate_candidates_with_report(corpus, config, training)?;
    let (model, mut report) = select_and_assemble(corpus, config, training, &pool)?;
    report.pipeline.absorb(&calibration_report);
    Ok((model, report))
}

/// Maps a codec-layer error: structural validation failures surface as
/// [`AdtError::Corrupt`], everything else as I/O.
fn codec_error(e: io::Error) -> AdtError {
    if e.kind() == io::ErrorKind::InvalidData {
        AdtError::Corrupt(e.to_string())
    } else {
        AdtError::Io(e)
    }
}

/// Saves a model: compact binary when the path ends in `.bin`, JSON
/// otherwise. The binary format is typically 3–5× smaller and loads an
/// order of magnitude faster — relevant to the paper's client-side
/// deployment constraint.
///
/// The write is **atomic**: bytes go to a temporary file in the target
/// directory, which is renamed over `path` only after a successful
/// flush. A crash mid-train can never leave a truncated model where a
/// serving [`load_model`] (or a registry hot-reload) would find it —
/// readers see either the old complete file or the new complete file.
pub fn save_model<P: AsRef<Path>>(model: &AutoDetect, path: P) -> Result<(), AdtError> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    // Same directory as the target so the rename cannot cross
    // filesystems (rename is only atomic within one).
    let tmp = path.with_file_name(format!(
        ".{}.tmp{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("model"),
        std::process::id()
    ));
    let result = (|| {
        let f = std::fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(f);
        if path.extension().is_some_and(|e| e == "bin") {
            codec::write_model(&mut w, model).map_err(codec_error)?;
        } else {
            serde_json::to_writer(&mut w, model).map_err(|e| AdtError::Json(e.to_string()))?;
        }
        let f = w
            .into_inner()
            .map_err(|e| AdtError::Io(io::Error::other(e.to_string())))?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Loads a model saved by [`save_model`] (format sniffed from content).
///
/// Errors are typed for callers that surface them to users or clients:
/// a missing file is [`AdtError::ModelNotFound`] and any unparsable file
/// is [`AdtError::ModelParse`] — both carry the offending path.
pub fn load_model<P: AsRef<Path>>(path: P) -> Result<AutoDetect, AdtError> {
    let path = path.as_ref();
    let display = path.display().to_string();
    let f = std::fs::File::open(path).map_err(|e| {
        if e.kind() == io::ErrorKind::NotFound {
            AdtError::ModelNotFound(display.clone())
        } else {
            AdtError::Io(e)
        }
    })?;
    let mut r = io::BufReader::new(f);
    use std::io::BufRead;
    let is_binary = r.fill_buf()?.starts_with(codec::MODEL_MAGIC);
    let parsed = if is_binary {
        codec::read_model(&mut r).map_err(codec_error)
    } else if path.extension().is_some_and(|e| e == "bin") {
        // A .bin file without the magic is corrupt (or mid-write on a
        // non-atomic filesystem) — never try to parse it as JSON.
        Err(AdtError::Json("missing ADM1 magic".into()))
    } else {
        serde_json::from_reader(r).map_err(|e| AdtError::Json(e.to_string()))
    };
    parsed.map_err(|e| match e {
        // I/O failures while reading bytes stay I/O errors; everything
        // that means "the bytes are not a model" becomes ModelParse.
        AdtError::Io(io) if io.kind() != io::ErrorKind::UnexpectedEof => AdtError::Io(io),
        other => AdtError::ModelParse {
            path: display,
            detail: other.to_string(),
        },
    })
}

/// Binary model codec (see `adt_stats::codec` for the statistics layer).
pub mod codec {
    use super::*;
    use crate::calibrate::Calibration;
    use crate::detector::SelectedLanguage;
    use adt_sketch::codec::{read_f64, read_varint, write_f64, write_varint};
    use std::io::{Read, Write};

    /// Leading magic of the binary model format.
    pub const MODEL_MAGIC: &[u8; 4] = b"ADM1";

    fn write_calibration<W: Write>(w: &mut W, c: &Calibration) -> io::Result<()> {
        match c.theta {
            Some(t) => {
                w.write_all(&[1u8])?;
                write_f64(w, t)?;
            }
            None => w.write_all(&[0u8])?,
        }
        write_f64(w, c.precision_at_theta)?;
        write_varint(w, c.covered_positives as u64)?;
        // covered_negatives are a training artifact; the shipped model
        // clears them, so only the length (normally 0) is stored.
        write_varint(w, c.covered_negatives.len() as u64)?;
        for &i in &c.covered_negatives {
            write_varint(w, i as u64)?;
        }
        write_varint(w, c.curve.len() as u64)?;
        for &(s, p) in &c.curve {
            write_f64(w, s)?;
            write_f64(w, p)?;
        }
        Ok(())
    }

    fn read_calibration<R: Read>(r: &mut R) -> io::Result<Calibration> {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let theta = match tag[0] {
            0 => None,
            1 => Some(read_f64(r)?),
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad theta tag")),
        };
        let precision_at_theta = read_f64(r)?;
        let covered_positives = read_varint(r)? as usize;
        let n_neg = read_varint(r)? as usize;
        if n_neg > (1 << 28) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "coverage too large",
            ));
        }
        let mut covered_negatives = Vec::with_capacity(n_neg);
        for _ in 0..n_neg {
            covered_negatives.push(read_varint(r)? as u32);
        }
        let n_curve = read_varint(r)? as usize;
        if n_curve > (1 << 20) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "curve too large",
            ));
        }
        let mut curve = Vec::with_capacity(n_curve);
        for _ in 0..n_curve {
            let s = read_f64(r)?;
            let p = read_f64(r)?;
            curve.push((s, p));
        }
        Ok(Calibration {
            theta,
            precision_at_theta,
            covered_negatives,
            covered_positives,
            curve,
        })
    }

    /// Writes a full model.
    pub fn write_model<W: Write>(w: &mut W, model: &AutoDetect) -> io::Result<()> {
        w.write_all(MODEL_MAGIC)?;
        write_f64(w, model.npmi.smoothing)?;
        write_f64(w, model.precision_target)?;
        write_varint(w, model.max_distinct_values as u64)?;
        write_varint(w, model.languages.len() as u64)?;
        for l in &model.languages {
            l.stats.write_binary(w)?;
            write_calibration(w, &l.calibration)?;
        }
        Ok(())
    }

    /// Reads a model written by [`write_model`].
    pub fn read_model<R: Read>(r: &mut R) -> io::Result<AutoDetect> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MODEL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad model magic",
            ));
        }
        let smoothing = read_f64(r)?;
        let precision_target = read_f64(r)?;
        let max_distinct_values = read_varint(r)? as usize;
        let n = read_varint(r)? as usize;
        if n > 4096 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many languages",
            ));
        }
        let mut languages = Vec::with_capacity(n);
        for _ in 0..n {
            let stats = LanguageStats::read_binary(r)?;
            let calibration = read_calibration(r)?;
            languages.push(SelectedLanguage { stats, calibration });
        }
        Ok(AutoDetect {
            languages,
            npmi: adt_stats::NpmiParams { smoothing },
            precision_target,
            max_distinct_values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::{generate_corpus, CorpusProfile};

    fn quick_config() -> AutoDetectConfig {
        AutoDetectConfig {
            training_examples: 3_000,
            threads: 2,
            ..AutoDetectConfig::small()
        }
    }

    // Large enough that language selection reliably includes a
    // symbol-sensitive member (at a few hundred columns the greedy can
    // collapse to a single length-only language and the date-separator
    // checks below become blind spots).
    fn quick_corpus() -> Corpus {
        let mut p = CorpusProfile::web(1_500);
        p.dirty_rate = 0.0;
        generate_corpus(&p)
    }

    // The offline harness (scripts/offline_check.sh) stubs serde_json
    // with panicking bodies; JSON-codec assertions are skipped there
    // while the binary codec stays fully tested.
    fn json_codec_available() -> bool {
        std::panic::catch_unwind(|| serde_json::to_string(&0u8).is_ok()).unwrap_or(false)
    }

    #[test]
    fn train_selects_languages_and_meets_budget() {
        let corpus = quick_corpus();
        let cfg = quick_config();
        let (model, report) = train(&corpus, &cfg).unwrap();
        assert!(
            model.num_languages() >= 1,
            "no language selected: {:?}",
            report.selection
        );
        assert!(report.selection.total_bytes <= cfg.memory_budget);
        assert_eq!(report.candidates.len(), 36);
        assert_eq!(report.selected_ids.len(), model.num_languages());
    }

    #[test]
    fn trained_model_flags_obvious_incompatibility() {
        let corpus = quick_corpus();
        let (model, _) = train(&corpus, &quick_config()).unwrap();
        let verdict = model.score_pair("2011-01-01", "2011/01/02");
        assert!(verdict.incompatible, "scores {:?}", verdict.scores);
        // Compatible pair must not be flagged.
        let ok = model.score_pair("12", "3,000");
        assert!(!ok.incompatible, "scores {:?}", ok.scores);
    }

    #[test]
    fn training_precision_respected_on_candidates() {
        let corpus = quick_corpus();
        let cfg = quick_config();
        let (_, report) = train(&corpus, &cfg).unwrap();
        for c in &report.candidates {
            if c.theta.is_some() {
                assert!(
                    c.precision >= cfg.precision_target,
                    "{} precision {}",
                    c.language_id,
                    c.precision
                );
            }
        }
    }

    #[test]
    fn save_load_roundtrip() {
        if !json_codec_available() {
            eprintln!("skipping: JSON codec unavailable (stub serde_json)");
            return;
        }
        let corpus = quick_corpus();
        let (model, _) = train(&corpus, &quick_config()).unwrap();
        let dir = std::env::temp_dir().join("adt_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(back.num_languages(), model.num_languages());
        let a = model.score_pair("2011-01-01", "2011/01/02");
        let b = back.score_pair("2011-01-01", "2011/01/02");
        assert_eq!(a.incompatible, b.incompatible);
        assert_eq!(a.scores, b.scores);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sketched_model_is_smaller_and_preserves_ordering() {
        let corpus = quick_corpus();
        let cfg = quick_config();
        let (exact_model, _) = train(&corpus, &cfg).unwrap();
        let sketch_cfg = AutoDetectConfig {
            sketch_fraction: Some(0.25),
            ..cfg
        };
        let (sketch_model, _) = train(&corpus, &sketch_cfg).unwrap();
        assert!(sketch_model.size_bytes() < exact_model.size_bytes());
        // Count-min never undercounts, so compatible pairs keep their high
        // scores; incompatible pairs may inflate under collisions (this is
        // the Figure 8(a) quality/size trade-off) but must stay below the
        // compatible pairs under every language.
        let bad = sketch_model.score_pair("2011-01-01", "2011/01/02");
        let good = sketch_model.score_pair("2011-01-01", "2012-03-04");
        for (b, g) in bad.scores.iter().zip(&good.scores) {
            assert!(b <= g, "sketched ordering broken: {b} > {g}");
        }
        // The compatible pair is never flagged (one-sided sketch error).
        assert!(!good.incompatible);
    }

    /// The streaming differential at the model level: `cooc=streaming`
    /// trains byte-identically at every thread count and preserves the
    /// compatible/incompatible ordering on the same pairs the
    /// deferred-sketch test above pins.
    #[test]
    fn streaming_train_is_thread_invariant_and_preserves_ordering() {
        let mut p = CorpusProfile::web(600);
        p.dirty_rate = 0.0;
        let corpus = generate_corpus(&p);
        let mut reference: Option<Vec<u8>> = None;
        for threads in [1usize, 2, 4, 8] {
            let cfg = AutoDetectConfig {
                cooc: adt_stats::CoocMode::Streaming,
                train_threads: threads,
                ..quick_config()
            };
            let (model, report) = train(&corpus, &cfg).unwrap();
            // Every candidate batch ran streaming and reported geometry.
            assert!(report.pipeline.streaming_languages > 0);
            assert!(report.pipeline.sketch_bytes > 0);
            assert!(report.pipeline.sketch_error_bound_max > 0.0);
            let mut bytes = Vec::new();
            codec::write_model(&mut bytes, &model).unwrap();
            match &reference {
                Some(r) => assert_eq!(r, &bytes, "streaming train varies at {threads} threads"),
                None => {
                    // Count-min never undercounts: compatible pairs keep
                    // their high scores, incompatible pairs stay below
                    // them under every selected language.
                    let bad = model.score_pair("2011-01-01", "2011/01/02");
                    let good = model.score_pair("2011-01-01", "2012-03-04");
                    for (b, g) in bad.scores.iter().zip(&good.scores) {
                        assert!(b <= g, "streaming ordering broken: {b} > {g}");
                    }
                    assert!(!good.incompatible);
                    reference = Some(bytes);
                }
            }
        }
    }

    #[test]
    fn binary_model_roundtrip_and_size() {
        let corpus = quick_corpus();
        let (model, _) = train(&corpus, &quick_config()).unwrap();
        let dir = std::env::temp_dir().join("adt_model_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bin_path = dir.join("model.bin");
        save_model(&model, &bin_path).unwrap();
        let bin_len = std::fs::metadata(&bin_path).unwrap().len();
        // load_model sniffs the format from content.
        let mut roundtripped = vec![load_model(&bin_path).unwrap()];
        if json_codec_available() {
            let json_path = dir.join("model.json");
            save_model(&model, &json_path).unwrap();
            let json_len = std::fs::metadata(&json_path).unwrap().len();
            assert!(
                bin_len * 2 < json_len,
                "binary {bin_len} vs json {json_len}"
            );
            roundtripped.push(load_model(&json_path).unwrap());
            std::fs::remove_file(json_path).ok();
        } else {
            eprintln!("skipping JSON half: codec unavailable (stub serde_json)");
        }
        let a = model.score_pair("2011-01-01", "2011/01/02");
        for back in &roundtripped {
            assert_eq!(back.num_languages(), model.num_languages());
            let b = back.score_pair("2011-01-01", "2011/01/02");
            assert_eq!(a.scores, b.scores);
            assert_eq!(a.incompatible, b.incompatible);
            assert_eq!(a.confidence, b.confidence);
        }
        std::fs::remove_file(bin_path).ok();
    }

    #[test]
    fn load_errors_are_typed_and_name_the_path() {
        let dir = std::env::temp_dir().join("adt_model_load_errors");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("missing.bin");
        match load_model(&missing) {
            Err(AdtError::ModelNotFound(p)) => assert!(p.contains("missing.bin"), "{p}"),
            other => panic!("expected ModelNotFound, got {other:?}"),
        }
        let garbage = dir.join("garbage.bin");
        std::fs::write(&garbage, b"ADM1 but then nonsense").unwrap();
        match load_model(&garbage) {
            Err(AdtError::ModelParse { path, .. }) => {
                assert!(path.contains("garbage.bin"), "{path}")
            }
            other => panic!("expected ModelParse, got {other:?}"),
        }
        // Truncated mid-stream file: also a parse error, not a bare I/O.
        let truncated = dir.join("truncated.bin");
        std::fs::write(&truncated, &codec::MODEL_MAGIC[..]).unwrap();
        match load_model(&truncated) {
            Err(AdtError::ModelParse { path, .. }) => {
                assert!(path.contains("truncated.bin"), "{path}")
            }
            other => panic!("expected ModelParse, got {other:?}"),
        }
        std::fs::remove_file(garbage).ok();
        std::fs::remove_file(truncated).ok();
    }

    #[test]
    fn save_model_is_atomic_and_leaves_no_temp_files() {
        let corpus = quick_corpus();
        let (model, _) = train(&corpus, &quick_config()).unwrap();
        let dir = std::env::temp_dir().join("adt_model_atomic_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("m.bin");
        // Saving into a fresh directory creates it.
        save_model(&model, &path).unwrap();
        let first = std::fs::read(&path).unwrap();
        // Overwrite in place: the file is replaced wholesale.
        save_model(&model, &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), first);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_training() {
        let corpus = quick_corpus();
        let cfg = quick_config();
        let (_, r1) = train(&corpus, &cfg).unwrap();
        let (_, r2) = train(&corpus, &cfg).unwrap();
        assert_eq!(r1.selected_ids, r2.selected_ids);
        assert_eq!(r1.selection.union_coverage, r2.selection.union_coverage);
    }
}
